//! Certifying an H-tree clock network — the paper's third use-case
//! ("certify that a circuit is fast enough, given both the maximum delay and
//! the voltage threshold") applied to the classic clock-distribution
//! problem, plus a multi-stage STA run over a small buffer chain.
//!
//! Run with `cargo run --example clock_tree_certify`.

use penfield_rubinstein::core::analysis::TreeAnalysis;
use penfield_rubinstein::core::units::{Farads, Ohms, Seconds};
use penfield_rubinstein::sta::{CellLibrary, Design, Driver, Load, Net, Sink};
use penfield_rubinstein::workloads::htree::{h_tree, HTreeParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Single-net certification of an H-tree -------------------------
    let params = HTreeParams {
        levels: 5,
        ..HTreeParams::default()
    };
    let (tree, leaves) = h_tree(params);
    println!(
        "H-tree clock network: {} nodes, {} leaves",
        tree.node_count(),
        leaves.len()
    );

    let analysis = TreeAnalysis::of(&tree)?;
    let worst = analysis.worst_delay_upper_bound(0.9)?;
    println!(
        "guaranteed worst-case 90% delay over all leaves: {:.3} ns",
        worst.as_nano()
    );
    for budget_ns in [0.5, 1.0, 2.0, 5.0] {
        let verdict = analysis.certify_all(0.9, Seconds::from_nano(budget_ns))?;
        println!("  clock budget {budget_ns:>4} ns -> {verdict}");
    }

    // ---- Multi-stage STA over a buffer chain feeding the H-tree driver --
    let mut design = Design::new(CellLibrary::nmos_1981());
    design.add_instance("u_root", "inv_4x")?;
    design.add_instance("u_buf", "buf_8x")?;

    let wire = |r: f64, c_pf: f64| -> Result<_, Box<dyn std::error::Error>> {
        let mut b = penfield_rubinstein::core::builder::RcTreeBuilder::new();
        b.add_line(b.input(), "load", Ohms::new(r), Farads::from_pico(c_pf))?;
        Ok(b.build()?)
    };

    design.add_net(Net {
        name: "n_src".into(),
        driver: Driver::PrimaryInput,
        interconnect: wire(40.0, 0.01)?,
        sinks: vec![Sink {
            node: "load".into(),
            load: Load::Instance("u_root".into()),
        }],
    })?;
    design.add_net(Net {
        name: "n_mid".into(),
        driver: Driver::Instance("u_root".into()),
        interconnect: wire(150.0, 0.05)?,
        sinks: vec![Sink {
            node: "load".into(),
            load: Load::Instance("u_buf".into()),
        }],
    })?;
    design.add_net(Net {
        name: "n_clk".into(),
        driver: Driver::Instance("u_buf".into()),
        interconnect: wire(300.0, 0.4)?,
        sinks: vec![Sink {
            node: "load".into(),
            load: Load::PrimaryOutput("clk_root".into()),
        }],
    })?;

    let report = design.analyze(0.5, Seconds::from_nano(6.0))?;
    println!("\n{report}");
    Ok(())
}
