//! Quick start: build a small fan-out net, compute the three characteristic
//! times, and use them the three ways the paper's abstract lists —
//! bound the delay, bound the voltage, and certify a timing budget.
//!
//! Run with `cargo run --example quickstart`.

use penfield_rubinstein::core::analysis::TreeAnalysis;
use penfield_rubinstein::core::builder::RcTreeBuilder;
use penfield_rubinstein::core::moments::characteristic_times;
use penfield_rubinstein::core::units::{Farads, Ohms, Seconds};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 1 kΩ driver charges two gates: one nearby, one through a long
    // polysilicon run (values are representative of the paper's 4 µm NMOS
    // process).
    let mut b = RcTreeBuilder::new();
    let drv = b.add_resistor(b.input(), "driver_out", Ohms::new(1_000.0))?;
    b.add_capacitance(drv, Farads::from_pico(0.05))?;

    let near = b.add_line(drv, "near_gate", Ohms::new(60.0), Farads::from_pico(0.01))?;
    b.add_capacitance(near, Farads::from_pico(0.013))?;
    b.mark_output(near)?;

    let far = b.add_line(drv, "far_gate", Ohms::new(1_800.0), Farads::from_pico(0.10))?;
    b.add_capacitance(far, Farads::from_pico(0.013))?;
    b.mark_output(far)?;

    let tree = b.build()?;
    println!("{tree}");

    // (1) Bound the delay, given a threshold.
    let far_times = characteristic_times(&tree, tree.node_by_name("far_gate")?)?;
    println!(
        "far gate:  T_P = {:.3} ns   T_D = {:.3} ns   T_R = {:.3} ns",
        far_times.t_p.as_nano(),
        far_times.t_d.as_nano(),
        far_times.t_r.as_nano()
    );
    let delay = far_times.delay_bounds(0.5)?;
    println!(
        "50% delay of the far gate is guaranteed to lie in [{:.3}, {:.3}] ns",
        delay.lower.as_nano(),
        delay.upper.as_nano()
    );

    // (2) Bound the voltage, given a time.
    let at_1ns = far_times.voltage_bounds(Seconds::from_nano(1.0))?;
    println!(
        "after 1 ns the far gate has charged to between {:.1}% and {:.1}% of V_DD",
        100.0 * at_1ns.lower,
        100.0 * at_1ns.upper
    );

    // (3) Certify the whole net against a budget.
    let analysis = TreeAnalysis::of(&tree)?;
    for budget_ns in [1.0, 3.0, 10.0] {
        let verdict = analysis.certify_all(0.9, Seconds::from_nano(budget_ns))?;
        println!("is every output at 90% within {budget_ns} ns?  -> {verdict}");
    }

    Ok(())
}
