//! The motivating scenario of Figures 1–2: an inverter driving three gates,
//! two through long polysilicon runs and one through a metal line.
//!
//! Prints the per-gate characteristic times and delay bounds, and shows the
//! paper's observation that the bounds are tightest when the pull-up
//! resistance dominates the interconnect resistance.
//!
//! Run with `cargo run --example mos_fanout`.

use penfield_rubinstein::core::analysis::TreeAnalysis;
use penfield_rubinstein::workloads::mos_net::{mos_fanout_tree, MosNetParams};
use penfield_rubinstein::workloads::tech::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::paper_1981();
    let params = MosNetParams::representative();
    let (tree, _outputs) = mos_fanout_tree(params, &tech);

    println!("MOS signal-distribution network (Figures 1-2)\n{tree}");

    let analysis = TreeAnalysis::of(&tree)?;
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "gate", "T_P (ns)", "T_D (ns)", "T_R (ns)", "t50 min (ns)", "t50 max (ns)"
    );
    for out in analysis.outputs() {
        let b = out.times.delay_bounds(0.5)?;
        println!(
            "{:>10} {:>12.4} {:>12.4} {:>12.4} {:>14.4} {:>14.4}",
            out.name,
            out.times.t_p.as_nano(),
            out.times.t_d.as_nano(),
            out.times.t_r.as_nano(),
            b.lower.as_nano(),
            b.upper.as_nano()
        );
    }

    let critical = analysis.critical_output();
    println!(
        "\ncritical sink: {} (Elmore delay {:.3} ns)",
        critical.name,
        critical.times.elmore_delay().as_nano()
    );

    // Tightness vs. where the resistance sits.
    println!("\nbound tightness (relative uncertainty of the 50% delay) vs pull-up strength:");
    for pullup in [1_000.0, 10_000.0, 100_000.0] {
        let mut p = MosNetParams::representative();
        p.pullup_resistance = pullup;
        let (t, outs) = mos_fanout_tree(p, &tech);
        let times = penfield_rubinstein::core::moments::characteristic_times(&t, outs.gate_a)?;
        let b = times.delay_bounds(0.5)?;
        println!(
            "  pull-up {:>7.0} ohm  ->  uncertainty {:.1}%",
            pullup,
            100.0 * b.relative_uncertainty()
        );
    }
    println!("(the paper: bounds are \"very tight in the case where most of the resistance is in the pullup\")");
    Ok(())
}
