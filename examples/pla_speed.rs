//! Section V of the paper: is the polysilicon line driving a PLA's AND
//! plane the dominant source of delay?
//!
//! Sweeps the number of minterms from 2 to 100 and prints the delay bounds
//! at the 0.7·V_DD threshold — the data behind Figure 13 — ending with the
//! paper's headline observation that even a 100-minterm line stays around
//! 10 ns, "suggesting that the dominant delay in a PLA occurs elsewhere".
//!
//! Run with `cargo run --example pla_speed`.

use penfield_rubinstein::core::moments::characteristic_times;
use penfield_rubinstein::workloads::pla::{PlaLine, PlaLineParams};
use penfield_rubinstein::workloads::tech::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("PLA AND-plane polysilicon line (Section V / Figures 12-13)");
    println!("threshold: 0.7 * VDD\n");
    println!(
        "{:>9} {:>12} {:>12} {:>12}",
        "minterms", "t_min (ns)", "t_max (ns)", "elmore (ns)"
    );

    let mut minterms = 2usize;
    while minterms <= 100 {
        let (tree, out) = PlaLine::new(minterms).tree();
        let times = characteristic_times(&tree, out)?;
        let bounds = times.delay_bounds(0.7)?;
        println!(
            "{:>9} {:>12.4} {:>12.4} {:>12.4}",
            minterms,
            bounds.lower.as_nano(),
            bounds.upper.as_nano(),
            times.elmore_delay().as_nano()
        );
        minterms = if minterms < 10 {
            minterms + 2
        } else {
            minterms + 10
        };
    }

    // The same sweep with parasitics derived from the geometry/technology
    // model instead of the paper's rounded constants.
    let derived = PlaLineParams::from_technology(&Technology::paper_1981());
    let (tree, out) = PlaLine::with_params(100, derived).tree();
    let bounds = characteristic_times(&tree, out)?.delay_bounds(0.7)?;
    println!(
        "\nwith geometry-derived parasitics, 100 minterms: [{:.3}, {:.3}] ns",
        bounds.lower.as_nano(),
        bounds.upper.as_nano()
    );
    println!("paper's conclusion: ~10 ns worst case, so the dominant PLA delay is elsewhere.");
    Ok(())
}
