//! Figure 11: the Penfield–Rubinstein bounds bracketing the exact response.
//!
//! Recomputes the bound curves of the Figure 7 network and overlays the
//! exact step response obtained from the modal (eigendecomposition) solver,
//! printing a CSV table plus a coarse ASCII plot.
//!
//! Run with `cargo run --example bounds_vs_exact`.

use penfield_rubinstein::core::moments::characteristic_times;
use penfield_rubinstein::core::units::Seconds;
use penfield_rubinstein::sim::modal::exact_step_response;
use penfield_rubinstein::workloads::fig7::figure7_tree;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (tree, out) = figure7_tree();
    let times = characteristic_times(&tree, out)?;
    // Distributed lines are discretized into 64 segments: far finer than
    // needed for visual agreement with the true distributed response.
    let exact = exact_step_response(&tree, out, 64, 600.0, 121)?;

    println!("time_s,v_min,v_exact,v_max");
    let mut rows = Vec::new();
    for i in 0..=60 {
        let t = 10.0 * i as f64;
        let b = times.voltage_bounds(Seconds::new(t))?;
        let v = exact.value_at(t);
        println!("{t},{:.5},{:.5},{:.5}", b.lower, v, b.upper);
        rows.push((t, b.lower, v, b.upper));
    }

    // Coarse ASCII rendering of Figure 11 (lower bound '-', exact '*',
    // upper bound '+').
    println!("\nFigure 11 (ASCII): x = time 0..600 s, y = normalized voltage");
    let width = 61usize;
    for level in (0..=10).rev() {
        let y = level as f64 / 10.0;
        let mut line = vec![' '; width];
        for (i, &(_, lo, v, hi)) in rows.iter().enumerate() {
            if (lo - y).abs() < 0.05 {
                line[i] = '-';
            }
            if (hi - y).abs() < 0.05 {
                line[i] = '+';
            }
            if (v - y).abs() < 0.05 {
                line[i] = '*';
            }
        }
        println!("{y:>4.1} |{}", line.into_iter().collect::<String>());
    }
    println!("     +{}", "-".repeat(width));

    // Sanity summary.
    let mut max_violation: f64 = 0.0;
    for &(_, lo, v, hi) in &rows {
        max_violation = max_violation.max(lo - v).max(v - hi);
    }
    println!("\nmax violation of v_min <= v_exact <= v_max: {max_violation:.2e} (should be ~0)");
    println!(
        "characteristic times: T_P = {} s, T_D = {} s, T_R = {:.3} s",
        times.t_p.value(),
        times.t_d.value(),
        times.t_r.value()
    );
    Ok(())
}
