//! Sampled waveforms and measurements on them.
//!
//! Transient and modal simulations produce node voltages sampled on a time
//! grid.  [`Waveform`] wraps one such series and provides the measurements
//! needed to compare against the Penfield–Rubinstein bounds: interpolated
//! values, threshold-crossing times and monotonicity checks.

use crate::error::{Result, SimError};

/// A voltage waveform sampled on a strictly increasing time grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl Waveform {
    /// Creates a waveform from matching time and value samples.
    ///
    /// # Errors
    ///
    /// * [`SimError::DimensionMismatch`] if the slices differ in length or
    ///   are empty;
    /// * [`SimError::InvalidTimeGrid`] if the time grid is not strictly
    ///   increasing or not finite.
    pub fn new(times: Vec<f64>, values: Vec<f64>) -> Result<Self> {
        if times.is_empty() || times.len() != values.len() {
            return Err(SimError::DimensionMismatch {
                what: "waveform samples",
                expected: times.len(),
                actual: values.len(),
            });
        }
        // Strict increase must also reject NaN, hence no plain `<=`.
        let strictly_increasing = |a: f64, b: f64| b > a;
        for w in times.windows(2) {
            if !strictly_increasing(w[0], w[1]) {
                return Err(SimError::InvalidTimeGrid {
                    reason: "times must be strictly increasing",
                });
            }
        }
        if times.iter().chain(values.iter()).any(|x| !x.is_finite()) {
            return Err(SimError::InvalidTimeGrid {
                reason: "samples must be finite",
            });
        }
        Ok(Waveform { times, values })
    }

    /// Builds a waveform by evaluating a function on a uniform grid of
    /// `samples` points covering `[0, t_stop]`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTimeGrid`] if `samples < 2` or `t_stop` is
    /// not positive.
    pub fn from_fn(t_stop: f64, samples: usize, mut f: impl FnMut(f64) -> f64) -> Result<Self> {
        let positive = |x: f64| x > 0.0;
        if samples < 2 || !positive(t_stop) {
            return Err(SimError::InvalidTimeGrid {
                reason: "need at least 2 samples and a positive horizon",
            });
        }
        let times: Vec<f64> = (0..samples)
            .map(|i| t_stop * i as f64 / (samples - 1) as f64)
            .collect();
        let values: Vec<f64> = times.iter().map(|&t| f(t)).collect();
        Self::new(times, values)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if the waveform holds no samples (never the case for a
    /// successfully constructed waveform).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Last sample time (the simulation horizon).
    pub fn end_time(&self) -> f64 {
        *self.times.last().expect("waveform is never empty")
    }

    /// Final sampled value.
    pub fn final_value(&self) -> f64 {
        *self.values.last().expect("waveform is never empty")
    }

    /// Linearly interpolated value at time `t` (clamped to the sampled
    /// range).
    pub fn value_at(&self, t: f64) -> f64 {
        if t <= self.times[0] {
            return self.values[0];
        }
        if t >= self.end_time() {
            return self.final_value();
        }
        // Binary search for the bracketing interval.
        let idx = match self
            .times
            .binary_search_by(|probe| probe.partial_cmp(&t).expect("finite"))
        {
            Ok(i) => return self.values[i],
            Err(i) => i,
        };
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let (v0, v1) = (self.values[idx - 1], self.values[idx]);
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// First time at which the waveform reaches `threshold`, by linear
    /// interpolation between samples.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ThresholdNotReached`] if the waveform never
    /// attains the threshold within the sampled horizon.
    pub fn first_crossing(&self, threshold: f64) -> Result<f64> {
        if self.values[0] >= threshold {
            return Ok(self.times[0]);
        }
        for i in 1..self.len() {
            if self.values[i] >= threshold {
                let (t0, t1) = (self.times[i - 1], self.times[i]);
                let (v0, v1) = (self.values[i - 1], self.values[i]);
                if v1 == v0 {
                    return Ok(t1);
                }
                return Ok(t0 + (t1 - t0) * (threshold - v0) / (v1 - v0));
            }
        }
        Err(SimError::ThresholdNotReached { threshold })
    }

    /// Checks that the waveform never decreases by more than `tol` between
    /// consecutive samples.  The paper proves the step response of an RC
    /// tree is monotone; this is used as a sanity check on the simulator.
    pub fn is_monotone_nondecreasing(&self, tol: f64) -> bool {
        self.values.windows(2).all(|w| w[1] >= w[0] - tol)
    }

    /// Maximum absolute difference against another waveform, compared on
    /// *this* waveform's time grid.
    pub fn max_difference(&self, other: &Waveform) -> f64 {
        self.times
            .iter()
            .zip(&self.values)
            .map(|(&t, &v)| (v - other.value_at(t)).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Waveform {
        Waveform::new(vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 0.5, 0.75, 1.0]).unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        assert!(Waveform::new(vec![], vec![]).is_err());
        assert!(Waveform::new(vec![0.0, 1.0], vec![1.0]).is_err());
        assert!(Waveform::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(Waveform::new(vec![0.0, 1.0], vec![1.0, f64::NAN]).is_err());
        assert!(Waveform::new(vec![1.0, 0.5], vec![0.0, 1.0]).is_err());
    }

    #[test]
    fn accessors_and_interpolation() {
        let w = ramp();
        assert_eq!(w.len(), 4);
        assert!(!w.is_empty());
        assert_eq!(w.end_time(), 3.0);
        assert_eq!(w.final_value(), 1.0);
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(10.0), 1.0);
        assert!((w.value_at(0.5) - 0.25).abs() < 1e-12);
        assert!((w.value_at(1.0) - 0.5).abs() < 1e-12);
        assert!((w.value_at(2.5) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn first_crossing_interpolates() {
        let w = ramp();
        assert!((w.first_crossing(0.25).unwrap() - 0.5).abs() < 1e-12);
        assert!((w.first_crossing(0.5).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(w.first_crossing(0.0).unwrap(), 0.0);
        assert!(matches!(
            w.first_crossing(1.5),
            Err(SimError::ThresholdNotReached { .. })
        ));
    }

    #[test]
    fn monotonicity_check() {
        assert!(ramp().is_monotone_nondecreasing(0.0));
        let bumpy = Waveform::new(vec![0.0, 1.0, 2.0], vec![0.0, 0.6, 0.5]).unwrap();
        assert!(!bumpy.is_monotone_nondecreasing(1e-6));
        assert!(bumpy.is_monotone_nondecreasing(0.2));
    }

    #[test]
    fn from_fn_samples_uniformly() {
        let w = Waveform::from_fn(2.0, 5, |t| t * t).unwrap();
        assert_eq!(w.len(), 5);
        assert_eq!(w.times()[4], 2.0);
        assert!((w.values()[2] - 1.0).abs() < 1e-12);
        assert!(Waveform::from_fn(0.0, 5, |t| t).is_err());
        assert!(Waveform::from_fn(1.0, 1, |t| t).is_err());
    }

    #[test]
    fn max_difference_between_waveforms() {
        let a = ramp();
        let b = Waveform::new(vec![0.0, 3.0], vec![0.0, 1.0]).unwrap();
        // b is a straight line from 0 to 1; a is above it at t=1 (0.5 vs 1/3).
        let d = a.max_difference(&b);
        assert!((d - (0.5 - 1.0 / 3.0)).abs() < 1e-9);
        assert_eq!(a.max_difference(&a), 0.0);
    }
}
