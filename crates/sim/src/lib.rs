//! # rctree-sim
//!
//! Exact simulation of lumped RC networks, built as the reference substrate
//! for the Penfield–Rubinstein bound reproduction (the paper's Figure 11
//! overlays "the exact solution, found from circuit simulation" on the
//! bounds — this crate regenerates that exact solution).
//!
//! Two independent solvers are provided:
//!
//! * [`transient`] — fixed-step backward-Euler / trapezoidal integration of
//!   the nodal equations;
//! * [`modal`] — closed-form solution by symmetric eigendecomposition
//!   (static condensation removes capacitance-free nodes first).
//!
//! Supporting modules implement the required numerics from scratch:
//! [`matrix`] (dense matrices), [`lu`] (LU factorization with partial
//! pivoting), [`eigen`] (cyclic Jacobi), [`network`] (MNA stamping and
//! distributed-line discretization) and [`waveform`] (measurements).
//! [`sweep`] shards whole-workload batches of either solver across the
//! `rctree-par` pool with serial-identical results.
//!
//! ```
//! use rctree_core::builder::RcTreeBuilder;
//! use rctree_core::units::{Farads, Ohms};
//! use rctree_sim::modal::exact_step_response;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = RcTreeBuilder::new();
//! let n = b.add_resistor(b.input(), "n", Ohms::new(1.0))?;
//! b.add_capacitance(n, Farads::new(1.0))?;
//! b.mark_output(n)?;
//! let tree = b.build()?;
//!
//! let wave = exact_step_response(&tree, tree.node_by_name("n")?, 1, 10.0, 2001)?;
//! assert!((wave.value_at(1.0) - (1.0 - (-1.0_f64).exp())).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod eigen;
pub mod error;
pub mod lu;
pub mod matrix;
pub mod modal;
pub mod network;
pub mod sweep;
pub mod transient;
pub mod waveform;

pub use crate::error::{Result, SimError};
pub use crate::modal::{exact_step_response, ModalStepResponse};
pub use crate::network::{LumpedNetwork, Terminal};
pub use crate::sweep::{modal_crossing_sweep, transient_crossing_sweep};
pub use crate::transient::{simulate, step_response, InputSource, Method, TransientOptions};
pub use crate::waveform::Waveform;

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::LumpedNetwork>();
        assert_send_sync::<crate::Waveform>();
        assert_send_sync::<crate::ModalStepResponse>();
        assert_send_sync::<crate::SimError>();
    }
}
