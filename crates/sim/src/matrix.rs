//! A small dense-matrix type with exactly the operations the simulator needs.
//!
//! The networks the paper analyses are small (tens to a few thousand nodes
//! after discretizing distributed lines), so a straightforward row-major
//! dense matrix with `O(n³)` factorizations is entirely adequate and keeps
//! this crate free of external numerical dependencies.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::error::{Result, SimError};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a nested slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map(|row| row.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(SimError::DimensionMismatch {
                what: "matrix-vector product",
                expected: self.cols,
                actual: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (i, out) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *out = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        Ok(y)
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if the inner dimensions
    /// disagree.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(SimError::DimensionMismatch {
                what: "matrix-matrix product",
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Adds `scale · other` to `self` in place.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if the shapes differ.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f64) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(SimError::DimensionMismatch {
                what: "matrix addition",
                expected: self.rows * self.cols,
                actual: other.rows * other.cols,
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Maximum absolute off-diagonal entry (used by the Jacobi eigensolver
    /// and symmetry checks).
    pub fn max_off_diagonal(&self) -> f64 {
        let mut best = 0.0_f64;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j {
                    best = best.max(self[(i, j)].abs());
                }
            }
        }
        best
    }

    /// Checks symmetry within an absolute tolerance.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(!z.is_square());
        let i = Matrix::identity(3);
        assert!(i.is_square());
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn from_rows_round_trips() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn mul_vec_works() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let y = m.mul_vec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
        assert!(m.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn mul_matrix_matches_identity() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.mul(&i).unwrap(), m);
        assert!(m.mul(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn transpose_swaps_indices() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::identity(2);
        let b = Matrix::identity(2);
        a.add_scaled(&b, 2.0).unwrap();
        assert_eq!(a[(0, 0)], 3.0);
        assert!(a.add_scaled(&Matrix::zeros(3, 3), 1.0).is_err());
    }

    #[test]
    fn symmetry_checks() {
        let s = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        assert!(s.is_symmetric(0.0));
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 2.0]]);
        assert!(!a.is_symmetric(1e-12));
        assert_eq!(a.max_off_diagonal(), 1.0);
        assert!(!Matrix::zeros(2, 3).is_symmetric(0.0));
    }

    #[test]
    fn display_has_rows() {
        let m = Matrix::identity(2);
        let s = m.to_string();
        assert_eq!(s.lines().count(), 2);
    }
}
