//! Analytic ("modal") step response of a lumped RC network.
//!
//! For the nodal system `C·dv/dt = −G·v + b·u(t)` with a unit step input,
//! the exact solution is a sum of decaying exponentials.  Nodes with zero
//! capacitance are removed first by static condensation (a Schur complement
//! on `G`), leaving a system with diagonal positive `C` that is reduced to a
//! standard symmetric eigenproblem on `C^{-1/2}·G̃·C^{-1/2}`:
//!
//! ```text
//! v_c(t) = 1 − Σ_j  k_{nj} · e^{−λ_j t}
//! ```
//!
//! This gives the "exact solution, found from circuit simulation" that the
//! paper overlays on its bounds in Figure 11, without any time-discretization
//! error.  The transient integrators of [`crate::transient`] provide an
//! independent cross-check.

use rctree_core::tree::NodeId;
use rctree_core::RcTree;

use crate::eigen::symmetric_eigen;
use crate::error::{Result, SimError};
use crate::lu::LuFactor;
use crate::matrix::Matrix;
use crate::network::LumpedNetwork;
use crate::waveform::Waveform;

/// Closed-form step response of every node of a lumped RC network.
#[derive(Debug, Clone)]
pub struct ModalStepResponse {
    /// Map from full node index to index among capacitive nodes (`None` for
    /// condensed, capacitance-free nodes).
    cap_index: Vec<Option<usize>>,
    /// Decay rates `λ_j` (1/seconds), ascending.
    poles: Vec<f64>,
    /// `coeffs[(i, j)]`: modal coefficient of capacitive node `i`, mode `j`.
    coeffs: Matrix,
    /// For condensed nodes: `v_z = A·v_c + c` (affine recovery).
    recover: Option<Recovery>,
    node_count: usize,
}

#[derive(Debug, Clone)]
struct Recovery {
    /// Indices (into the full node list) of the condensed nodes.
    zero_nodes: Vec<usize>,
    /// `A = G_zz⁻¹·(−G_zc)`, one row per condensed node, one column per
    /// capacitive node.
    a: Matrix,
    /// `c = G_zz⁻¹·b_z`, the instantaneous resistive divider value.
    c: Vec<f64>,
}

impl ModalStepResponse {
    /// Computes the modal decomposition of a lumped network.
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptyNetwork`] if the network has no nodes;
    /// * [`SimError::InvalidValue`] if every node is capacitance-free (the
    ///   response would be purely resistive and instantaneous);
    /// * [`SimError::SingularMatrix`] / [`SimError::EigenNoConvergence`] for
    ///   numerically degenerate networks.
    pub fn new(network: &LumpedNetwork) -> Result<Self> {
        let (g, caps, b) = network.assemble()?;
        let n = g.rows();

        // Partition nodes into capacitive and capacitance-free sets.
        let cap_nodes: Vec<usize> = (0..n).filter(|&i| caps[i] > 0.0).collect();
        let zero_nodes: Vec<usize> = (0..n).filter(|&i| caps[i] == 0.0).collect();
        if cap_nodes.is_empty() {
            return Err(SimError::InvalidValue {
                what: "total capacitance",
                value: 0.0,
            });
        }
        let mut cap_index = vec![None; n];
        for (k, &i) in cap_nodes.iter().enumerate() {
            cap_index[i] = Some(k);
        }

        let nc = cap_nodes.len();
        let nz = zero_nodes.len();

        // Extract blocks of G and b.
        let block = |rows: &[usize], cols: &[usize]| {
            let mut m = Matrix::zeros(rows.len(), cols.len());
            for (i, &r) in rows.iter().enumerate() {
                for (j, &c) in cols.iter().enumerate() {
                    m[(i, j)] = g[(r, c)];
                }
            }
            m
        };
        let g_cc = block(&cap_nodes, &cap_nodes);
        let b_c: Vec<f64> = cap_nodes.iter().map(|&i| b[i]).collect();

        // Static condensation of the capacitance-free nodes.
        let (g_tilde, b_tilde, recover) = if nz == 0 {
            (g_cc, b_c, None)
        } else {
            let g_zz = block(&zero_nodes, &zero_nodes);
            let g_zc = block(&zero_nodes, &cap_nodes);
            let g_cz = block(&cap_nodes, &zero_nodes);
            let b_z: Vec<f64> = zero_nodes.iter().map(|&i| b[i]).collect();
            let zz = LuFactor::new(&g_zz)?;

            // X = G_zz⁻¹·G_zc (nz × nc), y = G_zz⁻¹·b_z.
            let mut x = Matrix::zeros(nz, nc);
            for j in 0..nc {
                let col: Vec<f64> = (0..nz).map(|i| g_zc[(i, j)]).collect();
                let sol = zz.solve(&col)?;
                for i in 0..nz {
                    x[(i, j)] = sol[i];
                }
            }
            let y = zz.solve(&b_z)?;

            // G̃ = G_cc − G_cz·X,  b̃ = b_c − G_cz·y.
            let mut g_tilde = g_cc.clone();
            let correction = g_cz.mul(&x)?;
            g_tilde.add_scaled(&correction, -1.0)?;
            let gy = g_cz.mul_vec(&y)?;
            let b_tilde: Vec<f64> = b_c.iter().zip(&gy).map(|(bc, g)| bc - g).collect();

            // Recovery map for condensed nodes: v_z = −X·v_c + y·u.
            let mut a = Matrix::zeros(nz, nc);
            for i in 0..nz {
                for j in 0..nc {
                    a[(i, j)] = -x[(i, j)];
                }
            }
            (
                g_tilde,
                b_tilde,
                Some(Recovery {
                    zero_nodes: zero_nodes.clone(),
                    a,
                    c: y,
                }),
            )
        };

        // Steady state v∞ = G̃⁻¹·b̃ (all ones for a connected tree, but we
        // solve it to stay correct for any network).
        let v_inf = LuFactor::new(&g_tilde)?.solve(&b_tilde)?;

        // Symmetrize: A = C^{-1/2}·G̃·C^{-1/2}.
        let sqrt_c: Vec<f64> = cap_nodes.iter().map(|&i| caps[i].sqrt()).collect();
        let mut a_sym = Matrix::zeros(nc, nc);
        for i in 0..nc {
            for j in 0..nc {
                a_sym[(i, j)] = g_tilde[(i, j)] / (sqrt_c[i] * sqrt_c[j]);
            }
        }
        let eig = symmetric_eigen(&a_sym)?;

        // w(t) = C^{-1/2}·Q·e^{−Λt}·Qᵀ·C^{1/2}·w(0) with w(0) = −v∞, so
        // v_c(t) = v∞_n − Σ_j [C^{-1/2}Q]_{nj} · [QᵀC^{1/2}v∞]_j · e^{−λ_j t}.
        let mut weights = vec![0.0; nc];
        for (j, weight) in weights.iter_mut().enumerate() {
            let mut acc = 0.0;
            for i in 0..nc {
                acc += eig.vectors[(i, j)] * sqrt_c[i] * v_inf[i];
            }
            *weight = acc;
        }
        let mut coeffs = Matrix::zeros(nc, nc);
        for i in 0..nc {
            for j in 0..nc {
                coeffs[(i, j)] = eig.vectors[(i, j)] / sqrt_c[i] * weights[j];
            }
        }

        Ok(ModalStepResponse {
            cap_index,
            poles: eig.values,
            coeffs,
            recover,
            node_count: n,
        })
    }

    /// Computes the modal response of an [`RcTree`], discretizing distributed
    /// lines into `segments_per_line` π-segments.
    ///
    /// # Errors
    ///
    /// Propagates conversion and decomposition errors.
    pub fn from_tree(tree: &RcTree, segments_per_line: usize) -> Result<(Self, LumpedNetwork)> {
        let net = LumpedNetwork::from_tree(tree, segments_per_line)?;
        let modal = Self::new(&net)?;
        Ok((modal, net))
    }

    /// Decay rates `λ_j` of the network's natural modes, ascending (1/s).
    pub fn poles(&self) -> &[f64] {
        &self.poles
    }

    /// Number of internal nodes of the underlying network.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Exact step-response voltage of node `node` at time `t ≥ 0`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeOutOfRange`] for an unknown node index.
    pub fn voltage(&self, node: usize, t: f64) -> Result<f64> {
        if node >= self.node_count {
            return Err(SimError::NodeOutOfRange {
                index: node,
                len: self.node_count,
            });
        }
        if t < 0.0 {
            return Ok(0.0);
        }
        match self.cap_index[node] {
            Some(ci) => Ok(self.cap_voltage(ci, t)),
            None => {
                let rec = self
                    .recover
                    .as_ref()
                    .expect("condensed nodes imply recovery data");
                let row = rec
                    .zero_nodes
                    .iter()
                    .position(|&z| z == node)
                    .expect("node is condensed");
                let mut v = rec.c[row];
                for j in 0..rec.a.cols() {
                    v += rec.a[(row, j)] * self.cap_voltage(j, t);
                }
                Ok(v)
            }
        }
    }

    fn cap_voltage(&self, cap_node: usize, t: f64) -> f64 {
        let mut v = 0.0;
        // v(t) = v∞ − Σ coeff·e^{−λt};  v∞ is Σ_j coeff at t→∞... v∞ is
        // recovered as the sum of coefficients at t = 0 subtracted from the
        // initial value 0: v(0) = v∞ − Σ_j k_j = 0, so v∞ = Σ_j k_j.
        let mut v_inf = 0.0;
        for j in 0..self.poles.len() {
            let k = self.coeffs[(cap_node, j)];
            v_inf += k;
            v -= k * (-self.poles[j] * t).exp();
        }
        v_inf + v
    }

    /// Samples the step response of a node on a uniform grid.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::NodeOutOfRange`] and waveform construction
    /// errors.
    pub fn waveform(&self, node: usize, t_stop: f64, samples: usize) -> Result<Waveform> {
        let positive = |x: f64| x > 0.0;
        if samples < 2 || !positive(t_stop) {
            return Err(SimError::InvalidTimeGrid {
                reason: "need at least 2 samples and a positive horizon",
            });
        }
        let times: Vec<f64> = (0..samples)
            .map(|i| t_stop * i as f64 / (samples - 1) as f64)
            .collect();
        let mut values = Vec::with_capacity(samples);
        for &t in &times {
            values.push(self.voltage(node, t)?);
        }
        Waveform::new(times, values)
    }

    /// Exact time at which node `node` first reaches `threshold`, found by
    /// bisection on the (monotone) modal response.
    ///
    /// # Errors
    ///
    /// * [`SimError::NodeOutOfRange`] for an unknown node;
    /// * [`SimError::ThresholdNotReached`] if the steady-state value is below
    ///   the threshold.
    pub fn crossing_time(&self, node: usize, threshold: f64) -> Result<f64> {
        if node >= self.node_count {
            return Err(SimError::NodeOutOfRange {
                index: node,
                len: self.node_count,
            });
        }
        let slowest = self
            .poles
            .iter()
            .copied()
            .filter(|&l| l > 0.0)
            .fold(f64::INFINITY, f64::min);
        let mut hi = if slowest.is_finite() {
            10.0 / slowest
        } else {
            1.0
        };
        let mut guard = 0;
        while self.voltage(node, hi)? < threshold && guard < 200 {
            hi *= 2.0;
            guard += 1;
            if guard == 200 {
                return Err(SimError::ThresholdNotReached { threshold });
            }
        }
        if self.voltage(node, hi)? < threshold {
            return Err(SimError::ThresholdNotReached { threshold });
        }
        let mut lo = 0.0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.voltage(node, mid)? >= threshold {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(hi)
    }
}

/// Convenience wrapper: the exact step-response waveform of an [`RcTree`]
/// output via modal decomposition.
///
/// # Errors
///
/// Propagates conversion and decomposition errors; returns
/// [`SimError::NodeOutOfRange`] if `output` is the tree's input node.
pub fn exact_step_response(
    tree: &RcTree,
    output: NodeId,
    segments_per_line: usize,
    t_stop: f64,
    samples: usize,
) -> Result<Waveform> {
    let (modal, net) = ModalStepResponse::from_tree(tree, segments_per_line)?;
    match net.index_of(output)? {
        Some(idx) => modal.waveform(idx, t_stop, samples),
        None => Err(SimError::NodeOutOfRange {
            index: output.index(),
            len: net.node_count(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Terminal;
    use crate::transient::{simulate, InputSource, TransientOptions};
    use rctree_core::builder::RcTreeBuilder;
    use rctree_core::units::{Farads, Ohms};

    fn single_lump() -> LumpedNetwork {
        let mut net = LumpedNetwork::new();
        let a = net.add_node("a", 2.0).unwrap();
        net.add_resistor(Terminal::Input, Terminal::Node(a), 3.0)
            .unwrap();
        net
    }

    #[test]
    fn single_lump_pole_and_response() {
        let modal = ModalStepResponse::new(&single_lump()).unwrap();
        assert_eq!(modal.poles().len(), 1);
        assert!((modal.poles()[0] - 1.0 / 6.0).abs() < 1e-12);
        for &t in &[0.0_f64, 1.0, 3.0, 10.0] {
            let exact = 1.0 - (-t / 6.0).exp();
            assert!((modal.voltage(0, t).unwrap() - exact).abs() < 1e-12);
        }
        assert_eq!(modal.voltage(0, -1.0).unwrap(), 0.0);
    }

    #[test]
    fn crossing_time_matches_analytic() {
        let modal = ModalStepResponse::new(&single_lump()).unwrap();
        let t50 = modal.crossing_time(0, 0.5).unwrap();
        assert!((t50 - 6.0 * (2.0_f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn two_lump_ladder_matches_transient() {
        let mut net = LumpedNetwork::new();
        let a = net.add_node("a", 1.0).unwrap();
        let b = net.add_node("b", 2.0).unwrap();
        net.add_resistor(Terminal::Input, Terminal::Node(a), 1.0)
            .unwrap();
        net.add_resistor(Terminal::Node(a), Terminal::Node(b), 3.0)
            .unwrap();
        let modal = ModalStepResponse::new(&net).unwrap();
        let transient =
            simulate(&net, InputSource::Step, TransientOptions::new(0.002, 30.0)).unwrap();
        for node in [a, b] {
            let wave = transient.waveform(node).unwrap();
            for &t in &[0.5, 2.0, 5.0, 15.0] {
                assert!(
                    (modal.voltage(node, t).unwrap() - wave.value_at(t)).abs() < 1e-4,
                    "node {node} at t={t}"
                );
            }
        }
    }

    #[test]
    fn condensed_zero_cap_node_is_recovered() {
        // input --1Ω-- mid(no cap) --1Ω-- out(1F): effective RC = 2·1.
        let mut net = LumpedNetwork::new();
        let mid = net.add_node("mid", 0.0).unwrap();
        let out = net.add_node("out", 1.0).unwrap();
        net.add_resistor(Terminal::Input, Terminal::Node(mid), 1.0)
            .unwrap();
        net.add_resistor(Terminal::Node(mid), Terminal::Node(out), 1.0)
            .unwrap();
        let modal = ModalStepResponse::new(&net).unwrap();
        assert_eq!(modal.poles().len(), 1);
        assert!((modal.poles()[0] - 0.5).abs() < 1e-12);
        // Exact: v_out = 1 − e^{−t/2}; v_mid = (1 + v_out)/2.
        for &t in &[0.5, 1.0, 4.0] {
            let v_out = 1.0 - (-t / 2.0_f64).exp();
            let v_mid = 0.5 * (1.0 + v_out);
            assert!((modal.voltage(out, t).unwrap() - v_out).abs() < 1e-12);
            assert!((modal.voltage(mid, t).unwrap() - v_mid).abs() < 1e-12);
        }
    }

    #[test]
    fn tree_step_response_settles_and_is_monotone() {
        let mut b = RcTreeBuilder::new();
        let a = b.add_resistor(b.input(), "a", Ohms::new(15.0)).unwrap();
        b.add_capacitance(a, Farads::new(2.0)).unwrap();
        let s = b.add_resistor(a, "s", Ohms::new(8.0)).unwrap();
        b.add_capacitance(s, Farads::new(7.0)).unwrap();
        let o = b
            .add_line(a, "o", Ohms::new(3.0), Farads::new(4.0))
            .unwrap();
        b.add_capacitance(o, Farads::new(9.0)).unwrap();
        b.mark_output(o).unwrap();
        let tree = b.build().unwrap();
        let out = tree.node_by_name("o").unwrap();
        let wave = exact_step_response(&tree, out, 8, 10_000.0, 600).unwrap();
        assert!(wave.is_monotone_nondecreasing(1e-9));
        assert!((wave.final_value() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn waveform_and_node_validation() {
        let modal = ModalStepResponse::new(&single_lump()).unwrap();
        assert!(modal.voltage(5, 1.0).is_err());
        assert!(modal.waveform(0, 0.0, 10).is_err());
        assert!(modal.waveform(0, 10.0, 1).is_err());
        assert!(modal.crossing_time(5, 0.5).is_err());
        assert_eq!(modal.node_count(), 1);
    }

    #[test]
    fn network_without_capacitance_is_rejected() {
        let mut net = LumpedNetwork::new();
        let a = net.add_node("a", 0.0).unwrap();
        net.add_resistor(Terminal::Input, Terminal::Node(a), 1.0)
            .unwrap();
        assert!(ModalStepResponse::new(&net).is_err());
    }
}
