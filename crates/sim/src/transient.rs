//! Time-domain integration of the nodal equations.
//!
//! The nodal system assembled by
//! [`LumpedNetwork::assemble`](crate::network::LumpedNetwork::assemble) is
//!
//! ```text
//! C · dv/dt = −G · v + b · u(t),        v(0) = 0,
//! ```
//!
//! integrated here with either backward Euler (A-stable, first order) or the
//! trapezoidal rule (A-stable, second order).  Both methods factor their
//! constant iteration matrix once with [`LuFactor`] and reuse it for every
//! step, so a simulation costs one `O(n³)` factorization plus `O(n²)` per
//! step.
//!
//! Nodes with zero capacitance (e.g. the junction between two series
//! resistors) make `C` singular; they are handled implicitly because the
//! iteration matrix `C/h + αG` remains non-singular for connected resistive
//! networks.

use rctree_core::tree::NodeId;
use rctree_core::RcTree;

use crate::error::{Result, SimError};
use crate::lu::LuFactor;
use crate::matrix::Matrix;
use crate::network::LumpedNetwork;
use crate::waveform::Waveform;

/// Excitation applied at the input node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InputSource {
    /// A unit step at `t = 0` (the excitation analysed by the paper).
    Step,
    /// A linear ramp from 0 to 1 over the given rise time (seconds).
    Ramp {
        /// Rise time of the ramp in seconds.
        rise_time: f64,
    },
}

impl InputSource {
    /// Value of the source at time `t`.
    pub fn value(&self, t: f64) -> f64 {
        match *self {
            InputSource::Step => {
                if t >= 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            InputSource::Ramp { rise_time } => (t / rise_time).clamp(0.0, 1.0),
        }
    }
}

/// Integration scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Backward Euler: first-order, strongly damping.
    BackwardEuler,
    /// Trapezoidal rule: second-order accurate.
    Trapezoidal,
}

/// Options controlling a transient simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Integration scheme (default: trapezoidal).
    pub method: Method,
    /// Fixed time step in seconds.
    pub time_step: f64,
    /// Simulation horizon in seconds.
    pub t_stop: f64,
}

impl TransientOptions {
    /// Creates options with the trapezoidal rule and the given grid.
    pub fn new(time_step: f64, t_stop: f64) -> Self {
        TransientOptions {
            method: Method::Trapezoidal,
            time_step,
            t_stop,
        }
    }

    /// Switches to backward Euler.
    #[must_use]
    pub fn with_method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }
}

/// Result of a transient simulation: voltages of every internal node on the
/// simulation grid.
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    /// `voltages[node][step]`.
    voltages: Vec<Vec<f64>>,
}

impl TransientResult {
    /// The simulation time grid.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of internal nodes.
    pub fn node_count(&self) -> usize {
        self.voltages.len()
    }

    /// The waveform of one internal node.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeOutOfRange`] for an unknown node index.
    pub fn waveform(&self, node: usize) -> Result<Waveform> {
        let series = self
            .voltages
            .get(node)
            .ok_or(SimError::NodeOutOfRange {
                index: node,
                len: self.voltages.len(),
            })?
            .clone();
        Waveform::new(self.times.clone(), series)
    }
}

/// Runs a transient simulation of a lumped network.
///
/// # Errors
///
/// * [`SimError::InvalidTimeGrid`] for a non-positive step or horizon;
/// * [`SimError::EmptyNetwork`] if the network has no internal nodes;
/// * [`SimError::SingularMatrix`] if the iteration matrix cannot be factored
///   (e.g. a node with no resistive or capacitive connection at all).
pub fn simulate(
    network: &LumpedNetwork,
    source: InputSource,
    options: TransientOptions,
) -> Result<TransientResult> {
    // `is_positive`-style checks must also reject NaN, hence no plain `<= 0.0`.
    let positive = |x: f64| x > 0.0;
    if !positive(options.time_step)
        || !positive(options.t_stop)
        || options.t_stop < options.time_step
    {
        return Err(SimError::InvalidTimeGrid {
            reason: "time_step and t_stop must be positive with t_stop ≥ time_step",
        });
    }
    if let InputSource::Ramp { rise_time } = source {
        if !positive(rise_time) {
            return Err(SimError::InvalidValue {
                what: "ramp rise time",
                value: rise_time,
            });
        }
    }

    let (g, c, b) = network.assemble()?;
    let n = g.rows();
    let h = options.time_step;
    let steps = (options.t_stop / h).ceil() as usize;

    // Iteration matrix A = C/h + α·G with α = 1 (BE) or 1/2 (TR).
    let alpha = match options.method {
        Method::BackwardEuler => 1.0,
        Method::Trapezoidal => 0.5,
    };
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        a[(i, i)] = c[i] / h;
    }
    a.add_scaled(&g, alpha)?;
    let factor = LuFactor::new(&a)?;

    let mut v = vec![0.0; n];
    let mut times = Vec::with_capacity(steps + 1);
    let mut voltages = vec![Vec::with_capacity(steps + 1); n];
    times.push(0.0);
    for (node, series) in voltages.iter_mut().enumerate() {
        series.push(v[node]);
    }

    for step in 1..=steps {
        let t_new = step as f64 * h;
        let t_old = t_new - h;
        let u_new = source.value(t_new);
        let u_old = source.value(t_old);

        // Right-hand side.
        let mut rhs = vec![0.0; n];
        match options.method {
            Method::BackwardEuler => {
                for i in 0..n {
                    rhs[i] = c[i] / h * v[i] + b[i] * u_new;
                }
            }
            Method::Trapezoidal => {
                let gv = g.mul_vec(&v)?;
                for i in 0..n {
                    rhs[i] = c[i] / h * v[i] - 0.5 * gv[i] + 0.5 * b[i] * (u_new + u_old);
                }
            }
        }
        v = factor.solve(&rhs)?;
        times.push(t_new);
        for (node, series) in voltages.iter_mut().enumerate() {
            series.push(v[node]);
        }
    }

    Ok(TransientResult { times, voltages })
}

/// Convenience wrapper: simulates the unit-step response of an [`RcTree`]
/// output and returns its waveform.
///
/// Distributed lines are discretized into `segments_per_line` π-segments.
///
/// # Errors
///
/// Propagates conversion and simulation errors; additionally returns
/// [`SimError::NodeOutOfRange`] if `output` maps to the input node (whose
/// voltage is the source itself).
pub fn step_response(
    tree: &RcTree,
    output: NodeId,
    segments_per_line: usize,
    options: TransientOptions,
) -> Result<Waveform> {
    let net = LumpedNetwork::from_tree(tree, segments_per_line)?;
    let result = simulate(&net, InputSource::Step, options)?;
    match net.index_of(output)? {
        Some(idx) => result.waveform(idx),
        None => Err(SimError::NodeOutOfRange {
            index: output.index(),
            len: net.node_count(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Terminal;
    use rctree_core::builder::RcTreeBuilder;
    use rctree_core::units::{Farads, Ohms};

    /// Single RC lump: v(t) = 1 − e^{−t/RC}.
    fn single_lump() -> LumpedNetwork {
        let mut net = LumpedNetwork::new();
        let a = net.add_node("a", 1.0).unwrap();
        net.add_resistor(Terminal::Input, Terminal::Node(a), 1.0)
            .unwrap();
        net
    }

    #[test]
    fn single_lump_matches_analytic_exponential() {
        let net = single_lump();
        for method in [Method::BackwardEuler, Method::Trapezoidal] {
            let opts = TransientOptions::new(0.001, 5.0).with_method(method);
            let result = simulate(&net, InputSource::Step, opts).unwrap();
            let w = result.waveform(0).unwrap();
            let tol = match method {
                Method::BackwardEuler => 5e-3,
                Method::Trapezoidal => 1e-5,
            };
            for &t in &[0.5, 1.0, 2.0, 4.0] {
                let exact = 1.0 - (-t_f(t)).exp();
                assert!(
                    (w.value_at(t) - exact).abs() < tol,
                    "{method:?} at t={t}: {} vs {exact}",
                    w.value_at(t)
                );
            }
        }
        fn t_f(t: f64) -> f64 {
            t
        }
    }

    #[test]
    fn trapezoidal_is_more_accurate_than_backward_euler() {
        let net = single_lump();
        let opts_be = TransientOptions::new(0.01, 3.0).with_method(Method::BackwardEuler);
        let opts_tr = TransientOptions::new(0.01, 3.0).with_method(Method::Trapezoidal);
        let be = simulate(&net, InputSource::Step, opts_be)
            .unwrap()
            .waveform(0)
            .unwrap();
        let tr = simulate(&net, InputSource::Step, opts_tr)
            .unwrap()
            .waveform(0)
            .unwrap();
        let exact = |t: f64| 1.0 - (-t).exp();
        let err = |w: &Waveform| {
            w.times()
                .iter()
                .zip(w.values())
                .map(|(&t, &v)| (v - exact(t)).abs())
                .fold(0.0, f64::max)
        };
        assert!(err(&tr) < err(&be));
    }

    #[test]
    fn response_is_monotone_and_settles_to_one() {
        let mut b = RcTreeBuilder::new();
        let a = b.add_resistor(b.input(), "a", Ohms::new(2.0)).unwrap();
        b.add_capacitance(a, Farads::new(1.0)).unwrap();
        let w = b
            .add_line(a, "w", Ohms::new(4.0), Farads::new(0.5))
            .unwrap();
        b.add_capacitance(w, Farads::new(2.0)).unwrap();
        b.mark_output(w).unwrap();
        let tree = b.build().unwrap();
        let out = tree.node_by_name("w").unwrap();
        let wave = step_response(&tree, out, 4, TransientOptions::new(0.01, 300.0)).unwrap();
        assert!(wave.is_monotone_nondecreasing(1e-9));
        assert!((wave.final_value() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn zero_cap_intermediate_node_is_handled() {
        // input --R-- mid (no cap) --R-- out (cap): C is singular but the
        // iteration matrix is not.
        let mut net = LumpedNetwork::new();
        let mid = net.add_node("mid", 0.0).unwrap();
        let out = net.add_node("out", 1.0).unwrap();
        net.add_resistor(Terminal::Input, Terminal::Node(mid), 1.0)
            .unwrap();
        net.add_resistor(Terminal::Node(mid), Terminal::Node(out), 1.0)
            .unwrap();
        let result = simulate(&net, InputSource::Step, TransientOptions::new(0.005, 20.0)).unwrap();
        let w = result.waveform(out).unwrap();
        // Effective single pole with R = 2, C = 1.
        let exact = |t: f64| 1.0 - (-t / 2.0).exp();
        for &t in &[1.0, 2.0, 5.0] {
            assert!((w.value_at(t) - exact(t)).abs() < 1e-3);
        }
    }

    #[test]
    fn ramp_source_lags_step_source() {
        let net = single_lump();
        let opts = TransientOptions::new(0.005, 10.0);
        let step = simulate(&net, InputSource::Step, opts)
            .unwrap()
            .waveform(0)
            .unwrap();
        let ramp = simulate(&net, InputSource::Ramp { rise_time: 2.0 }, opts)
            .unwrap()
            .waveform(0)
            .unwrap();
        for &t in &[0.5, 1.0, 2.0, 4.0] {
            assert!(ramp.value_at(t) <= step.value_at(t) + 1e-9);
        }
        assert!((ramp.final_value() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn source_values() {
        assert_eq!(InputSource::Step.value(-1.0), 0.0);
        assert_eq!(InputSource::Step.value(0.0), 1.0);
        let ramp = InputSource::Ramp { rise_time: 4.0 };
        assert_eq!(ramp.value(2.0), 0.5);
        assert_eq!(ramp.value(8.0), 1.0);
        assert_eq!(ramp.value(-1.0), 0.0);
    }

    #[test]
    fn invalid_options_rejected() {
        let net = single_lump();
        assert!(simulate(&net, InputSource::Step, TransientOptions::new(0.0, 1.0)).is_err());
        assert!(simulate(&net, InputSource::Step, TransientOptions::new(0.1, 0.0)).is_err());
        assert!(simulate(
            &net,
            InputSource::Ramp { rise_time: 0.0 },
            TransientOptions::new(0.1, 1.0)
        )
        .is_err());
        assert!(simulate(&net, InputSource::Step, TransientOptions::new(1.0, 0.5)).is_err());
    }

    #[test]
    fn waveform_index_out_of_range() {
        let net = single_lump();
        let r = simulate(&net, InputSource::Step, TransientOptions::new(0.1, 1.0)).unwrap();
        assert_eq!(r.node_count(), 1);
        assert!(r.waveform(3).is_err());
        assert_eq!(r.times()[0], 0.0);
    }
}
