//! Parallel workload sweeps over the exact simulators.
//!
//! Validation campaigns ("the exact response always lies between the
//! bounds") and technology explorations simulate *batches* of trees — one
//! exact solve per generated workload.  Each solve is independent, so a
//! sweep shards across the `rctree-par` pool exactly the way
//! `rctree-sta::Design::analyze` shards nets: every tree is solved whole
//! inside one job and results are merged in input order, which keeps the
//! output **bit-identical** to the serial sweep for any worker count (the
//! eigendecomposition and integration paths never depend on scheduling).
//!
//! ```
//! use rctree_core::builder::RcTreeBuilder;
//! use rctree_core::units::{Farads, Ohms};
//! use rctree_sim::sweep::modal_crossing_sweep;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = RcTreeBuilder::new();
//! let n = b.add_resistor(b.input(), "n", Ohms::new(1.0))?;
//! b.add_capacitance(n, Farads::new(1.0))?;
//! b.mark_output(n)?;
//! let trees = vec![b.build()?];
//!
//! let crossings = modal_crossing_sweep(&trees, 0.5, 4, 2);
//! let per_output = crossings[0].as_ref().unwrap();
//! // 1 Ω · 1 F lump crosses 50% at t = RC·ln 2.
//! assert!((per_output[0].1 - (2.0_f64).ln()).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

use rctree_core::tree::{NodeId, RcTree};

use crate::error::{Result, SimError};
use crate::modal::ModalStepResponse;
use crate::network::LumpedNetwork;
use crate::transient::{simulate, InputSource, TransientOptions};

/// Resolves a tree output to its index in the lumped network.
fn output_index(lumped: &LumpedNetwork, output: NodeId) -> Result<usize> {
    lumped.index_of(output)?.ok_or(SimError::NodeOutOfRange {
        index: output.index(),
        len: lumped.node_count(),
    })
}

/// Exact modal threshold-crossing times of every output of every tree,
/// sharded over `jobs` workers.
///
/// Per tree: one symmetric eigendecomposition of the condensed network,
/// then a bisection per output.  Results come back in input order, one
/// `(output, crossing time)` list per tree; per-tree failures (e.g. a
/// capacitance-free tree) surface as that slot's `Err` without aborting
/// the sweep.
pub fn modal_crossing_sweep(
    trees: &[RcTree],
    threshold: f64,
    segments_per_line: usize,
    jobs: usize,
) -> Vec<Result<Vec<(NodeId, f64)>>> {
    rctree_par::par_map_indexed(jobs, trees, |_, tree| {
        let lumped = LumpedNetwork::from_tree(tree, segments_per_line)?;
        let modal = ModalStepResponse::new(&lumped)?;
        let mut out = Vec::new();
        for output in tree.outputs() {
            let idx = output_index(&lumped, output)?;
            out.push((output, modal.crossing_time(idx, threshold)?));
        }
        Ok(out)
    })
}

/// Transient (fixed-step integration) threshold crossings of every output
/// of every tree, sharded over `jobs` workers.
///
/// Per tree: one backward-Euler/trapezoidal run over the whole network,
/// then a grid interpolation per output.  Same ordering and determinism
/// guarantees as [`modal_crossing_sweep`].
pub fn transient_crossing_sweep(
    trees: &[RcTree],
    threshold: f64,
    segments_per_line: usize,
    options: TransientOptions,
    jobs: usize,
) -> Vec<Result<Vec<(NodeId, f64)>>> {
    rctree_par::par_map_indexed(jobs, trees, move |_, tree| {
        let lumped = LumpedNetwork::from_tree(tree, segments_per_line)?;
        let result = simulate(&lumped, InputSource::Step, options)?;
        let mut out = Vec::new();
        for output in tree.outputs() {
            let idx = output_index(&lumped, output)?;
            out.push((output, result.waveform(idx)?.first_crossing(threshold)?));
        }
        Ok(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rctree_core::builder::RcTreeBuilder;
    use rctree_core::units::{Farads, Ohms};

    fn lump(r: f64, c: f64) -> RcTree {
        let mut b = RcTreeBuilder::new();
        let n = b.add_resistor(b.input(), "n", Ohms::new(r)).unwrap();
        b.add_capacitance(n, Farads::new(c)).unwrap();
        b.mark_output(n).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn modal_sweep_matches_closed_form_lumps() {
        let trees: Vec<RcTree> = (1..=6).map(|k| lump(k as f64, 1.0)).collect();
        let crossings = modal_crossing_sweep(&trees, 0.5, 4, 3);
        for (k, slot) in crossings.iter().enumerate() {
            let per_output = slot.as_ref().unwrap();
            assert_eq!(per_output.len(), 1);
            let rc = (k + 1) as f64;
            let want = rc * (2.0_f64).ln();
            assert!(
                (per_output[0].1 - want).abs() < 1e-6 * want,
                "tree {k}: {} vs {want}",
                per_output[0].1
            );
        }
    }

    #[test]
    fn sweeps_are_identical_across_worker_counts() {
        let trees: Vec<RcTree> = (1..=9).map(|k| lump(k as f64, 0.5)).collect();
        let opts = TransientOptions::new(0.01, 20.0);
        let serial_modal = modal_crossing_sweep(&trees, 0.9, 4, 1);
        let serial_tran = transient_crossing_sweep(&trees, 0.9, 4, opts, 1);
        for jobs in [2, 5, rctree_par::available_parallelism()] {
            assert_eq!(
                modal_crossing_sweep(&trees, 0.9, 4, jobs),
                serial_modal,
                "modal, jobs = {jobs}"
            );
            assert_eq!(
                transient_crossing_sweep(&trees, 0.9, 4, opts, jobs),
                serial_tran,
                "transient, jobs = {jobs}"
            );
        }
    }

    #[test]
    fn per_tree_failures_do_not_abort_the_sweep() {
        // A capacitance-free tree cannot be simulated; its slot errors while
        // the healthy neighbours still produce results.
        let mut b = RcTreeBuilder::new();
        let n = b.add_resistor(b.input(), "n", Ohms::new(1.0)).unwrap();
        b.mark_output(n).unwrap();
        let broken = b.build().unwrap();
        let trees = vec![lump(1.0, 1.0), broken, lump(2.0, 1.0)];
        let crossings = modal_crossing_sweep(&trees, 0.5, 4, 2);
        assert!(crossings[0].is_ok());
        assert!(crossings[1].is_err());
        assert!(crossings[2].is_ok());
    }
}
