//! Lumped RC networks and their MNA matrices.
//!
//! The simulator works on a *lumped* network: grounded capacitors at nodes
//! and resistors between nodes (or between a node and the driven input).
//! An [`RcTree`] is converted into such a network by
//! [`LumpedNetwork::from_tree`], which replaces every distributed uniform RC
//! line by a chain of π-segments (half the segment capacitance at each end
//! of the segment resistance); the approximation error vanishes
//! quadratically in the number of segments.
//!
//! With the input node driven by a known voltage source `u(t)` and all other
//! node voltages collected in the vector `v`, nodal analysis gives
//!
//! ```text
//! C · dv/dt = −G · v + b · u(t)
//! ```
//!
//! where `G` is the (symmetric, weakly diagonally dominant) conductance
//! matrix over the internal nodes, `C` the diagonal capacitance matrix and
//! `b` holds the conductances tying each node to the input.

use std::collections::HashMap;

use rctree_core::element::Branch;
use rctree_core::tree::{NodeId, RcTree};

use crate::error::{Result, SimError};
use crate::matrix::Matrix;

/// One terminal of a resistor inside a [`LumpedNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminal {
    /// The driven input node (the voltage source).
    Input,
    /// An internal node, by index.
    Node(usize),
}

/// A lumped RC network referenced to a single driven input and ground.
#[derive(Debug, Clone)]
pub struct LumpedNetwork {
    node_names: Vec<String>,
    /// Grounded capacitance at each internal node (farads).
    caps: Vec<f64>,
    /// Resistors as (terminal, terminal, resistance in ohms).
    resistors: Vec<(Terminal, Terminal, f64)>,
    /// Mapping from original tree nodes to internal node indices (the input
    /// maps to `None`).
    tree_index: HashMap<NodeId, Option<usize>>,
}

impl LumpedNetwork {
    /// Minimum resistance substituted for exact shorts so that the
    /// conductance matrix stays finite.  Far below any physically meaningful
    /// interconnect resistance.
    pub const SHORT_RESISTANCE: f64 = 1e-9;

    /// Builds an empty network.
    pub fn new() -> Self {
        LumpedNetwork {
            node_names: Vec::new(),
            caps: Vec::new(),
            resistors: Vec::new(),
            tree_index: HashMap::new(),
        }
    }

    /// Adds an internal node with the given name and grounded capacitance,
    /// returning its index.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidValue`] if the capacitance is negative or
    /// not finite.
    pub fn add_node(&mut self, name: impl Into<String>, cap: f64) -> Result<usize> {
        if !cap.is_finite() || cap < 0.0 {
            return Err(SimError::InvalidValue {
                what: "node capacitance",
                value: cap,
            });
        }
        self.node_names.push(name.into());
        self.caps.push(cap);
        Ok(self.node_names.len() - 1)
    }

    /// Adds capacitance to an existing node.
    ///
    /// # Errors
    ///
    /// * [`SimError::NodeOutOfRange`] for an unknown node;
    /// * [`SimError::InvalidValue`] for a negative or non-finite value.
    pub fn add_capacitance(&mut self, node: usize, cap: f64) -> Result<()> {
        if node >= self.caps.len() {
            return Err(SimError::NodeOutOfRange {
                index: node,
                len: self.caps.len(),
            });
        }
        if !cap.is_finite() || cap < 0.0 {
            return Err(SimError::InvalidValue {
                what: "node capacitance",
                value: cap,
            });
        }
        self.caps[node] += cap;
        Ok(())
    }

    /// Adds a resistor between two terminals.  A zero resistance is replaced
    /// by [`Self::SHORT_RESISTANCE`].
    ///
    /// # Errors
    ///
    /// * [`SimError::NodeOutOfRange`] for an unknown node terminal;
    /// * [`SimError::InvalidValue`] for a negative or non-finite resistance.
    pub fn add_resistor(&mut self, a: Terminal, b: Terminal, resistance: f64) -> Result<()> {
        if !resistance.is_finite() || resistance < 0.0 {
            return Err(SimError::InvalidValue {
                what: "resistance",
                value: resistance,
            });
        }
        for t in [a, b] {
            if let Terminal::Node(i) = t {
                if i >= self.caps.len() {
                    return Err(SimError::NodeOutOfRange {
                        index: i,
                        len: self.caps.len(),
                    });
                }
            }
        }
        let r = if resistance == 0.0 {
            Self::SHORT_RESISTANCE
        } else {
            resistance
        };
        self.resistors.push((a, b, r));
        Ok(())
    }

    /// Converts an [`RcTree`] into a lumped network, replacing every
    /// distributed line by `segments_per_line` π-segments.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidTimeGrid`] if `segments_per_line` is zero;
    /// * construction errors from invalid element values.
    pub fn from_tree(tree: &RcTree, segments_per_line: usize) -> Result<Self> {
        if segments_per_line == 0 {
            return Err(SimError::InvalidTimeGrid {
                reason: "segments_per_line must be at least 1",
            });
        }
        let mut net = LumpedNetwork::new();
        net.tree_index.insert(tree.input(), None);

        for id in tree.preorder() {
            if id == tree.input() {
                continue;
            }
            let name = tree.name(id)?.to_string();
            let cap = tree.capacitance(id)?.value();
            let parent = tree.parent(id)?.expect("non-input node has a parent");
            let parent_term = match net.tree_index[&parent] {
                None => Terminal::Input,
                Some(i) => Terminal::Node(i),
            };
            let branch = tree.branch(id)?.expect("non-input node has a branch");
            if branch.resistance().is_zero() {
                // A zero-resistance branch ties the node to its parent's
                // potential; merging them avoids introducing numerically
                // stiff "short" resistors.  Capacitance hanging directly on
                // the driven input is absorbed by the ideal source.
                let total_cap = cap + branch.capacitance().value();
                match parent_term {
                    Terminal::Node(p) => net.add_capacitance(p, total_cap)?,
                    Terminal::Input => {}
                }
                net.tree_index.insert(id, net.tree_index[&parent]);
                continue;
            }
            match branch {
                Branch::Resistor { resistance } => {
                    let idx = net.add_node(&name, cap)?;
                    net.add_resistor(parent_term, Terminal::Node(idx), resistance.value())?;
                    net.tree_index.insert(id, Some(idx));
                }
                Branch::Line {
                    resistance,
                    capacitance,
                } => {
                    let s = segments_per_line;
                    let r_seg = resistance.value() / s as f64;
                    let c_seg = capacitance.value() / s as f64;
                    let mut prev = parent_term;
                    // Half of the first segment's capacitance belongs at the
                    // driving node; if that node is the input it is absorbed
                    // by the source and can be dropped.
                    if let Terminal::Node(p) = prev {
                        net.add_capacitance(p, c_seg / 2.0)?;
                    }
                    for seg in 0..s {
                        let is_last = seg + 1 == s;
                        let seg_cap = if is_last {
                            // Far end: half of this segment plus the node's
                            // own lumped capacitance.
                            c_seg / 2.0 + cap
                        } else {
                            // Interior junction: half of this segment plus
                            // half of the next one.
                            c_seg
                        };
                        let seg_name = if is_last {
                            name.clone()
                        } else {
                            format!("{name}__seg{}", seg + 1)
                        };
                        let idx = net.add_node(seg_name, seg_cap)?;
                        net.add_resistor(prev, Terminal::Node(idx), r_seg)?;
                        prev = Terminal::Node(idx);
                        if is_last {
                            net.tree_index.insert(id, Some(idx));
                        }
                    }
                }
            }
        }
        Ok(net)
    }

    /// Number of internal nodes.
    pub fn node_count(&self) -> usize {
        self.caps.len()
    }

    /// Name of an internal node.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeOutOfRange`] for an unknown index.
    pub fn node_name(&self, node: usize) -> Result<&str> {
        self.node_names
            .get(node)
            .map(String::as_str)
            .ok_or(SimError::NodeOutOfRange {
                index: node,
                len: self.caps.len(),
            })
    }

    /// Grounded capacitance of every internal node, in node order.
    pub fn capacitances(&self) -> &[f64] {
        &self.caps
    }

    /// The internal node index corresponding to a tree node, or `None` if
    /// the tree node is the input.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NodeOutOfRange`] if the tree node was not part of
    /// the converted tree.
    pub fn index_of(&self, tree_node: NodeId) -> Result<Option<usize>> {
        self.tree_index
            .get(&tree_node)
            .copied()
            .ok_or(SimError::NodeOutOfRange {
                index: tree_node.index(),
                len: self.caps.len(),
            })
    }

    /// Assembles the conductance matrix `G`, the capacitance vector `C` and
    /// the input-coupling vector `b` of the nodal equations.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyNetwork`] if there are no internal nodes.
    pub fn assemble(&self) -> Result<(Matrix, Vec<f64>, Vec<f64>)> {
        let n = self.node_count();
        if n == 0 {
            return Err(SimError::EmptyNetwork);
        }
        let mut g = Matrix::zeros(n, n);
        let mut b = vec![0.0; n];
        for &(t1, t2, r) in &self.resistors {
            let cond = 1.0 / r;
            match (t1, t2) {
                (Terminal::Node(i), Terminal::Node(j)) => {
                    g[(i, i)] += cond;
                    g[(j, j)] += cond;
                    g[(i, j)] -= cond;
                    g[(j, i)] -= cond;
                }
                (Terminal::Input, Terminal::Node(i)) | (Terminal::Node(i), Terminal::Input) => {
                    g[(i, i)] += cond;
                    b[i] += cond;
                }
                (Terminal::Input, Terminal::Input) => {
                    // A resistor from the source to itself carries no
                    // information for the nodal equations.
                }
            }
        }
        Ok((g, self.caps.clone(), b))
    }
}

impl Default for LumpedNetwork {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rctree_core::builder::RcTreeBuilder;
    use rctree_core::units::{Farads, Ohms};

    #[test]
    fn manual_network_assembles_expected_matrices() {
        let mut net = LumpedNetwork::new();
        let a = net.add_node("a", 1e-12).unwrap();
        let b = net.add_node("b", 2e-12).unwrap();
        net.add_resistor(Terminal::Input, Terminal::Node(a), 100.0)
            .unwrap();
        net.add_resistor(Terminal::Node(a), Terminal::Node(b), 50.0)
            .unwrap();
        let (g, c, bv) = net.assemble().unwrap();
        assert!((g[(0, 0)] - (0.01 + 0.02)).abs() < 1e-15);
        assert!((g[(1, 1)] - 0.02).abs() < 1e-15);
        assert!((g[(0, 1)] + 0.02).abs() < 1e-15);
        assert!(g.is_symmetric(1e-15));
        assert_eq!(c, vec![1e-12, 2e-12]);
        assert!((bv[0] - 0.01).abs() < 1e-15);
        assert_eq!(bv[1], 0.0);
    }

    #[test]
    fn invalid_values_rejected() {
        let mut net = LumpedNetwork::new();
        assert!(net.add_node("x", -1.0).is_err());
        let a = net.add_node("a", 0.0).unwrap();
        assert!(net
            .add_resistor(Terminal::Input, Terminal::Node(a), -5.0)
            .is_err());
        assert!(net
            .add_resistor(Terminal::Input, Terminal::Node(99), 5.0)
            .is_err());
        assert!(net.add_capacitance(99, 1.0).is_err());
        assert!(net.add_capacitance(a, f64::NAN).is_err());
        assert!(net.node_name(99).is_err());
    }

    #[test]
    fn zero_resistance_becomes_a_short() {
        let mut net = LumpedNetwork::new();
        let a = net.add_node("a", 1.0).unwrap();
        net.add_resistor(Terminal::Input, Terminal::Node(a), 0.0)
            .unwrap();
        let (g, _, b) = net.assemble().unwrap();
        assert!(g[(0, 0)] > 1e8);
        assert!(b[0] > 1e8);
    }

    #[test]
    fn empty_network_cannot_assemble() {
        let net = LumpedNetwork::new();
        assert!(matches!(net.assemble(), Err(SimError::EmptyNetwork)));
    }

    fn small_tree() -> RcTree {
        let mut b = RcTreeBuilder::new();
        let a = b.add_resistor(b.input(), "a", Ohms::new(10.0)).unwrap();
        b.add_capacitance(a, Farads::new(1.0)).unwrap();
        let w = b
            .add_line(a, "w", Ohms::new(6.0), Farads::new(3.0))
            .unwrap();
        b.add_capacitance(w, Farads::new(2.0)).unwrap();
        b.mark_output(w).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn from_tree_preserves_total_capacitance() {
        let tree = small_tree();
        for segs in [1, 3, 10] {
            let net = LumpedNetwork::from_tree(&tree, segs).unwrap();
            let total: f64 = net.capacitances().iter().sum();
            assert!(
                (total - tree.total_capacitance().value()).abs() < 1e-12,
                "segments={segs}"
            );
        }
    }

    #[test]
    fn from_tree_line_discretization_adds_nodes() {
        let tree = small_tree();
        let net1 = LumpedNetwork::from_tree(&tree, 1).unwrap();
        let net4 = LumpedNetwork::from_tree(&tree, 4).unwrap();
        assert_eq!(net1.node_count(), 2);
        assert_eq!(net4.node_count(), 5); // "a" + 3 interior + "w"
        assert!(net4.node_name(1).unwrap().contains("__seg"));
    }

    #[test]
    fn from_tree_tracks_tree_node_indices() {
        let tree = small_tree();
        let net = LumpedNetwork::from_tree(&tree, 4).unwrap();
        assert_eq!(net.index_of(tree.input()).unwrap(), None);
        let w = tree.node_by_name("w").unwrap();
        let idx = net.index_of(w).unwrap().unwrap();
        assert_eq!(net.node_name(idx).unwrap(), "w");
    }

    #[test]
    fn zero_segments_rejected() {
        let tree = small_tree();
        assert!(LumpedNetwork::from_tree(&tree, 0).is_err());
    }

    #[test]
    fn zero_resistance_branch_is_merged_into_parent() {
        // input --R-- a [1F], a --(0 Ω, 2 F line)-- m [3F]: node m collapses
        // onto a, which then carries 1 + 2 + 3 = 6 F.
        let mut b = RcTreeBuilder::new();
        let a = b.add_resistor(b.input(), "a", Ohms::new(10.0)).unwrap();
        b.add_capacitance(a, Farads::new(1.0)).unwrap();
        let m = b.add_line(a, "m", Ohms::ZERO, Farads::new(2.0)).unwrap();
        b.add_capacitance(m, Farads::new(3.0)).unwrap();
        b.mark_output(m).unwrap();
        let tree = b.build().unwrap();
        let net = LumpedNetwork::from_tree(&tree, 4).unwrap();
        assert_eq!(net.node_count(), 1);
        assert!((net.capacitances()[0] - 6.0).abs() < 1e-12);
        // The merged node maps to the same index as its parent.
        assert_eq!(net.index_of(m).unwrap(), net.index_of(a).unwrap());
    }
}
