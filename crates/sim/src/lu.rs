//! LU factorization with partial pivoting and linear-system solves.
//!
//! The transient integrators repeatedly solve systems with the same
//! coefficient matrix (`C/h + G` for backward Euler, `C/h + G/2` for the
//! trapezoidal rule), so the factorization is computed once and reused for
//! every time step.

use crate::error::{Result, SimError};
use crate::matrix::Matrix;

/// An LU factorization `P·A = L·U` of a square matrix.
#[derive(Debug, Clone)]
pub struct LuFactor {
    lu: Matrix,
    perm: Vec<usize>,
}

impl LuFactor {
    /// Factors a square matrix with partial (row) pivoting.
    ///
    /// # Errors
    ///
    /// * [`SimError::DimensionMismatch`] if the matrix is not square;
    /// * [`SimError::SingularMatrix`] if a pivot is (numerically) zero.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(SimError::DimensionMismatch {
                what: "LU factorization",
                expected: a.rows(),
                actual: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Pivot selection.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val == 0.0 || !pivot_val.is_finite() {
                return Err(SimError::SingularMatrix);
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
            }
            // Elimination.
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / lu[(k, k)];
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }
        Ok(LuFactor { lu, perm })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(SimError::DimensionMismatch {
                what: "LU solve",
                expected: n,
                actual: b.len(),
            });
        }
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution (L has implicit unit diagonal).
        for i in 1..n {
            for j in 0..i {
                x[i] -= self.lu[(i, j)] * x[j];
            }
        }
        // Back substitution.
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                x[i] -= self.lu[(i, j)] * x[j];
            }
            x[i] /= self.lu[(i, i)];
        }
        Ok(x)
    }
}

/// Convenience one-shot solve of `A·x = b`.
///
/// # Errors
///
/// Same conditions as [`LuFactor::new`] and [`LuFactor::solve`].
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    LuFactor::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_system() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let x = solve(&a, &[1.0, 2.0]).unwrap();
        // Exact solution of [[4,1],[1,3]] x = [1,2] is [1/11, 7/11].
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn residual_is_small_for_random_like_matrix() {
        // A deterministic but well-conditioned test matrix.
        let n = 12;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = ((i * 7 + j * 3) % 11) as f64 / 11.0;
            }
            a[(i, i)] += n as f64; // diagonal dominance
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = solve(&a, &b).unwrap();
        let r = a.mul_vec(&x).unwrap();
        for i in 0..n {
            assert!((r[i] - b[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(
            solve(&a, &[1.0, 1.0]),
            Err(SimError::SingularMatrix)
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(LuFactor::new(&a).is_err());
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let a = Matrix::identity(3);
        let f = LuFactor::new(&a).unwrap();
        assert_eq!(f.dim(), 3);
        assert!(f.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn factorization_is_reusable() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let f = LuFactor::new(&a).unwrap();
        for k in 1..5 {
            let b = vec![k as f64, 2.0 * k as f64];
            let x = f.solve(&b).unwrap();
            let r = a.mul_vec(&x).unwrap();
            assert!((r[0] - b[0]).abs() < 1e-12);
            assert!((r[1] - b[1]).abs() < 1e-12);
        }
    }
}
