//! Error types for the RC-network simulator.

use std::fmt;

/// Errors produced while assembling or simulating an RC network.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A matrix operation received incompatible dimensions.
    DimensionMismatch {
        /// Description of the operation.
        what: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// A linear system was singular (or numerically so) and could not be
    /// solved.
    SingularMatrix,
    /// The eigenvalue iteration failed to converge.
    EigenNoConvergence {
        /// Largest remaining off-diagonal magnitude.
        off_diagonal: f64,
    },
    /// An invalid (negative or non-finite) element value was encountered.
    InvalidValue {
        /// Description of the offending quantity.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The simulation was asked for a non-positive time step or horizon.
    InvalidTimeGrid {
        /// Human-readable description of the problem.
        reason: &'static str,
    },
    /// A node index was out of range for the network.
    NodeOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of nodes in the network.
        len: usize,
    },
    /// The network has no nodes to simulate.
    EmptyNetwork,
    /// An error from the core crate (tree construction/validation).
    Core(rctree_core::CoreError),
    /// A waveform never crossed the requested threshold within the simulated
    /// horizon.
    ThresholdNotReached {
        /// The requested threshold.
        threshold: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DimensionMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch in {what}: expected {expected}, got {actual}"
            ),
            SimError::SingularMatrix => write!(f, "singular matrix encountered"),
            SimError::EigenNoConvergence { off_diagonal } => write!(
                f,
                "eigenvalue iteration failed to converge (off-diagonal {off_diagonal:e})"
            ),
            SimError::InvalidValue { what, value } => {
                write!(f, "invalid value for {what}: {value}")
            }
            SimError::InvalidTimeGrid { reason } => write!(f, "invalid time grid: {reason}"),
            SimError::NodeOutOfRange { index, len } => {
                write!(f, "node index {index} out of range for {len}-node network")
            }
            SimError::EmptyNetwork => write!(f, "network has no nodes"),
            SimError::Core(e) => write!(f, "core error: {e}"),
            SimError::ThresholdNotReached { threshold } => {
                write!(f, "waveform never reached threshold {threshold}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rctree_core::CoreError> for SimError {
    fn from(e: rctree_core::CoreError) -> Self {
        SimError::Core(e)
    }
}

/// Convenience alias used throughout the simulator crate.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_meaningful() {
        assert!(SimError::SingularMatrix.to_string().contains("singular"));
        assert!(SimError::EmptyNetwork.to_string().contains("no nodes"));
        assert!(SimError::DimensionMismatch {
            what: "solve",
            expected: 3,
            actual: 2
        }
        .to_string()
        .contains("solve"));
        assert!(SimError::ThresholdNotReached { threshold: 0.5 }
            .to_string()
            .contains("0.5"));
    }

    #[test]
    fn core_errors_convert_and_chain() {
        let e: SimError = rctree_core::CoreError::NoCapacitance.into();
        assert!(e.to_string().contains("core error"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
