//! Symmetric eigenvalue decomposition by the cyclic Jacobi method.
//!
//! The analytic ("modal") step-response solver diagonalizes the symmetric
//! matrix `C^{-1/2}·G·C^{-1/2}` of the RC network.  Jacobi rotation is slow
//! compared to state-of-the-art methods but is simple, robust, and more than
//! fast enough for the network sizes involved in reproducing the paper.

use crate::error::{Result, SimError};
use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition `A = V·diag(λ)·Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; column `j` corresponds to `values[j]`.
    pub vectors: Matrix,
}

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 100;

/// Computes the eigendecomposition of a symmetric matrix.
///
/// # Errors
///
/// * [`SimError::DimensionMismatch`] if the matrix is not square;
/// * [`SimError::InvalidValue`] if the matrix is not symmetric to a loose
///   tolerance;
/// * [`SimError::EigenNoConvergence`] if the off-diagonal norm fails to
///   vanish after a generous number of sweeps.
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen> {
    if !a.is_square() {
        return Err(SimError::DimensionMismatch {
            what: "symmetric eigendecomposition",
            expected: a.rows(),
            actual: a.cols(),
        });
    }
    let n = a.rows();
    let scale = (0..n)
        .map(|i| a[(i, i)].abs())
        .fold(0.0_f64, f64::max)
        .max(a.max_off_diagonal())
        .max(1e-300);
    if !a.is_symmetric(1e-9 * scale) {
        return Err(SimError::InvalidValue {
            what: "matrix symmetry",
            value: a.max_off_diagonal(),
        });
    }

    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let tol = 1e-14 * scale;

    for _sweep in 0..MAX_SWEEPS {
        if m.max_off_diagonal() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Rotate rows/columns p and q of m.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let off = m.max_off_diagonal();
    if off > 1e-8 * scale {
        return Err(SimError::EigenNoConvergence { off_diagonal: off });
    }

    // Extract and sort ascending.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let values: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
        for row in 0..n {
            vectors[(row, new_col)] = v[(row, old_col)];
        }
    }
    Ok(SymmetricEigen { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues_are_the_diagonal() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 1.0;
        a[(2, 2)] = 2.0;
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn two_by_two_known_values() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-10);
        assert!((e.values[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        // Symmetric tridiagonal "RC ladder"-like matrix.
        let n = 8;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 2.0;
            if i + 1 < n {
                a[(i, i + 1)] = -1.0;
                a[(i + 1, i)] = -1.0;
            }
        }
        let e = symmetric_eigen(&a).unwrap();
        // V·diag(λ)·Vᵀ should reconstruct A.
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = e.values[i];
        }
        let recon = e
            .vectors
            .mul(&lam)
            .unwrap()
            .mul(&e.vectors.transpose())
            .unwrap();
        for i in 0..n {
            for j in 0..n {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-9, "entry ({i},{j})");
            }
        }
        // Vᵀ·V should be the identity.
        let vtv = e.vectors.transpose().mul(&e.vectors).unwrap();
        for i in 0..n {
            for j in 0..n {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vtv[(i, j)] - expect).abs() < 1e-10);
            }
        }
        // Known eigenvalues of this tridiagonal: 2 − 2·cos(kπ/(n+1)).
        for (k, lam_k) in e.values.iter().enumerate() {
            let expect =
                2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!((lam_k - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn asymmetric_matrix_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 5.0], vec![0.0, 1.0]]);
        assert!(symmetric_eigen(&a).is_err());
    }

    #[test]
    fn non_square_rejected() {
        assert!(symmetric_eigen(&Matrix::zeros(2, 3)).is_err());
    }
}
