//! Observability on the wire: the `METRICS`/`TRACE` verbs, the pinned
//! `STATS` payload, and the determinism guarantees the exposition makes —
//! quiesced repeated scrapes are byte-identical (the scrape verbs are
//! self-excluding), and the `stable` subset is byte-identical across
//! worker-thread counts for the same request history.
//!
//! The `STATS` pin matters because this PR re-keyed its counters onto the
//! metrics registry: the payload must stay byte-identical to the
//! pre-observability format, and its values must agree with `METRICS` by
//! construction (shared series, derived sums).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};

use rctree_core::tree::RcTree;
use rctree_core::units::Seconds;
use rctree_serve::protocol;
use rctree_serve::{fetch_metrics, EcoExecutor, ServeConfig, Server};
use rctree_sta::{CellLibrary, Design};
use rctree_workloads::SpefDeckParams;

const THRESHOLD: f64 = 0.5;
const BUDGET_S: f64 = 150e-9;

fn deck_trees() -> Vec<(String, RcTree)> {
    SpefDeckParams {
        nets: 8,
        ..SpefDeckParams::default()
    }
    .trees(0xBEEF)
}

fn design_of(trees: &[(String, RcTree)]) -> Design {
    Design::from_extracted(CellLibrary::nmos_1981(), "inv_4x", trees.to_vec()).expect("deck builds")
}

fn config(jobs: usize) -> ServeConfig {
    ServeConfig::new(THRESHOLD, Seconds::new(BUDGET_S), jobs)
}

/// One client session: sends every request line, reads every response
/// block to its final line.
fn run_client(addr: SocketAddr, script: &[String]) -> Vec<Vec<String>> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    let mut responses = Vec::with_capacity(script.len());
    for request in script {
        writeln!(writer, "{request}").expect("send");
        writer.flush().expect("flush");
        let mut block = Vec::new();
        loop {
            let mut line = String::new();
            assert_ne!(
                reader.read_line(&mut line).expect("read"),
                0,
                "server closed mid-response to `{request}`"
            );
            let line = line.trim_end_matches(['\r', '\n']).to_string();
            let done = protocol::is_final(&line);
            block.push(line);
            if done {
                break;
            }
        }
        responses.push(block);
    }
    responses
}

/// `STATS` must render byte-identical to the pre-observability format —
/// same fields, same order, same spelling — with its counters now living
/// in the metrics registry.  The expected line is reconstructed from a
/// serial oracle over the same design plus the known request history.
#[test]
fn stats_payload_is_byte_identical_to_the_pre_obs_format() {
    let trees = deck_trees();
    let server =
        Server::start(design_of(&trees), &config(1), ("127.0.0.1", 0)).expect("server starts");
    let addr = server.local_addr();

    let net = &trees[0].0;
    let responses = run_client(
        addr,
        &[
            format!("QUERY {net}"),
            "REPORT".to_string(),
            "REPORT".to_string(), // second render is a cache hit
            "FROBNICATE".to_string(),
            "STATS".to_string(),
        ],
    );

    let oracle =
        EcoExecutor::new(design_of(&trees), THRESHOLD, Seconds::new(BUDGET_S), 1).expect("oracle");
    let snapshot = oracle.snapshot();
    let (arena_base, arena_corner) = oracle.arena_bytes();
    // Requests: QUERY + REPORT + REPORT + STATS (the parse error is not
    // a request; STATS counts itself before rendering, as before).
    let expected = format!(
        "stats nets {} instances {} endpoints {} revision 0 corners 1 arena_base_bytes \
         {arena_base} arena_corner_bytes {arena_corner} connections 1 requests 4 queries 1 \
         eco_applied 0 eco_skipped 0 report_cache_hits 1 shards 1 routing_table 0 shard_revs 0 \
         shard_applied 0 shard_skipped 0 shard_report_cache_hits 1",
        snapshot.net_count(),
        snapshot.instance_count(),
        snapshot.report().endpoints.len(),
    );
    assert_eq!(responses[4], vec![expected, "OK rev 0".to_string()]);

    server.shutdown();
    server.join();
}

/// Unknown verbs echo the offending token **as typed** — the protocol
/// uppercases only for matching, never in the error message.
#[test]
fn unknown_verb_errors_echo_the_token_as_typed_on_the_wire() {
    let trees = deck_trees();
    let server =
        Server::start(design_of(&trees), &config(1), ("127.0.0.1", 0)).expect("server starts");
    let addr = server.local_addr();

    let responses = run_client(
        addr,
        &[
            "frobnicate now".to_string(),
            "FROBNICATE".to_string(),
            "Metricz".to_string(),
        ],
    );
    assert_eq!(
        responses[0],
        vec!["ERR rev 0 bad request: unknown verb `frobnicate`".to_string()]
    );
    assert_eq!(
        responses[1],
        vec!["ERR rev 0 bad request: unknown verb `FROBNICATE`".to_string()]
    );
    assert_eq!(
        responses[2],
        vec!["ERR rev 0 bad request: unknown verb `Metricz`".to_string()]
    );

    server.shutdown();
    server.join();
}

/// `METRICS` is well-formed, carries the registry's server series with
/// values that agree with the request history (and hence with `STATS`,
/// which shares the series), and — because the scrape verbs are
/// self-excluding — repeated quiesced scrapes are **byte-identical**.
#[test]
fn metrics_is_well_formed_counts_the_workload_and_is_byte_stable_quiesced() {
    let trees = deck_trees();
    let server =
        Server::start(design_of(&trees), &config(1), ("127.0.0.1", 0)).expect("server starts");
    let addr = server.local_addr();

    let net = &trees[0].0;
    let responses = run_client(
        addr,
        &[
            format!("QUERY {net}"),
            format!("QUERY {net}"),
            "REPORT".to_string(),
            "REPORT".to_string(),
            "frobnicate".to_string(),
            format!("ECO setcap {net} ghost 1e-15"), // skipped, commits nothing
            "CERTIFY 2e-7".to_string(),
        ],
    );
    assert_eq!(responses.len(), 7);

    // Quiesced now: repeated scrapes on one connection must be
    // byte-identical (METRICS moves no counter and opens no span; a new
    // connection would bump only `rctree_connections_total` at accept).
    let scrapes = run_client(addr, &["METRICS".to_string(), "METRICS".to_string()]);
    assert_eq!(
        scrapes[0], scrapes[1],
        "quiesced scrapes must be byte-identical"
    );
    let payload = scrapes[0][..scrapes[0].len() - 1].join("\n");

    let exposition = rctree_obs::parse_exposition(&payload).expect("well-formed exposition");
    let value = |key: &str| -> f64 {
        exposition
            .series
            .get(key)
            .unwrap_or_else(|| panic!("missing series `{key}`"))
            .1
    };
    // 2 QUERY + 2 REPORT + 1 ECO + 1 CERTIFY (the parse error is not a
    // request; METRICS excludes itself).
    assert_eq!(value("rctree_requests_total"), 6.0);
    assert_eq!(value("rctree_requests_verb_total{verb=\"QUERY\"}"), 2.0);
    assert_eq!(value("rctree_requests_verb_total{verb=\"REPORT\"}"), 2.0);
    assert_eq!(value("rctree_requests_verb_total{verb=\"ECO\"}"), 1.0);
    assert_eq!(value("rctree_requests_verb_total{verb=\"CERTIFY\"}"), 1.0);
    assert_eq!(value("rctree_requests_verb_total{verb=\"STATS\"}"), 0.0);
    assert_eq!(value("rctree_protocol_errors_total"), 1.0);
    assert_eq!(value("rctree_report_cache_hits_total"), 1.0);
    assert_eq!(value("rctree_shard_eco_applied_total{shard=\"0\"}"), 0.0);
    assert_eq!(value("rctree_shard_eco_skipped_total{shard=\"0\"}"), 1.0);
    // The workload connection plus this scraping connection.
    assert_eq!(value("rctree_connections_total"), 2.0);
    // Design-shape gauges are refreshed at scrape time (each deck net
    // becomes a feeder + main net pair in the stage design).
    assert_eq!(value("rctree_nets"), 2.0 * trees.len() as f64);
    assert_eq!(value("rctree_corners"), 1.0);
    assert_eq!(value("rctree_shard_revision{shard=\"0\"}"), 0.0);
    // The serve.request span auto-metrics count the served verbs.
    assert_eq!(value("rctree_phase_total{phase=\"serve.request\"}"), 6.0);
    // Response bytes were accumulated per verb and are nonzero.
    assert!(value("rctree_response_bytes_total{verb=\"REPORT\"}") > 0.0);

    // Families carry TYPE metadata for every series' family.
    for family in [
        "rctree_connections_total",
        "rctree_requests_total",
        "rctree_request_duration_us",
        "rctree_nets",
    ] {
        assert!(
            exposition.families.contains_key(family),
            "missing TYPE for `{family}`"
        );
    }

    server.shutdown();
    server.join();
}

/// `TRACE <n>` returns the most recent finished spans as `span …` lines —
/// and, being self-excluding, does not grow the ring it reads.
#[test]
fn trace_returns_span_lines_and_excludes_itself() {
    let trees = deck_trees();
    let server =
        Server::start(design_of(&trees), &config(1), ("127.0.0.1", 0)).expect("server starts");
    let addr = server.local_addr();

    let net = &trees[0].0;
    let responses = run_client(
        addr,
        &[
            format!("QUERY {net}"),
            "TRACE 4".to_string(),
            "TRACE 4".to_string(),
        ],
    );
    let first = &responses[1];
    assert_eq!(first.last().unwrap(), "OK rev 0");
    assert!(
        first.len() > 1,
        "warm-up and QUERY spans should be in the ring: {first:?}"
    );
    for line in &first[..first.len() - 1] {
        assert!(line.starts_with("span "), "not a span line: {line}");
        assert!(line.contains(" name="), "missing name attr: {line}");
        assert!(line.contains(" dur_ns="), "missing duration: {line}");
    }
    assert!(
        first.iter().any(|l| l.contains("name=serve.request")),
        "the QUERY request span should be traced: {first:?}"
    );
    // TRACE opened no span of its own: the second block is identical.
    assert_eq!(responses[1], responses[2]);

    server.shutdown();
    server.join();
}

/// The `stable` exposition subset is **byte-identical across worker
/// thread counts** for the same request history — the jobs knob may only
/// change wall-clock (volatile) families, never a workload-determined
/// counter, gauge, span count, or span attribute sum.
#[test]
fn stable_metrics_are_byte_identical_across_job_counts() {
    let trees = deck_trees();
    let net = &trees[0].0;
    let mut expositions = Vec::new();
    for jobs in [1usize, 2, 7] {
        let server = Server::start(design_of(&trees), &config(jobs), ("127.0.0.1", 0))
            .expect("server starts");
        let addr = server.local_addr();
        let responses = run_client(
            addr,
            &[
                format!("QUERY {net}"),
                "REPORT".to_string(),
                "REPORT".to_string(),
                "frobnicate".to_string(),
                "CERTIFY 2e-7".to_string(),
                "STATS".to_string(),
            ],
        );
        assert_eq!(responses.len(), 6);
        let stable = fetch_metrics(addr, true).expect("scrape");
        // The full exposition must still parse; only its volatile families
        // are jobs-dependent.
        rctree_obs::parse_exposition(&fetch_metrics(addr, false).expect("scrape"))
            .expect("full exposition is well-formed");
        expositions.push((jobs, stable));
        server.shutdown();
        server.join();
    }
    let (_, baseline) = &expositions[0];
    assert!(
        baseline.contains("rctree_requests_total"),
        "stable subset must keep the workload counters"
    );
    assert!(
        !baseline.contains("rctree_request_duration_us"),
        "stable subset must drop wall-clock families"
    );
    for (jobs, text) in &expositions[1..] {
        assert_eq!(
            text, baseline,
            "stable exposition diverged between jobs=1 and jobs={jobs}"
        );
    }
}
