//! Concurrent-session equivalence: every response a live server hands any
//! of K concurrent clients must be **byte-identical** to a serial oracle
//! that replays the server's accepted-edit order — the protocol's
//! attributability guarantee (`OK rev <r>` names the snapshot) made
//! testable.
//!
//! The oracle is a fresh [`EcoExecutor`] over the same design, driven
//! through the same pure rendering functions the connection handlers use;
//! what the test pins is therefore exactly the concurrency model — that
//! the `RwLock`-swapped snapshot store and the single-writer mutex never
//! expose a torn or unserialisable state — not formatting trivia.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use rctree_core::tree::RcTree;
use rctree_core::units::Seconds;
use rctree_serve::protocol::{self, Request};
use rctree_serve::{EcoExecutor, ServeConfig, Server};
use rctree_sta::{CellLibrary, Design, DesignSnapshot};
use rctree_workloads::{
    request_mix, shard_crossing_mix, shard_of, RequestMixParams, SpefDeckParams,
};

const THRESHOLD: f64 = 0.5;
const BUDGET_S: f64 = 150e-9;

fn deck_trees() -> Vec<(String, RcTree)> {
    SpefDeckParams {
        nets: 12,
        ..SpefDeckParams::default()
    }
    .trees(0xC0FFEE)
}

fn design_of(trees: &[(String, RcTree)]) -> Design {
    Design::from_extracted(CellLibrary::nmos_1981(), "inv_4x", trees.to_vec()).expect("deck builds")
}

fn config() -> ServeConfig {
    ServeConfig::new(THRESHOLD, Seconds::new(BUDGET_S), 1)
}

/// One client session: sends every request line, reads every response
/// block to its final line.
fn run_client(addr: SocketAddr, script: &[String]) -> Vec<Vec<String>> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    let mut responses = Vec::with_capacity(script.len());
    for request in script {
        writeln!(writer, "{request}").expect("send");
        writer.flush().expect("flush");
        let mut block = Vec::new();
        loop {
            let mut line = String::new();
            assert_ne!(
                reader.read_line(&mut line).expect("read"),
                0,
                "server closed mid-response to `{request}`"
            );
            let line = line.trim_end_matches(['\r', '\n']).to_string();
            let done = protocol::is_final(&line);
            block.push(line);
            if done {
                break;
            }
        }
        responses.push(block);
    }
    responses
}

/// The final line's revision of a response block.
fn block_rev(block: &[String]) -> u64 {
    protocol::final_revision(block.last().expect("non-empty block")).expect("rev on final line")
}

/// Replays the captured run through a serial oracle and asserts every
/// response byte-identical.
fn verify_against_oracle(
    trees: &[(String, RcTree)],
    scripts: &[Vec<String>],
    transcripts: &[Vec<Vec<String>>],
    server_log: &[String],
) {
    // Partition the captured (request, response) pairs into reads and ECO
    // writes; order the writes by their committed revision window.
    let mut reads: Vec<(&String, &Vec<String>)> = Vec::new();
    // (pre_rev, applied, request, response)
    let mut writes: Vec<(u64, u64, &String, &Vec<String>)> = Vec::new();
    for (script, transcript) in scripts.iter().zip(transcripts) {
        assert_eq!(script.len(), transcript.len());
        for (request, response) in script.iter().zip(transcript) {
            match protocol::parse_request(request).expect("generated requests parse") {
                Some(Request::Eco { .. }) => {
                    let applied = response.iter().filter(|l| l.starts_with("edit ")).count() as u64;
                    let pre_rev = block_rev(response) - applied;
                    writes.push((pre_rev, applied, request, response));
                }
                Some(_) => reads.push((request, response)),
                None => panic!("blank request generated"),
            }
        }
    }
    // Commit order: by pre-revision; all-skip requests at a given revision
    // ran before the request that advanced it (they would otherwise have
    // seen the successor revision), and are order-independent among
    // themselves since they mutate nothing.
    writes.sort_by_key(|&(pre_rev, applied, _, _)| (pre_rev, applied > 0));

    // Serial replay: every write request re-executed in commit order on a
    // fresh executor over the same design.
    let mut oracle =
        EcoExecutor::new(design_of(trees), THRESHOLD, Seconds::new(BUDGET_S), 1).expect("oracle");
    let mut snapshots: Vec<Arc<DesignSnapshot>> = vec![oracle.snapshot()];
    let mut accepted: Vec<String> = Vec::new();
    for (pre_rev, _, request, response) in &writes {
        assert_eq!(
            oracle.revision(),
            *pre_rev,
            "oracle out of sync before `{request}`"
        );
        let script = match protocol::parse_request(request) {
            Ok(Some(Request::Eco { script })) => script,
            other => panic!("expected ECO request, got {other:?}"),
        };
        let (lines, _) = oracle.exec_eco(
            &script,
            &mut |snapshot, _rev| snapshots.push(Arc::clone(snapshot)),
            &mut |summary| accepted.push(summary.to_string()),
        );
        assert_eq!(&&lines, response, "ECO response diverged for `{request}`");
    }
    assert_eq!(
        accepted, server_log,
        "oracle's accepted-edit order diverged from the server log"
    );

    // Every read response re-rendered against the snapshot its final line
    // names.
    for (request, response) in reads {
        let rev = block_rev(response) as usize;
        assert!(
            rev < snapshots.len(),
            "response names unknown revision {rev}"
        );
        let snapshot = &snapshots[rev];
        let expected = match protocol::parse_request(request).expect("parses") {
            Some(Request::Query {
                net,
                node,
                corner,
                sens,
            }) => protocol::render_query(
                snapshot,
                rev as u64,
                &net,
                node.as_deref(),
                corner.as_deref(),
                sens,
            ),
            Some(Request::Report { corner }) => {
                protocol::render_report(snapshot, rev as u64, corner.as_deref())
            }
            Some(Request::Certify { budget, over: None }) => {
                protocol::render_certify(snapshot, rev as u64, budget)
            }
            Some(Request::Certify {
                budget,
                over: Some(over),
            }) => protocol::render_certify_over(snapshot, rev as u64, budget, &over),
            other => panic!("unexpected read request {other:?}"),
        };
        assert_eq!(
            response, &expected,
            "read response diverged for `{request}` at rev {rev}"
        );
    }
}

#[test]
fn concurrent_sessions_match_a_serial_oracle_replay() {
    let trees = deck_trees();
    for clients in [1usize, 4, 8] {
        let server =
            Server::start(design_of(&trees), &config(), ("127.0.0.1", 0)).expect("server starts");
        let addr = server.local_addr();
        let params = RequestMixParams {
            requests_per_connection: 50,
            eco_fraction: 0.3,
            certify_budget: 120e-9,
        };
        let scripts = request_mix(&trees, clients, &params, 0xBEEF + clients as u64);
        let transcripts: Vec<Vec<Vec<String>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = scripts
                .iter()
                .map(|script| scope.spawn(move || run_client(addr, script)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client"))
                .collect()
        });
        let log = server.eco_log();
        assert_eq!(
            log.len() as u64,
            server.revision(),
            "one committed edit per revision"
        );
        server.shutdown();
        server.join();

        verify_against_oracle(&trees, &scripts, &transcripts, &log);
    }
}

#[test]
fn read_only_sessions_are_deterministic_and_see_revision_zero() {
    let trees = deck_trees();
    let server =
        Server::start(design_of(&trees), &config(), ("127.0.0.1", 0)).expect("server starts");
    let addr = server.local_addr();
    let params = RequestMixParams {
        requests_per_connection: 40,
        eco_fraction: 0.0,
        certify_budget: 110e-9,
    };
    // Two clients issuing the *same* script concurrently must receive
    // bit-identical transcripts (there are no writers, so every response
    // is rev 0).
    let script = request_mix(&trees, 1, &params, 77).remove(0);
    let (a, b) = std::thread::scope(|scope| {
        let ha = scope.spawn(|| run_client(addr, &script));
        let hb = scope.spawn(|| run_client(addr, &script));
        (ha.join().expect("a"), hb.join().expect("b"))
    });
    assert_eq!(a, b);
    assert!(a.iter().all(|block| block_rev(block) == 0));

    // And the REPORT payload equals the offline baseline rendering.
    let mut offline = design_of(&trees);
    let baseline = offline
        .publish(THRESHOLD, Seconds::new(BUDGET_S), 1)
        .expect("baseline");
    let expected_report = protocol::render_report(&Arc::new(baseline), 0, None);
    let report_blocks: Vec<&Vec<String>> = script
        .iter()
        .zip(&a)
        .filter(|(req, _)| *req == "REPORT")
        .map(|(_, block)| block)
        .collect();
    assert!(!report_blocks.is_empty(), "mix contains REPORT requests");
    for block in report_blocks {
        assert_eq!(block, &expected_report);
    }
    server.shutdown();
    server.join();
}

/// A multi-corner deck: every data-bearing `OK` line names the corner
/// vector, `--corner` selects lanes by index or name, `CERTIFY` names the
/// worst corner — and the whole transcript (a request mix with accepted
/// ECO edits, then corner-specific requests) is byte-identical to a
/// serial oracle replay over the same corner-carrying design.
#[test]
fn multi_corner_sessions_name_the_corner_vector_and_match_the_oracle() {
    use rctree_workloads::{corner_set, CornerSpecParams};

    let trees = deck_trees();
    let net_names: Vec<String> = trees.iter().map(|(n, _)| n.clone()).collect();
    let set = corner_set(
        &CornerSpecParams {
            corners: 4,
            overrides: 2,
        },
        &net_names,
        0xD1CE,
    );
    let csv = set.names_csv();
    let mut design = design_of(&trees);
    design.set_corners(set.clone());
    let server = Server::start(design, &config(), ("127.0.0.1", 0)).expect("server starts");
    let addr = server.local_addr();

    let params = RequestMixParams {
        requests_per_connection: 30,
        eco_fraction: 0.35,
        certify_budget: 120e-9,
    };
    let mut script = request_mix(&trees, 1, &params, 0xAB).remove(0);
    let (net0, tree0) = &trees[0];
    let node0 = tree0
        .name(tree0.outputs().next().expect("an output"))
        .expect("named")
        .to_string();
    script.extend([
        "REPORT".to_string(),
        "REPORT --corner 2".to_string(),
        "REPORT --corner 2".to_string(),
        format!("REPORT --corner {}", set.corner(3).name),
        "REPORT --corner worst".to_string(),
        format!("QUERY {net0} --corner 1"),
        format!("QUERY {net0} {node0} --corner {}", set.corner(1).name),
        "CERTIFY 1.2e-7".to_string(),
        "REPORT --corner bogus".to_string(),
        "STATS".to_string(),
    ]);
    let transcript = run_client(addr, &script);
    let log = server.eco_log();
    server.shutdown();
    server.join();

    // Every successful response names the corner vector on its final line.
    let tail = format!(" corners {csv}");
    for (request, block) in script.iter().zip(&transcript) {
        let last = block.last().expect("non-empty block");
        if last.starts_with("OK ") {
            assert!(
                last.ends_with(&tail),
                "`{request}` final line lacks the corner vector: {last}"
            );
        }
    }

    // Serial oracle replay over the same corner-carrying design: one
    // client is serial, so reads see the oracle's current revision and
    // every response must be byte-identical — including the CERTIFY
    // worst-corner line and the `--corner` renderings.
    let mut oracle_design = design_of(&trees);
    oracle_design.set_corners(set.clone());
    let mut oracle =
        EcoExecutor::new(oracle_design, THRESHOLD, Seconds::new(BUDGET_S), 1).expect("oracle");
    let mut snapshots: Vec<Arc<DesignSnapshot>> = vec![oracle.snapshot()];
    let mut accepted: Vec<String> = Vec::new();
    for (request, response) in script.iter().zip(&transcript) {
        match protocol::parse_request(request).expect("script parses") {
            Some(Request::Eco { script }) => {
                let (lines, _) = oracle.exec_eco(
                    &script,
                    &mut |snapshot, _rev| snapshots.push(Arc::clone(snapshot)),
                    &mut |summary| accepted.push(summary.to_string()),
                );
                assert_eq!(&lines, response, "ECO response diverged for `{request}`");
            }
            Some(Request::Stats) => {
                assert!(response[0].contains(" corners 4 "), "{response:?}");
                assert!(response[0].contains(" report_cache_hits "), "{response:?}");
            }
            Some(read) => {
                let rev = block_rev(response);
                let snapshot = &snapshots[rev as usize];
                let expected = match read {
                    Request::Query {
                        net,
                        node,
                        corner,
                        sens,
                    } => protocol::render_query(
                        snapshot,
                        rev,
                        &net,
                        node.as_deref(),
                        corner.as_deref(),
                        sens,
                    ),
                    Request::Report { corner } => {
                        protocol::render_report(snapshot, rev, corner.as_deref())
                    }
                    Request::Certify { budget, over: None } => {
                        protocol::render_certify(snapshot, rev, budget)
                    }
                    Request::Certify {
                        budget,
                        over: Some(over),
                    } => protocol::render_certify_over(snapshot, rev, budget, &over),
                    other => panic!("unexpected request {other:?}"),
                };
                assert_eq!(
                    response, &expected,
                    "read response diverged for `{request}`"
                );
            }
            None => panic!("blank request"),
        }
    }
    assert_eq!(accepted, log, "accepted-edit order diverged");
    assert!(!log.is_empty(), "the mix should commit some edits");

    // The CERTIFY response names the oracle's worst corner explicitly.
    let certify = &transcript[script.len() - 3];
    let final_snapshot = snapshots.last().expect("snapshots");
    let corners = final_snapshot.corners().expect("multi-corner snapshot");
    let (worst, _, _) = corners.worst_against(Seconds::new(1.2e-7));
    assert!(
        certify[0].contains(&format!(" corner {} ", corners.names()[worst])),
        "CERTIFY must name the worst corner: {certify:?}"
    );

    // Identical REPORT --corner 2 requests at one revision hit the
    // rendered cache; the second response is byte-identical regardless.
    let stats_line = &transcript[script.len() - 1][0];
    let hits: u64 = stats_line
        .split_whitespace()
        .skip_while(|t| *t != "report_cache_hits")
        .nth(1)
        .expect("report_cache_hits counter")
        .parse()
        .expect("numeric counter");
    assert!(hits >= 1, "repeated REPORTs should hit the cache: {hits}");

    // A bogus selector is a clean error naming the revision.
    let bogus = &transcript[script.len() - 2];
    assert!(bogus[0].starts_with("ERR rev "), "{bogus:?}");
    assert!(bogus[0].contains("unknown corner `bogus`"), "{bogus:?}");
}

/// The shard owning a request's net under a `shards`-way split of the
/// deck (each deck net is one connected component, in deck order).
fn shard_of_request(trees: &[(String, RcTree)], net: &str, shards: usize) -> usize {
    let index = trees
        .iter()
        .position(|(n, _)| n == net)
        .expect("request names a deck net");
    shard_of(index, trees.len(), shards)
}

/// Sharded equivalence: K concurrent clients issue shard-crossing mixes
/// against a 4-shard server, and every response is re-derived
/// byte-identically by **per-shard serial oracles** — scalar-rev verbs
/// (QUERY/ECO) against the owning shard's oracle at the named revision,
/// composed verbs (REPORT/CERTIFY) through the composed renderers at the
/// revision vector on their final line.
#[test]
fn sharded_sessions_match_per_shard_serial_oracle_replay() {
    const SHARDS: usize = 4;
    let trees = deck_trees();
    for clients in [1usize, 4] {
        let mut config = config();
        config.shards = SHARDS;
        let server =
            Server::start(design_of(&trees), &config, ("127.0.0.1", 0)).expect("server starts");
        assert_eq!(server.shard_count(), SHARDS);
        let addr = server.local_addr();
        let params = RequestMixParams {
            requests_per_connection: 40,
            eco_fraction: 0.35,
            certify_budget: 120e-9,
        };
        let scripts = shard_crossing_mix(&trees, clients, &params, SHARDS, 0xFACE + clients as u64);
        let transcripts: Vec<Vec<Vec<String>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = scripts
                .iter()
                .map(|script| scope.spawn(move || run_client(addr, script)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client"))
                .collect()
        });
        let logs = server.eco_logs();
        let revisions = server.revisions();
        server.shutdown();
        server.join();
        assert_eq!(logs.len(), SHARDS);
        for (log, rev) in logs.iter().zip(&revisions) {
            assert_eq!(log.len() as u64, *rev, "one committed edit per revision");
        }

        // Partition the captured pairs: ECO writes per owning shard,
        // scalar reads (QUERY) per owning shard, composed reads
        // (REPORT/CERTIFY) at their revision vector.
        type Write<'a> = (u64, u64, &'a String, &'a Vec<String>);
        let mut shard_writes: Vec<Vec<Write>> = vec![Vec::new(); SHARDS];
        let mut scalar_reads: Vec<(usize, &String, &Vec<String>)> = Vec::new();
        let mut composed_reads: Vec<(&String, &Vec<String>)> = Vec::new();
        for (script, transcript) in scripts.iter().zip(&transcripts) {
            for (request, response) in script.iter().zip(transcript) {
                match protocol::parse_request(request).expect("generated requests parse") {
                    Some(Request::Eco { script }) => {
                        let net = rctree_sta::script::parse_eco_script_line(1, &script)
                            .ok()
                            .and_then(|parsed| match parsed {
                                rctree_sta::ScriptLine::Edits(edits) => {
                                    Some(edits[0].edit.net.clone())
                                }
                                _ => None,
                            })
                            .expect("generated ECOs carry edits");
                        let shard = shard_of_request(&trees, &net, SHARDS);
                        let applied =
                            response.iter().filter(|l| l.starts_with("edit ")).count() as u64;
                        let pre_rev = block_rev(response) - applied;
                        shard_writes[shard].push((pre_rev, applied, request, response));
                    }
                    Some(Request::Query { net, .. }) => {
                        scalar_reads.push((
                            shard_of_request(&trees, &net, SHARDS),
                            request,
                            response,
                        ));
                    }
                    Some(Request::Report { .. }) | Some(Request::Certify { .. }) => {
                        composed_reads.push((request, response));
                    }
                    other => panic!("unexpected request {other:?}"),
                }
            }
        }

        // Per-shard serial replay over the partitioned design: each
        // shard's writes in its own commit order, snapshots recorded per
        // revision.
        let shard_designs = design_of(&trees).partition(SHARDS).expect("partitions");
        assert_eq!(shard_designs.len(), SHARDS);
        let mut shard_snapshots: Vec<Vec<Arc<DesignSnapshot>>> = Vec::new();
        for (shard, design) in shard_designs.into_iter().enumerate() {
            let mut oracle =
                EcoExecutor::new(design, THRESHOLD, Seconds::new(BUDGET_S), 1).expect("oracle");
            let mut snapshots = vec![oracle.snapshot()];
            let mut accepted: Vec<String> = Vec::new();
            shard_writes[shard].sort_by_key(|&(pre_rev, applied, _, _)| (pre_rev, applied > 0));
            for (pre_rev, _, request, response) in &shard_writes[shard] {
                assert_eq!(
                    oracle.revision(),
                    *pre_rev,
                    "shard {shard} oracle out of sync before `{request}`"
                );
                let script = match protocol::parse_request(request) {
                    Ok(Some(Request::Eco { script })) => script,
                    other => panic!("expected ECO request, got {other:?}"),
                };
                let (lines, _) = oracle.exec_eco(
                    &script,
                    &mut |snapshot, _rev| snapshots.push(Arc::clone(snapshot)),
                    &mut |summary| accepted.push(summary.to_string()),
                );
                assert_eq!(
                    &&lines, response,
                    "shard {shard} ECO response diverged for `{request}`"
                );
            }
            assert_eq!(
                accepted, logs[shard],
                "shard {shard} accepted-edit order diverged from the server log"
            );
            shard_snapshots.push(snapshots);
        }

        // Scalar reads re-render against the owning shard's snapshot at
        // the scalar revision on their final line.
        for (shard, request, response) in scalar_reads {
            let rev = block_rev(response);
            let snapshot = &shard_snapshots[shard][rev as usize];
            let expected = match protocol::parse_request(request).expect("parses") {
                Some(Request::Query {
                    net,
                    node,
                    corner,
                    sens,
                }) => protocol::render_query(
                    snapshot,
                    rev,
                    &net,
                    node.as_deref(),
                    corner.as_deref(),
                    sens,
                ),
                other => panic!("unexpected scalar read {other:?}"),
            };
            assert_eq!(
                response, &expected,
                "QUERY diverged for `{request}` on shard {shard} at rev {rev}"
            );
        }

        // Composed reads re-render through the composed renderers at the
        // revision *vector* on their final line.
        for (request, response) in composed_reads {
            let revs = protocol::final_revisions(response.last().expect("non-empty"))
                .expect("revision vector on final line");
            assert_eq!(revs.len(), SHARDS, "one revision per shard: `{request}`");
            let snapshots: Vec<Arc<DesignSnapshot>> = revs
                .iter()
                .enumerate()
                .map(|(shard, &rev)| Arc::clone(&shard_snapshots[shard][rev as usize]))
                .collect();
            let expected = match protocol::parse_request(request).expect("parses") {
                Some(Request::Report { corner }) => {
                    protocol::render_report_composed(&snapshots, &revs, corner.as_deref())
                }
                Some(Request::Certify { budget, over: None }) => {
                    protocol::render_certify_composed(&snapshots, &revs, budget)
                }
                Some(Request::Certify {
                    budget,
                    over: Some(over),
                }) => protocol::render_certify_over_composed(&snapshots, &revs, budget, &over),
                other => panic!("unexpected composed read {other:?}"),
            };
            assert_eq!(
                response, &expected,
                "composed response diverged for `{request}` at revs {revs:?}"
            );
        }
    }
}

/// Cross-shard invariants the mixes cannot hit: a spanning ECO is
/// rejected whole with a revision vector, the sharded STATS line carries
/// the per-shard counters, and a quiescent sharded REPORT equals the
/// unsharded payload except for its vector final line.
#[test]
fn sharded_protocol_rejects_spanning_ecos_and_extends_stats() {
    const SHARDS: usize = 4;
    let trees = deck_trees();
    let mut config = config();
    config.shards = SHARDS;
    let server =
        Server::start(design_of(&trees), &config, ("127.0.0.1", 0)).expect("server starts");
    let addr = server.local_addr();

    // One net from shard 0 and one from the last shard.
    let (net_a, tree_a) = &trees[0];
    let (net_b, tree_b) = &trees[trees.len() - 1];
    assert_eq!(shard_of_request(&trees, net_a, SHARDS), 0);
    assert_eq!(shard_of_request(&trees, net_b, SHARDS), SHARDS - 1);
    let node_a = tree_a
        .name(tree_a.preorder()[0])
        .expect("named")
        .to_string();
    let node_b = tree_b
        .name(tree_b.preorder()[0])
        .expect("named")
        .to_string();

    let responses = run_client(
        addr,
        &[
            format!("ECO setcap {net_a} {node_a} 2e-15; setcap {net_b} {node_b} 2e-15"),
            format!("ECO setcap {net_b} {node_b} 3e-15"),
            "REPORT".to_string(),
            "STATS".to_string(),
        ],
    );
    // The spanning request is rejected whole — nothing committed anywhere.
    assert_eq!(
        responses[0],
        vec![format!(
            "ERR rev 0,0,0,0 ECO spans shards 0 and {}; split the request",
            SHARDS - 1
        )]
    );
    // The single-shard ECO commits on its own shard only.
    assert!(responses[1][0].starts_with("edit 1 "), "{responses:?}");
    assert_eq!(responses[1][1], "OK rev 1");
    assert_eq!(server.revisions(), vec![0, 0, 0, 1]);

    // REPORT answers at the revision vector.
    assert_eq!(responses[2].last().unwrap(), "OK rev 0,0,0,1");

    // STATS: per-shard counters and the routing table (feeder + main net
    // per deck net).
    let stats = &responses[3][0];
    let field = |name: &str| -> String {
        stats
            .split_whitespace()
            .skip_while(|t| *t != name)
            .nth(1)
            .unwrap_or_else(|| panic!("missing `{name}` in {stats}"))
            .to_string()
    };
    assert_eq!(field("shards"), SHARDS.to_string());
    assert_eq!(field("routing_table"), (2 * trees.len()).to_string());
    assert_eq!(field("revision"), "0,0,0,1");
    assert_eq!(field("shard_revs"), "0,0,0,1");
    assert_eq!(field("shard_applied"), "0,0,0,1");
    assert_eq!(field("shard_skipped"), "0,0,0,0");
    assert_eq!(responses[3].last().unwrap(), "OK rev 0,0,0,1");

    server.shutdown();
    server.join();
}

/// A quiescent (no-writer) sharded server must serve the same QUERY and
/// REPORT payloads as the unsharded server over the same deck — sharding
/// changes who owns a net, never a single number — with only the
/// composed verbs' final line widening to a revision vector.
#[test]
fn sharded_and_unsharded_servers_agree_at_rest() {
    let trees = deck_trees();
    let single = Server::start(design_of(&trees), &config(), ("127.0.0.1", 0)).expect("single");
    let mut sharded_config = config();
    sharded_config.shards = 3;
    let sharded =
        Server::start(design_of(&trees), &sharded_config, ("127.0.0.1", 0)).expect("sharded");

    let mut script: Vec<String> = trees.iter().map(|(n, _)| format!("QUERY {n}")).collect();
    script.push("REPORT".to_string());
    script.push("CERTIFY 1.2e-7".to_string());
    let a = run_client(single.local_addr(), &script);
    let b = run_client(sharded.local_addr(), &script);
    for (i, (request, (block_a, block_b))) in script.iter().zip(a.iter().zip(&b)).enumerate() {
        if request.starts_with("QUERY") {
            assert_eq!(block_a, block_b, "QUERY payloads diverge for `{request}`");
        } else {
            // Payload identical; final line scalar vs vector.
            assert_eq!(
                block_a[..block_a.len() - 1],
                block_b[..block_b.len() - 1],
                "payload diverges for `{request}` (#{i})"
            );
            assert_eq!(block_a.last().unwrap(), "OK rev 0");
            assert_eq!(block_b.last().unwrap(), "OK rev 0,0,0");
        }
    }

    single.shutdown();
    single.join();
    sharded.shutdown();
    sharded.join();
}

#[test]
fn protocol_errors_quit_and_shutdown_behave() {
    let trees = deck_trees();
    let server =
        Server::start(design_of(&trees), &config(), ("127.0.0.1", 0)).expect("server starts");
    let addr = server.local_addr();

    let responses = run_client(
        addr,
        &[
            "FROBNICATE".to_string(),
            "QUERY no_such_net".to_string(),
            "QUERY net0 no_such_node".to_string(),
            "ECO setcap net0 ghost 1e-15".to_string(),
            "ECO quit".to_string(),
            "CERTIFY nan".to_string(),
        ],
    );
    assert!(responses[0][0].starts_with("ERR rev 0 bad request: unknown verb"));
    assert!(responses[1][0].starts_with("ERR rev 0 unknown net `no_such_net`"));
    assert!(responses[2][0].starts_with("ERR rev 0 query failed:"));
    // The failing directive is skipped, not fatal — and commits nothing.
    assert!(responses[3][0].starts_with("skip line 1:"), "{responses:?}");
    assert_eq!(responses[3][1], "OK rev 0");
    assert!(responses[4][0].contains("QUIT"), "{responses:?}");
    assert!(responses[5][0].starts_with("ERR rev 0 bad request:"));

    // A final request whose newline never arrives is still served at EOF,
    // even when a read timeout already buffered it as a partial line
    // (the client pauses longer than the server's poll interval before
    // closing its write half).
    {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        write!(writer, "CERTIFY 2e-7").expect("send partial");
        writer.flush().expect("flush");
        std::thread::sleep(std::time::Duration::from_millis(120));
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut block = Vec::new();
        loop {
            let mut line = String::new();
            assert_ne!(
                reader.read_line(&mut line).expect("read"),
                0,
                "partial final request was dropped unserved"
            );
            let line = line.trim_end_matches(['\r', '\n']).to_string();
            let done = protocol::is_final(&line);
            block.push(line);
            if done {
                break;
            }
        }
        assert!(block[0].starts_with("certify required 2e-7"), "{block:?}");
        assert_eq!(block[1], "OK rev 0");
    }

    // QUIT closes just this connection; the server keeps serving others.
    {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = BufWriter::new(stream);
        writeln!(writer, "QUIT").expect("send");
        writer.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("ok line");
        assert_eq!(line.trim_end(), "OK rev 0");
        line.clear();
        assert_eq!(reader.read_line(&mut line).expect("eof"), 0);
    }
    let survivors = run_client(addr, &["STATS".to_string()]);
    assert!(survivors[0][0].starts_with("stats "));

    // SHUTDOWN stops the whole server.
    let _ = run_client(addr, &["SHUTDOWN".to_string()]);
    server.join();
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener closed after SHUTDOWN"
    );
}

/// The continuum surface on the wire: `CERTIFY --over` answers with the
/// exact worst point of the symbolic lane (byte-identical to the shared
/// offline renderer), `QUERY --sens` appends the nominal sensitivities,
/// and the sharded composed block with one shard degenerates to the
/// scalar block.
#[test]
fn certify_over_and_sens_are_served_and_match_the_shared_renderer() {
    let trees = deck_trees();
    let server =
        Server::start(design_of(&trees), &config(), ("127.0.0.1", 0)).expect("server starts");
    let addr = server.local_addr();

    let (net, tree) = &trees[0];
    let node = tree.name(tree.preorder()[1]).expect("named").to_string();
    let script = vec![
        "CERTIFY 1.2e-7 --over r 0.8..1.4 c 0.9..1.2".to_string(),
        "CERTIFY 1.2e-7 --over r 0.8..1.4".to_string(),
        format!("QUERY {net} {node} --sens"),
        format!("QUERY {net} {node}"),
        "CERTIFY 1.2e-7 --over r 1.4..0.8".to_string(),
        format!("QUERY {net} --sens"),
    ];
    let responses = run_client(addr, &script);
    let _ = run_client(addr, &["SHUTDOWN".to_string()]);
    server.join();

    // The offline oracle: a fresh snapshot of the same design, rendered
    // through the same shared payload function.
    let oracle =
        EcoExecutor::new(design_of(&trees), THRESHOLD, Seconds::new(BUDGET_S), 1).expect("oracle");
    let snapshot = oracle.snapshot();

    let over = protocol::ScaleBox {
        r: (0.8, 1.4),
        c: (0.9, 1.2),
    };
    let line = protocol::certify_over_line(&snapshot, 1.2e-7, &over).expect("renders");
    assert_eq!(responses[0], vec![line.clone(), "OK rev 0".to_string()]);
    assert!(
        line.starts_with("certify required 1.2e-7 over r 0.8..1.4 c 0.9..1.2 worst_slack "),
        "{line}"
    );
    assert!(line.contains(" worst at r="), "{line}");
    // All delays grow with both scales, so the worst point of a box that
    // excludes larger scales than its top corner is that top corner.
    assert!(line.contains(" worst at r=1.4,c=1.2 "), "{line}");

    // The composed renderer with one shard is byte-identical.
    assert_eq!(
        protocol::render_certify_over_composed(
            std::slice::from_ref(&snapshot),
            &[0],
            1.2e-7,
            &over
        ),
        responses[0]
    );

    // Omitted `c` range certifies the nominal c line.
    assert!(
        responses[1][0]
            .starts_with("certify required 1.2e-7 over r 0.8..1.4 c 1.0..1.0 worst_slack "),
        "{:?}",
        responses[1]
    );

    // `--sens` appends one payload line; the query is otherwise unchanged.
    assert_eq!(responses[2].len(), 3, "{:?}", responses[2]);
    assert!(responses[2][0].starts_with("node "), "{:?}", responses[2]);
    assert!(
        responses[2][1].starts_with("sens dT_dr "),
        "{:?}",
        responses[2]
    );
    assert!(responses[2][1].contains(" dT_dc "), "{:?}", responses[2]);
    assert_eq!(responses[2][0], responses[3][0]);
    assert_eq!(
        responses[2],
        protocol::render_query(&snapshot, 0, net, Some(&node), None, true)
    );

    // Malformed boxes and a node-less `--sens` are clean errors.
    assert!(responses[4][0].starts_with("ERR rev 0 bad request:"));
    assert!(responses[5][0].starts_with("ERR rev 0 bad request:"));
    assert!(
        responses[5][0].contains("requires a node"),
        "{:?}",
        responses[5]
    );
}

/// On a sharded server, `CERTIFY --over` composes across shards: min
/// worst slack, the argmin shard's worst point, conjunction verdict.
#[test]
fn sharded_certify_over_composes_across_shards() {
    const SHARDS: usize = 3;
    let trees = deck_trees();
    let mut config = config();
    config.shards = SHARDS;
    let server =
        Server::start(design_of(&trees), &config, ("127.0.0.1", 0)).expect("server starts");
    let addr = server.local_addr();
    let responses = run_client(
        addr,
        &["CERTIFY 1.2e-7 --over r 0.7..1.3 c 0.8..1.1".to_string()],
    );
    let _ = run_client(addr, &["SHUTDOWN".to_string()]);
    server.join();

    let over = protocol::ScaleBox {
        r: (0.7, 1.3),
        c: (0.8, 1.1),
    };
    let shard_designs = design_of(&trees).partition(SHARDS).expect("partitions");
    let snapshots: Vec<Arc<DesignSnapshot>> = shard_designs
        .into_iter()
        .map(|d| {
            EcoExecutor::new(d, THRESHOLD, Seconds::new(BUDGET_S), 1)
                .expect("oracle")
                .snapshot()
        })
        .collect();
    let revs = vec![0; SHARDS];
    assert_eq!(
        responses[0],
        protocol::render_certify_over_composed(&snapshots, &revs, 1.2e-7, &over)
    );
    assert_eq!(*responses[0].last().expect("final"), "OK rev 0,0,0");
}
