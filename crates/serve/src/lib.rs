//! # rctree-serve
//!
//! A concurrent timing-query + ECO server over the incremental STA engine:
//! the subsystem that turns the library into a long-running service.
//!
//! The paper's delay bounds are cheap enough to answer interactively, and
//! the PR-3/PR-4 ECO engine re-times an edit in `O(depth)` — this crate
//! puts both behind a hand-rolled multi-threaded TCP server (`std::net`
//! only; the workspace is offline) speaking a line-based text protocol:
//!
//! ```text
//! QUERY <net> [node] [--corner <k|name>]   cached sink windows / per-node times
//!       [--sens]                           (`--sens`: nominal dT/dr, dT/dc)
//! REPORT [--corner <k|name|worst>]         one corner's full timing report
//!                                          (== offline `rcdelay report`)
//! ECO <edit-script-line>                   transactional edits, one slack-delta
//!                                          line per edit (all lanes re-timed)
//! CERTIFY <budget>                         certification against any budget;
//!                                          worst corner over all lanes, named
//! CERTIFY <budget> --over r <lo..hi>       continuum certification over a whole
//!         [c <lo..hi>]                     box of wire scales (symbolic lane);
//!                                          exact worst point, not a sampling
//! STATS                                    server counters
//! METRICS [stable]                         observability registry, Prometheus-
//!                                          style text (`stable`: only the
//!                                          cross-`RCTREE_JOBS`-deterministic
//!                                          subset); self-excluding
//! TRACE <n>                                most recent n finished spans,
//!                                          one line each; self-excluding
//! QUIT                                     close this connection
//! SHUTDOWN                                 stop the server
//! ```
//!
//! ## Corners on the wire
//!
//! When the served design carries a multi-corner `CornerSet`, every
//! data-bearing `OK` line grows a ` corners <name,...>` tail naming the
//! corner vector, and `QUERY`/`REPORT` accept a `--corner` selector
//! (lane index or corner name; `REPORT` also takes `worst`).  `CERTIFY`
//! reports the smallest-slack corner by name with the conjunction verdict
//! over all lanes.  Nominal-only decks are byte-identical to the
//! single-corner protocol — clients parse `OK rev <r>` prefixes either
//! way.  Repeated `REPORT`s of one revision(-vector) are served from a
//! rendered cache (see [`RenderedReportCache`]).
//!
//! ## Concurrency model
//!
//! * **Readers never block on analysis.**  Every read verb answers
//!   against an immutable [`DesignSnapshot`] loaded from a
//!   [`SnapshotStore`] — one `Arc` clone under a nanosecond-scale lock —
//!   so read throughput scales with connection threads, and a snapshot
//!   once loaded stays self-consistent no matter how many edits commit
//!   after it.
//! * **Writes serialize per shard.**  With `--shards N` the design is
//!   partitioned by net range and each shard owns its own
//!   [`EcoExecutor`] behind its own mutex — independent ECOs on
//!   different shards commit and publish concurrently.  Within a shard,
//!   each accepted directive applies on the cone-limited incremental
//!   path and publishes the successor snapshot atomically, bumping that
//!   shard's revision by one.  Unsharded (the default), this reduces to
//!   the single-writer model.
//! * **Every response is attributable.**  Single-shard verbs end with
//!   `OK rev <r>` / `ERR rev <r> …` naming the scalar revision; composed
//!   verbs (`REPORT`, `CERTIFY`, `STATS` when sharded) end with a
//!   revision *vector* `OK rev <r0,r1,…>`, one entry per shard.  Either
//!   way each response is byte-identical to per-shard serial oracles
//!   replaying each shard's accepted-edit order to the named
//!   revision(s) — the guarantee `tests/server_sessions.rs` pins under
//!   concurrent clients.
//!
//! See `crates/serve/README.md` for the wire grammar and the consistency
//! model in full.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod session;
pub mod store;

pub use crate::loadgen::{fetch_metrics, run_load, LoadReport, VerbLatency};
pub use crate::protocol::{Request, ScaleBox};
pub use crate::server::{Backoff, ServeConfig, ServeError, Server, DEFAULT_POLL_FLOOR};
pub use crate::session::{EcoCounts, EcoExecutor};
pub use crate::store::{RenderedReportCache, ServerStats, SnapshotStore};

// Re-exported so protocol consumers (oracle tests, the CLI) name the
// snapshot type without a direct rctree-sta dependency.
pub use rctree_sta::DesignSnapshot;
