//! The single-writer ECO executor: the one place design state mutates.
//!
//! Every `ECO` request — from any connection — serializes through the
//! target shard's [`EcoExecutor`] behind that shard's writer mutex
//! (unsharded servers have exactly one).  Each accepted
//! directive advances the revision by one, produces the successor
//! [`DesignSnapshot`] through the incremental
//! [`Design::publish_after_eco`] path (dirty-net views rebuilt, everything
//! else `Arc`-reused), and hands it to the caller's `publish` hook for the
//! snapshot store; rejected directives are skipped transactionally, exactly
//! like `rcdelay eco --watch` — the session state stays valid and keeps
//! serving.  The executor is also the *serial oracle*: the equivalence
//! tests replay a server's accepted-edit order through a fresh executor
//! and demand byte-identical responses at every revision.

use std::sync::Arc;

use rctree_core::units::Seconds;
use rctree_sta::script::{parse_eco_script_line, ScriptLine};
use rctree_sta::{Design, DesignSnapshot, StaError};

use crate::protocol::{corner_tail, err_line, ok_line};

/// Applied/skipped directive tallies of one `ECO` request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EcoCounts {
    /// Directives committed.
    pub applied: u64,
    /// Directives rejected and skipped.
    pub skipped: u64,
}

/// The server's single writer: the live [`Design`], the latest published
/// snapshot, and the rolling slack the per-edit deltas are computed
/// against.
#[derive(Debug)]
pub struct EcoExecutor {
    design: Design,
    threshold: f64,
    required: Seconds,
    jobs: usize,
    snapshot: Arc<DesignSnapshot>,
    revision: u64,
    slack: Seconds,
}

impl EcoExecutor {
    /// Warms the design's incremental engine and publishes the baseline
    /// snapshot (revision 0).
    ///
    /// # Errors
    ///
    /// Analysis errors from [`Design::publish`].
    pub fn new(
        mut design: Design,
        threshold: f64,
        required: Seconds,
        jobs: usize,
    ) -> Result<EcoExecutor, StaError> {
        let snapshot = Arc::new(design.publish(threshold, required, jobs)?);
        let slack = snapshot.report().worst_slack();
        Ok(EcoExecutor {
            design,
            threshold,
            required,
            jobs,
            snapshot,
            revision: 0,
            slack,
        })
    }

    /// The latest committed snapshot.
    pub fn snapshot(&self) -> Arc<DesignSnapshot> {
        Arc::clone(&self.snapshot)
    }

    /// The latest committed revision (accepted directives since start).
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Number of timing corners of the live design (1 when nominal-only).
    pub fn corner_count(&self) -> usize {
        self.snapshot.corner_count()
    }

    /// `(base, corner-lane)` byte sizes of the design's SoA net arena
    /// (zeros until an arena-building analysis ran).
    pub fn arena_bytes(&self) -> (usize, usize) {
        self.design.arena_bytes()
    }

    /// The final `OK` line of an `ECO` response: revision plus the corner
    /// vector on multi-corner decks (the edits re-timed every lane).
    fn ok(&self) -> String {
        format!("{}{}", ok_line(self.revision), corner_tail(&self.snapshot))
    }

    /// Executes one `ECO` request line and returns its full response block
    /// plus the applied/skipped tallies.
    ///
    /// `publish` is invoked once per **accepted** directive with the
    /// successor snapshot and its revision — the server feeds the snapshot
    /// store here, so concurrent readers observe every intermediate state
    /// in commit order; the oracle records them instead.  `log` receives
    /// each accepted directive's summary text, in commit order (the
    /// server's accepted-edit log).
    ///
    /// Script locations are relative to the request line itself (always
    /// `line 1`; multi-directive requests name `edit K`).
    pub fn exec_eco(
        &mut self,
        script: &str,
        publish: &mut dyn FnMut(&Arc<DesignSnapshot>, u64),
        log: &mut dyn FnMut(&str),
    ) -> (Vec<String>, EcoCounts) {
        let mut counts = EcoCounts::default();
        let edits = match parse_eco_script_line(1, script) {
            Err(e) => {
                return (
                    vec![err_line(self.revision, &format!("edit script: {e}"))],
                    counts,
                );
            }
            Ok(ScriptLine::Empty) => return (vec![self.ok()], counts),
            Ok(ScriptLine::Quit) => {
                return (
                    vec![err_line(
                        self.revision,
                        "`quit` is not a server directive; close the connection with QUIT",
                    )],
                    counts,
                );
            }
            Ok(ScriptLine::Edits(edits)) => edits,
        };
        let mut lines = Vec::with_capacity(edits.len() + 1);
        for se in &edits {
            match self.design.publish_after_eco(
                std::slice::from_ref(&se.edit),
                self.threshold,
                self.required,
                self.jobs,
                &self.snapshot,
            ) {
                Ok(next) => {
                    self.revision += 1;
                    self.snapshot = Arc::new(next);
                    let slack = self.snapshot.report().worst_slack();
                    let delta = slack - self.slack;
                    lines.push(format!(
                        "edit {} {} slack {:e} delta {:e} {}",
                        self.revision,
                        se.summary,
                        slack.value(),
                        delta.value(),
                        self.snapshot.report().certification()
                    ));
                    self.slack = slack;
                    counts.applied += 1;
                    publish(&self.snapshot, self.revision);
                    log(&se.summary);
                }
                Err(e) => {
                    lines.push(format!("skip {}: {e}", se.location()));
                    counts.skipped += 1;
                }
            }
        }
        lines.push(self.ok());
        (lines, counts)
    }
}
