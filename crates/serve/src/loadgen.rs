//! A multi-connection load generator for the wire protocol.
//!
//! Drives `K` concurrent connections, each issuing its own request script
//! (one request per line, responses read to their final `OK`/`ERR` line),
//! and aggregates throughput plus latency percentiles.  This is the engine
//! behind `rcdelay bench-client` and the `serve_throughput` bench.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use crate::protocol;

/// Aggregated results of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Concurrent connections driven.
    pub connections: usize,
    /// Requests completed (across all connections).
    pub requests: usize,
    /// Responses whose final line was `ERR`.
    pub protocol_errors: usize,
    /// Wall-clock time of the whole run, in seconds.
    pub elapsed_s: f64,
    /// Completed requests per second of wall-clock time.
    pub queries_per_s: f64,
    /// Median request latency, in microseconds.
    pub p50_us: f64,
    /// 90th-percentile request latency, in microseconds.
    pub p90_us: f64,
    /// 99th-percentile request latency, in microseconds.
    pub p99_us: f64,
    /// Worst request latency, in microseconds.
    pub max_us: f64,
}

impl LoadReport {
    /// Renders the report as the `BENCH_serve.json` document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"serve\",\n  \"connections\": {},\n  \"requests\": {},\n  \
             \"protocol_errors\": {},\n  \"elapsed_s\": {},\n  \"queries_per_s\": {},\n  \
             \"p50_us\": {},\n  \"p90_us\": {},\n  \"p99_us\": {},\n  \"max_us\": {}\n}}\n",
            self.connections,
            self.requests,
            self.protocol_errors,
            self.elapsed_s,
            self.queries_per_s,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.max_us
        )
    }
}

/// The nearest-rank percentile of an already **sorted** latency list.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Runs one connection's script, returning `(latency_us, was_err)` per
/// request.
fn run_connection(addr: SocketAddr, script: &[String]) -> io::Result<Vec<(f64, bool)>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut samples = Vec::with_capacity(script.len());
    let mut line = String::new();
    for request in script {
        let start = Instant::now();
        writeln!(writer, "{request}")?;
        writer.flush()?;
        let is_err = loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ));
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if protocol::is_final(trimmed) {
                break trimmed.starts_with("ERR");
            }
        };
        samples.push((start.elapsed().as_secs_f64() * 1e6, is_err));
    }
    Ok(samples)
}

/// Drives one script per connection concurrently against `addr` and
/// aggregates the results.
///
/// # Errors
///
/// The first connection/transport error of any connection thread (protocol
/// `ERR` responses are *not* transport errors; they are tallied in
/// [`LoadReport::protocol_errors`]).
pub fn run_load(addr: SocketAddr, scripts: &[Vec<String>]) -> io::Result<LoadReport> {
    let start = Instant::now();
    let results: Vec<io::Result<Vec<(f64, bool)>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = scripts
            .iter()
            .map(|script| scope.spawn(move || run_connection(addr, script)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(_) => Err(io::Error::other("load connection thread panicked")),
            })
            .collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();

    let mut latencies = Vec::new();
    let mut protocol_errors = 0usize;
    for result in results {
        for (us, is_err) in result? {
            latencies.push(us);
            protocol_errors += usize::from(is_err);
        }
    }
    latencies.sort_by(f64::total_cmp);
    let requests = latencies.len();
    Ok(LoadReport {
        connections: scripts.len(),
        requests,
        protocol_errors,
        elapsed_s,
        queries_per_s: requests as f64 / elapsed_s.max(1e-12),
        p50_us: percentile(&latencies, 50.0),
        p90_us: percentile(&latencies, 90.0),
        p99_us: percentile(&latencies, 99.0),
        max_us: latencies.last().copied().unwrap_or(0.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 50.0), 51.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&sorted, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn json_report_is_well_formed_enough_to_grep() {
        let report = LoadReport {
            connections: 4,
            requests: 100,
            protocol_errors: 0,
            elapsed_s: 0.5,
            queries_per_s: 200.0,
            p50_us: 10.0,
            p90_us: 20.0,
            p99_us: 30.0,
            max_us: 40.0,
        };
        let json = report.to_json();
        assert!(json.contains("\"queries_per_s\": 200"));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }
}
