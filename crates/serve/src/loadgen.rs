//! A multi-connection load generator for the wire protocol.
//!
//! Drives `K` concurrent connections, each issuing its own request script
//! (one request per line, responses read to their final `OK`/`ERR` line),
//! and aggregates throughput plus latency percentiles — blended and
//! per-verb (`QUERY` vs `ECO` vs `REPORT` vs everything else), so the
//! write path's scaling is visible separately from the read path's.  This
//! is the engine behind `rcdelay bench-client` and the serve benches.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use crate::protocol;

/// Latency percentiles of one request verb.
#[derive(Debug, Clone, PartialEq)]
pub struct VerbLatency {
    /// The verb (`QUERY`, `ECO`, `REPORT`, or `OTHER`).
    pub verb: &'static str,
    /// Requests of this verb completed.
    pub requests: usize,
    /// Median latency, in microseconds.
    pub p50_us: f64,
    /// 90th-percentile latency, in microseconds.
    pub p90_us: f64,
    /// 99th-percentile latency, in microseconds.
    pub p99_us: f64,
    /// Worst latency, in microseconds.
    pub max_us: f64,
}

impl VerbLatency {
    fn from_sorted(verb: &'static str, sorted: &[f64]) -> VerbLatency {
        VerbLatency {
            verb,
            requests: sorted.len(),
            p50_us: percentile(sorted, 50.0),
            p90_us: percentile(sorted, 90.0),
            p99_us: percentile(sorted, 99.0),
            max_us: sorted.last().copied().unwrap_or(0.0),
        }
    }
}

/// The bucket a request line is tallied under.
fn verb_of(request: &str) -> &'static str {
    let head = request.split_whitespace().next().unwrap_or("");
    match head.to_ascii_uppercase().as_str() {
        "QUERY" => "QUERY",
        "ECO" => "ECO",
        "REPORT" => "REPORT",
        _ => "OTHER",
    }
}

/// Aggregated results of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Concurrent connections driven.
    pub connections: usize,
    /// Requests completed (across all connections).
    pub requests: usize,
    /// Responses whose final line was `ERR`.
    pub protocol_errors: usize,
    /// Wall-clock time of the whole run, in seconds.
    pub elapsed_s: f64,
    /// Completed requests per second of wall-clock time.
    pub queries_per_s: f64,
    /// Median request latency, in microseconds.
    pub p50_us: f64,
    /// 90th-percentile request latency, in microseconds.
    pub p90_us: f64,
    /// 99th-percentile request latency, in microseconds.
    pub p99_us: f64,
    /// Worst request latency, in microseconds.
    pub max_us: f64,
    /// Per-verb latency breakdown (verbs with zero requests omitted).
    pub per_verb: Vec<VerbLatency>,
    /// Server-side counter deltas over the run — `METRICS stable` scraped
    /// before and after, diffed with [`rctree_obs::counter_deltas`] —
    /// so the JSON cross-checks the client's view (requests sent) against
    /// the server's (requests counted, bytes written, cache hits).  Empty
    /// when the caller did not scrape.
    pub server_deltas: Vec<(String, f64)>,
}

impl LoadReport {
    /// Renders the report as the `BENCH_serve*.json` document.  The
    /// pre-existing top-level keys are stable (CI greps them); the
    /// per-verb breakdown is appended as a `"per_verb"` object.
    pub fn to_json(&self) -> String {
        let mut per_verb = String::new();
        for (i, v) in self.per_verb.iter().enumerate() {
            if i > 0 {
                per_verb.push_str(",\n");
            }
            per_verb.push_str(&format!(
                "    \"{}\": {{ \"requests\": {}, \"p50_us\": {}, \"p90_us\": {}, \
                 \"p99_us\": {}, \"max_us\": {} }}",
                v.verb, v.requests, v.p50_us, v.p90_us, v.p99_us, v.max_us
            ));
        }
        let mut deltas = String::new();
        for (i, (key, delta)) in self.server_deltas.iter().enumerate() {
            if i > 0 {
                deltas.push_str(",\n");
            }
            deltas.push_str(&format!("    \"{}\": {delta}", json_escape(key)));
        }
        format!(
            "{{\n  \"bench\": \"serve\",\n  \"connections\": {},\n  \"requests\": {},\n  \
             \"protocol_errors\": {},\n  \"elapsed_s\": {},\n  \"queries_per_s\": {},\n  \
             \"p50_us\": {},\n  \"p90_us\": {},\n  \"p99_us\": {},\n  \"max_us\": {},\n  \
             \"per_verb\": {{\n{}\n  }},\n  \"server_deltas\": {{\n{}\n  }}\n}}\n",
            self.connections,
            self.requests,
            self.protocol_errors,
            self.elapsed_s,
            self.queries_per_s,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.max_us,
            per_verb,
            deltas
        )
    }
}

/// Escape a string for use inside a JSON string literal (series keys carry
/// quoted label values).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Fetches one `METRICS` (or `METRICS stable`) scrape from a running
/// server: the payload text, excluding the final `OK rev …` line, with a
/// trailing newline — exactly the registry exposition, ready for
/// [`rctree_obs::parse_exposition`].
///
/// # Errors
///
/// Connection/transport errors, or a scrape whose final line is `ERR`.
pub fn fetch_metrics(addr: SocketAddr, stable: bool) -> io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    if stable {
        writeln!(writer, "METRICS stable")?;
    } else {
        writeln!(writer, "METRICS")?;
    }
    writer.flush()?;
    let mut payload = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed mid-scrape",
            ));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if protocol::is_final(trimmed) {
            if trimmed.starts_with("ERR") {
                return Err(io::Error::other(format!("scrape failed: {trimmed}")));
            }
            return Ok(payload);
        }
        payload.push_str(trimmed);
        payload.push('\n');
    }
}

/// The nearest-rank percentile of an already **sorted** latency list.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// One request's outcome: `(latency_us, was_err, verb)`.
type Sample = (f64, bool, &'static str);

/// Runs one connection's script, returning one [`Sample`] per request.
fn run_connection(addr: SocketAddr, script: &[String]) -> io::Result<Vec<Sample>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut samples = Vec::with_capacity(script.len());
    let mut line = String::new();
    for request in script {
        let start = Instant::now();
        writeln!(writer, "{request}")?;
        writer.flush()?;
        let is_err = loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ));
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if protocol::is_final(trimmed) {
                break trimmed.starts_with("ERR");
            }
        };
        samples.push((
            start.elapsed().as_secs_f64() * 1e6,
            is_err,
            verb_of(request),
        ));
    }
    Ok(samples)
}

/// Drives one script per connection concurrently against `addr` and
/// aggregates the results.
///
/// # Errors
///
/// The first connection/transport error of any connection thread (protocol
/// `ERR` responses are *not* transport errors; they are tallied in
/// [`LoadReport::protocol_errors`]).
pub fn run_load(addr: SocketAddr, scripts: &[Vec<String>]) -> io::Result<LoadReport> {
    let start = Instant::now();
    let results: Vec<io::Result<Vec<Sample>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = scripts
            .iter()
            .map(|script| scope.spawn(move || run_connection(addr, script)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(_) => Err(io::Error::other("load connection thread panicked")),
            })
            .collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();

    let mut latencies = Vec::new();
    let mut protocol_errors = 0usize;
    let mut by_verb: [(&'static str, Vec<f64>); 4] = [
        ("QUERY", Vec::new()),
        ("ECO", Vec::new()),
        ("REPORT", Vec::new()),
        ("OTHER", Vec::new()),
    ];
    for result in results {
        for (us, is_err, verb) in result? {
            latencies.push(us);
            protocol_errors += usize::from(is_err);
            if let Some((_, bucket)) = by_verb.iter_mut().find(|(name, _)| *name == verb) {
                bucket.push(us);
            }
        }
    }
    latencies.sort_by(f64::total_cmp);
    let requests = latencies.len();
    let per_verb = by_verb
        .iter_mut()
        .filter(|(_, bucket)| !bucket.is_empty())
        .map(|(verb, bucket)| {
            bucket.sort_by(f64::total_cmp);
            VerbLatency::from_sorted(verb, bucket)
        })
        .collect();
    Ok(LoadReport {
        connections: scripts.len(),
        requests,
        protocol_errors,
        elapsed_s,
        queries_per_s: requests as f64 / elapsed_s.max(1e-12),
        p50_us: percentile(&latencies, 50.0),
        p90_us: percentile(&latencies, 90.0),
        p99_us: percentile(&latencies, 99.0),
        max_us: latencies.last().copied().unwrap_or(0.0),
        per_verb,
        server_deltas: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 50.0), 51.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&sorted, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn verbs_classify_by_first_token() {
        assert_eq!(verb_of("QUERY net1"), "QUERY");
        assert_eq!(verb_of("  eco set_cap net1 n2 1e-13"), "ECO");
        assert_eq!(verb_of("REPORT --corner worst"), "REPORT");
        assert_eq!(verb_of("CERTIFY 1e-9"), "OTHER");
        assert_eq!(verb_of(""), "OTHER");
    }

    #[test]
    fn json_report_is_well_formed_enough_to_grep() {
        let report = LoadReport {
            connections: 4,
            requests: 100,
            protocol_errors: 0,
            elapsed_s: 0.5,
            queries_per_s: 200.0,
            p50_us: 10.0,
            p90_us: 20.0,
            p99_us: 30.0,
            max_us: 40.0,
            per_verb: vec![VerbLatency {
                verb: "QUERY",
                requests: 100,
                p50_us: 10.0,
                p90_us: 20.0,
                p99_us: 30.0,
                max_us: 40.0,
            }],
            server_deltas: vec![(
                "rctree_requests_verb_total{verb=\"QUERY\"}".to_string(),
                100.0,
            )],
        };
        let json = report.to_json();
        assert!(json.contains("\"queries_per_s\": 200"));
        assert!(json.contains("\"per_verb\""));
        assert!(json.contains("\"QUERY\": { \"requests\": 100"));
        // Label quotes inside the series key are escaped for JSON.
        assert!(
            json.contains("\"rctree_requests_verb_total{verb=\\\"QUERY\\\"}\": 100"),
            "{json}"
        );
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }
}
