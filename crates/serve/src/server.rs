//! The TCP listener, connection threads, and request dispatch.

use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rctree_core::units::Seconds;
use rctree_sta::{Design, StaError};

use crate::protocol::{self, Request};
use crate::session::EcoExecutor;
use crate::store::{ServerStats, SnapshotStore};

/// How long a blocked accept/read waits before re-checking the shutdown
/// flag (`std::net` has no readiness notification without `unsafe` or an
/// external dependency, so both loops poll on this granularity).
const POLL: Duration = Duration::from_millis(25);

/// Analysis parameters of a server instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Switching threshold for every stage delay.
    pub threshold: f64,
    /// Required arrival time (the slack/certification budget).
    pub required_time: Seconds,
    /// Worker threads for the initial analysis and ECO re-timing.
    pub jobs: usize,
}

/// Errors starting a server.
#[derive(Debug)]
pub enum ServeError {
    /// The baseline analysis of the design failed.
    Sta(StaError),
    /// Binding or configuring the listener failed.
    Io(io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Sta(e) => write!(f, "baseline analysis failed: {e}"),
            ServeError::Io(e) => write!(f, "cannot start server: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<StaError> for ServeError {
    fn from(e: StaError) -> Self {
        ServeError::Sta(e)
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// State shared by the accept loop and every connection thread.
#[derive(Debug)]
struct Shared {
    store: SnapshotStore,
    writer: Mutex<EcoExecutor>,
    stats: ServerStats,
    shutdown: AtomicBool,
    /// Accepted directives in commit order — the audit log the
    /// serial-oracle equivalence tests replay.
    eco_log: Mutex<Vec<String>>,
}

/// A running timing server.
///
/// Dropping the handle does **not** stop the server; call
/// [`Server::shutdown`] (or have a client send `SHUTDOWN`) and then
/// [`Server::join`].
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Warms the design, publishes the baseline snapshot (revision 0),
    /// binds the listener, and starts accepting connections.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Sta`] if the baseline analysis fails;
    /// * [`ServeError::Io`] if the listener cannot be bound.
    pub fn start(
        design: Design,
        config: &ServeConfig,
        addr: impl ToSocketAddrs,
    ) -> Result<Server, ServeError> {
        let executor =
            EcoExecutor::new(design, config.threshold, config.required_time, config.jobs)?;
        let store = SnapshotStore::new(executor.snapshot());
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            store,
            writer: Mutex::new(executor),
            stats: ServerStats::default(),
            shutdown: AtomicBool::new(false),
            eco_log: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (the actual port when started with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The latest committed revision.
    pub fn revision(&self) -> u64 {
        self.shared.store.load().1
    }

    /// Number of nets in the served design.
    pub fn net_count(&self) -> usize {
        self.shared.store.load().0.net_count()
    }

    /// The accepted-directive log, in commit order.
    pub fn eco_log(&self) -> Vec<String> {
        lock(&self.shared.eco_log).clone()
    }

    /// Requests shutdown: the listener stops accepting and every
    /// connection closes after its in-flight request.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the accept loop and every connection thread exit
    /// (after [`Server::shutdown`] or a client `SHUTDOWN`).
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Accepts connections until shutdown, then joins every handler.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                ServerStats::bump(&shared.stats.connections);
                let shared = Arc::clone(&shared);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(stream, shared)
                }));
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => break,
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// What to do after responding to one request.
enum After {
    Continue,
    Close,
}

/// One connection: read request lines, write response blocks, until EOF,
/// `QUIT`, `SHUTDOWN`, or server shutdown.
fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    // Reads poll so a parked connection notices server shutdown.
    let _ = stream.set_read_timeout(Some(POLL));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut buf = String::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match reader.read_line(&mut buf) {
            // EOF.  A read timeout may have parked a partial request in
            // `buf` (appended without its newline before the client
            // closed); serve it before closing, exactly as the
            // `at_eof` branch below does when EOF and data arrive in one
            // read.
            Ok(0) => {
                if !buf.is_empty() {
                    let line = buf.trim_end_matches(['\r', '\n']).to_string();
                    buf.clear();
                    let _ = respond(&line, &shared, &mut writer);
                }
                break;
            }
            Ok(_) => {
                // `read_line` without a trailing newline means EOF cut the
                // final line; serve it, then close.
                let at_eof = !buf.ends_with('\n');
                let line = buf.trim_end_matches(['\r', '\n']).to_string();
                buf.clear();
                match respond(&line, &shared, &mut writer) {
                    Ok(After::Continue) if !at_eof => {}
                    _ => break,
                }
            }
            // Timeout while idle (or mid-line: partial data stays in `buf`
            // and the next round continues it).
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
}

/// A response block: owned lines, or a shared rendering out of the
/// per-revision report cache.
enum Block {
    Owned(Vec<String>),
    Cached(Arc<Vec<String>>),
}

impl Block {
    fn lines(&self) -> &[String] {
        match self {
            Block::Owned(lines) => lines,
            Block::Cached(lines) => lines,
        }
    }
}

/// Parses one request line, serves it, writes the response block.
fn respond(line: &str, shared: &Shared, out: &mut impl Write) -> io::Result<After> {
    let mut after = After::Continue;
    let block = match protocol::parse_request(line) {
        // Blank lines get no response at all.
        Ok(None) => return Ok(After::Continue),
        Err(message) => {
            let (_, rev) = shared.store.load();
            Block::Owned(vec![protocol::err_line(
                rev,
                &format!("bad request: {message}"),
            )])
        }
        Ok(Some(request)) => {
            ServerStats::bump(&shared.stats.requests);
            match request {
                Request::Query { net, node, corner } => {
                    ServerStats::bump(&shared.stats.queries);
                    let (snapshot, rev) = shared.store.load();
                    Block::Owned(protocol::render_query(
                        &snapshot,
                        rev,
                        &net,
                        node.as_deref(),
                        corner.as_deref(),
                    ))
                }
                Request::Report { corner } => {
                    let (snapshot, rev) = shared.store.load();
                    let (lines, hit) = shared.store.rendered_report(rev, corner.as_deref(), || {
                        protocol::render_report(&snapshot, rev, corner.as_deref())
                    });
                    if hit {
                        ServerStats::bump(&shared.stats.report_cache_hits);
                    }
                    Block::Cached(lines)
                }
                Request::Certify { budget } => {
                    let (snapshot, rev) = shared.store.load();
                    Block::Owned(protocol::render_certify(&snapshot, rev, budget))
                }
                Request::Stats => Block::Owned(render_stats(shared)),
                Request::Quit => {
                    after = After::Close;
                    Block::Owned(vec![protocol::ok_line(shared.store.load().1)])
                }
                Request::Shutdown => {
                    after = After::Close;
                    shared.shutdown.store(true, Ordering::SeqCst);
                    Block::Owned(vec![protocol::ok_line(shared.store.load().1)])
                }
                Request::Eco { script } => {
                    // All writers serialize here; reads keep flowing off
                    // the store while this lock is held.
                    let mut executor = lock(&shared.writer);
                    let (lines, counts) = executor.exec_eco(
                        &script,
                        &mut |snapshot, rev| shared.store.publish(Arc::clone(snapshot), rev),
                        &mut |summary| lock(&shared.eco_log).push(summary.to_string()),
                    );
                    ServerStats::add(&shared.stats.eco_applied, counts.applied);
                    ServerStats::add(&shared.stats.eco_skipped, counts.skipped);
                    Block::Owned(lines)
                }
            }
        }
    };
    for line in block.lines() {
        writeln!(out, "{line}")?;
    }
    out.flush()?;
    Ok(after)
}

/// The `STATS` response block.
///
/// The arena byte sizes come from the live design behind the writer lock
/// (a size probe, not an analysis); like every other counter here they
/// are *not* part of the deterministic response surface.
fn render_stats(shared: &Shared) -> Vec<String> {
    let (snapshot, rev) = shared.store.load();
    let (arena_base, arena_corner) = lock(&shared.writer).arena_bytes();
    vec![
        format!(
            "stats nets {} instances {} endpoints {} revision {} corners {} arena_base_bytes {} \
             arena_corner_bytes {} connections {} requests {} queries {} eco_applied {} \
             eco_skipped {} report_cache_hits {}",
            snapshot.net_count(),
            snapshot.instance_count(),
            snapshot.report().endpoints.len(),
            rev,
            snapshot.corner_count(),
            arena_base,
            arena_corner,
            ServerStats::get(&shared.stats.connections),
            ServerStats::get(&shared.stats.requests),
            ServerStats::get(&shared.stats.queries),
            ServerStats::get(&shared.stats.eco_applied),
            ServerStats::get(&shared.stats.eco_skipped),
            ServerStats::get(&shared.stats.report_cache_hits),
        ),
        format!(
            "{}{}",
            protocol::ok_line(rev),
            protocol::corner_tail(&snapshot)
        ),
    ]
}
