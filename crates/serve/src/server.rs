//! The TCP listener, connection threads, and request dispatch.
//!
//! # Sharding
//!
//! With `--shards N` the served design is partitioned by net range
//! ([`rctree_sta::Design::partition`]): each shard owns its own
//! [`EcoExecutor`] writer, snapshot chain, and revision counter, so
//! independent ECOs on different shards commit and publish concurrently
//! instead of serializing behind one writer lock.  Requests route by net
//! name through a static table built at start-up (the partition never
//! changes while the server runs):
//!
//! * `QUERY` goes to the shard owning its net and answers with that
//!   shard's scalar revision — exactly the single-shard grammar.
//! * `ECO` routes to the single shard owning every known net in the
//!   request; a request spanning two shards is rejected whole (no edit
//!   applies) with an `ERR` naming both shards.  Accepted requests hold
//!   only that shard's writer lock.
//! * `REPORT` / `CERTIFY` / `STATS` compose across all shards and answer
//!   with a revision *vector* (`OK rev <r0,r1,…>`), one revision per
//!   shard, each naming the published snapshot the composition read.
//!
//! With one shard (the default) every path reduces to the pre-sharding
//! single-writer code and the protocol stays byte-identical.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rctree_core::units::Seconds;
use rctree_obs::{Counter, Gauge, Histogram, Obs, ObsConfig, Stability};
use rctree_sta::script::{parse_eco_script_line, ScriptLine};
use rctree_sta::{Design, DesignSnapshot, StaError};

use crate::protocol::{self, Request};
use crate::session::EcoExecutor;
use crate::store::{RenderedReportCache, ServerStats, SnapshotStore};

/// Ceiling of the idle backoff ramp: how long a parked accept/read waits
/// at most before re-checking the shutdown flag (`std::net` has no
/// readiness notification without `unsafe` or an external dependency, so
/// both loops poll — but the interval ramps up from
/// [`ServeConfig::poll_floor`] only while idle, so a busy connection
/// polls at the floor).
const POLL_CAP: Duration = Duration::from_millis(25);

/// Default floor of the idle backoff ramp (`--poll-us` overrides).
pub const DEFAULT_POLL_FLOOR: Duration = Duration::from_millis(1);

/// An exponential idle-backoff ramp between a floor and a cap.
///
/// Polling loops over interfaces without readiness notification (the
/// accept loop, per-connection read timeouts, `rcdelay eco --watch`'s
/// file tail) share one policy: wait the **floor** right after activity,
/// double the wait on every idle round up to the **cap**, and snap back
/// to the floor the moment anything happens.  A busy source is polled at
/// the floor (lowest latency), an idle one costs a wake-up per cap
/// interval (lowest burn).
///
/// [`Backoff::backoff`]/[`Backoff::reset`] report whether the interval
/// changed, so callers that arm timers (e.g. socket read timeouts) only
/// re-arm on change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    floor: Duration,
    cap: Duration,
    current: Duration,
}

impl Backoff {
    /// A ramp from `floor` to `cap`, starting at the floor.  The cap is
    /// raised to at least 1 µs and the floor clamped into `[1 µs, cap]`,
    /// so the ramp always makes progress.
    pub fn new(floor: Duration, cap: Duration) -> Backoff {
        let cap = cap.max(Duration::from_micros(1));
        let floor = floor.clamp(Duration::from_micros(1), cap);
        Backoff {
            floor,
            cap,
            current: floor,
        }
    }

    /// The server's default ramp: [`DEFAULT_POLL_FLOOR`] up to the 25 ms
    /// poll cap.
    pub fn server_default() -> Backoff {
        Backoff::new(DEFAULT_POLL_FLOOR, POLL_CAP)
    }

    /// The current idle interval — what to sleep (or arm a timeout with)
    /// before the next poll.
    pub fn current(&self) -> Duration {
        self.current
    }

    /// Records one idle round: doubles the interval, capped.  Returns
    /// whether the interval changed.
    pub fn backoff(&mut self) -> bool {
        let next = (self.current * 2).min(self.cap);
        let changed = next != self.current;
        self.current = next;
        changed
    }

    /// Records activity: snaps the interval back to the floor.  Returns
    /// whether the interval changed.
    pub fn reset(&mut self) -> bool {
        let changed = self.current != self.floor;
        self.current = self.floor;
        changed
    }
}

/// Analysis parameters of a server instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Switching threshold for every stage delay.
    pub threshold: f64,
    /// Required arrival time (the slack/certification budget).
    pub required_time: Seconds,
    /// Worker threads for the initial analysis and ECO re-timing.
    pub jobs: usize,
    /// Writer shards the design is partitioned into (clamped to the
    /// design's connected-component count; 0 and 1 both mean unsharded).
    pub shards: usize,
    /// Floor of the idle polling backoff ramp (clamped to
    /// `[1 µs, 25 ms]`).
    pub poll_floor: Duration,
    /// Slow-request log threshold in microseconds (`--slow-us`): requests
    /// whose handling exceeds it are logged to stderr.  `None` disables
    /// the log.
    pub slow_us: Option<u64>,
}

impl ServeConfig {
    /// An unsharded config with the default polling floor and no slow log.
    pub fn new(threshold: f64, required_time: Seconds, jobs: usize) -> ServeConfig {
        ServeConfig {
            threshold,
            required_time,
            jobs,
            shards: 1,
            poll_floor: DEFAULT_POLL_FLOOR,
            slow_us: None,
        }
    }
}

/// Errors starting a server.
#[derive(Debug)]
pub enum ServeError {
    /// The baseline analysis of the design failed.
    Sta(StaError),
    /// Binding or configuring the listener failed.
    Io(io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Sta(e) => write!(f, "baseline analysis failed: {e}"),
            ServeError::Io(e) => write!(f, "cannot start server: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<StaError> for ServeError {
    fn from(e: StaError) -> Self {
        ServeError::Sta(e)
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// One writer shard: its snapshot store, its serialized `EcoExecutor`,
/// and its slice of the audit log and counters (registry handles under
/// `rctree_shard_*{shard="<s>"}`).
#[derive(Debug)]
struct Shard {
    store: SnapshotStore,
    writer: Mutex<EcoExecutor>,
    /// Accepted directives in this shard's commit order — the audit log
    /// the per-shard serial-oracle equivalence tests replay.
    eco_log: Mutex<Vec<String>>,
    applied: Arc<Counter>,
    skipped: Arc<Counter>,
    report_cache_hits: Arc<Counter>,
}

/// Per-verb registry handles: request count, response bytes, and the
/// (volatile) handling-duration histogram.
#[derive(Debug)]
struct VerbStats {
    requests: Arc<Counter>,
    bytes: Arc<Counter>,
    duration_us: Arc<Histogram>,
}

/// Design-shape gauges refreshed at every `METRICS` scrape (size probes,
/// exactly what `STATS` reads — not continuously maintained).
#[derive(Debug)]
struct GaugeSet {
    nets: Arc<Gauge>,
    instances: Arc<Gauge>,
    endpoints: Arc<Gauge>,
    corners: Arc<Gauge>,
    arena_base_bytes: Arc<Gauge>,
    arena_corner_bytes: Arc<Gauge>,
    shard_revision: Vec<Arc<Gauge>>,
}

/// State shared by the accept loop and every connection thread.
#[derive(Debug)]
struct Shared {
    shards: Vec<Shard>,
    /// Net name → owning shard.  Empty when unsharded (everything is
    /// shard 0).
    router: HashMap<String, usize>,
    reports: RenderedReportCache,
    stats: ServerStats,
    verbs: HashMap<&'static str, VerbStats>,
    gauges: GaugeSet,
    obs: Arc<Obs>,
    shutdown: AtomicBool,
    poll_floor: Duration,
    slow_us: Option<u64>,
}

/// A running timing server.
///
/// Dropping the handle does **not** stop the server; call
/// [`Server::shutdown`] (or have a client send `SHUTDOWN`) and then
/// [`Server::join`].
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Partitions the design into writer shards, warms each shard,
    /// publishes the baseline snapshots (revision 0 per shard), binds
    /// the listener, and starts accepting connections.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Sta`] if partitioning or a baseline analysis fails;
    /// * [`ServeError::Io`] if the listener cannot be bound.
    pub fn start(
        design: Design,
        config: &ServeConfig,
        addr: impl ToSocketAddrs,
    ) -> Result<Server, ServeError> {
        let designs = if config.shards <= 1 {
            vec![design]
        } else {
            design.partition(config.shards)?
        };
        let obs = Obs::new(ObsConfig::default());
        let mut shards = Vec::with_capacity(designs.len());
        {
            // Enter the runtime for the warm-up so the baseline
            // `sta.net_build` / `sta.propagate_full` spans land in the ring.
            let _warm = obs.enter();
            for (s, design) in designs.into_iter().enumerate() {
                let executor =
                    EcoExecutor::new(design, config.threshold, config.required_time, config.jobs)?;
                let store = SnapshotStore::new(executor.snapshot());
                let label = s.to_string();
                let registry = obs.registry();
                shards.push(Shard {
                    store,
                    writer: Mutex::new(executor),
                    eco_log: Mutex::new(Vec::new()),
                    applied: registry.counter(
                        "rctree_shard_eco_applied_total",
                        Stability::Stable,
                        &[("shard", &label)],
                    ),
                    skipped: registry.counter(
                        "rctree_shard_eco_skipped_total",
                        Stability::Stable,
                        &[("shard", &label)],
                    ),
                    report_cache_hits: registry.counter(
                        "rctree_shard_report_cache_hits_total",
                        Stability::Stable,
                        &[("shard", &label)],
                    ),
                });
            }
        }
        let mut router = HashMap::new();
        if shards.len() > 1 {
            for (s, shard) in shards.iter().enumerate() {
                let (snapshot, _) = shard.store.load();
                for name in snapshot.net_names() {
                    router.insert(name.to_string(), s);
                }
            }
        }
        let registry = obs.registry();
        let stats = ServerStats::new(registry);
        let mut verbs = HashMap::new();
        for verb in protocol::VERBS {
            verbs.insert(
                verb,
                VerbStats {
                    requests: registry.counter(
                        "rctree_requests_verb_total",
                        Stability::Stable,
                        &[("verb", verb)],
                    ),
                    bytes: registry.counter(
                        "rctree_response_bytes_total",
                        Stability::Stable,
                        &[("verb", verb)],
                    ),
                    duration_us: registry.histogram(
                        "rctree_request_duration_us",
                        Stability::Volatile,
                        &[("verb", verb)],
                    ),
                },
            );
        }
        let gauges = GaugeSet {
            nets: registry.gauge("rctree_nets", Stability::Stable, &[]),
            instances: registry.gauge("rctree_instances", Stability::Stable, &[]),
            endpoints: registry.gauge("rctree_endpoints", Stability::Stable, &[]),
            corners: registry.gauge("rctree_corners", Stability::Stable, &[]),
            arena_base_bytes: registry.gauge("rctree_arena_base_bytes", Stability::Stable, &[]),
            arena_corner_bytes: registry.gauge("rctree_arena_corner_bytes", Stability::Stable, &[]),
            shard_revision: (0..shards.len())
                .map(|s| {
                    registry.gauge(
                        "rctree_shard_revision",
                        Stability::Stable,
                        &[("shard", &s.to_string())],
                    )
                })
                .collect(),
        };
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            shards,
            router,
            reports: RenderedReportCache::default(),
            stats,
            verbs,
            gauges,
            obs,
            shutdown: AtomicBool::new(false),
            poll_floor: config.poll_floor.clamp(Duration::from_micros(1), POLL_CAP),
            slow_us: config.slow_us,
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (the actual port when started with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's observability runtime — the registry `METRICS`
    /// exposes and the span ring `TRACE` reads.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.shared.obs
    }

    /// Number of writer shards actually serving (after clamping to the
    /// design's connected-component count).
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// Total committed revisions across all shards (the scalar revision
    /// when unsharded).
    pub fn revision(&self) -> u64 {
        self.revisions().iter().sum()
    }

    /// The per-shard revision vector.
    pub fn revisions(&self) -> Vec<u64> {
        self.shared
            .shards
            .iter()
            .map(|s| s.store.load().1)
            .collect()
    }

    /// Number of nets in the served design (summed across shards).
    pub fn net_count(&self) -> usize {
        self.shared
            .shards
            .iter()
            .map(|s| s.store.load().0.net_count())
            .sum()
    }

    /// The accepted-directive log in commit order — per shard, joined in
    /// shard order (each shard's internal order is its commit order; the
    /// cross-shard interleaving is not serialized).
    pub fn eco_log(&self) -> Vec<String> {
        self.eco_logs().into_iter().flatten().collect()
    }

    /// Per-shard accepted-directive logs, each in that shard's commit
    /// order.
    pub fn eco_logs(&self) -> Vec<Vec<String>> {
        self.shared
            .shards
            .iter()
            .map(|s| lock(&s.eco_log).clone())
            .collect()
    }

    /// Requests shutdown: the listener stops accepting and every
    /// connection closes after its in-flight request.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the accept loop and every connection thread exit
    /// (after [`Server::shutdown`] or a client `SHUTDOWN`).
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Accepts connections until shutdown, then joins every handler.
///
/// The idle sleep ramps exponentially from the configured floor up to
/// [`POLL_CAP`] and resets on every accepted connection, so a busy
/// listener reacts at the floor and an idle one costs one wake-up per
/// 25 ms.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    let mut idle = Backoff::new(shared.poll_floor, POLL_CAP);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                idle.reset();
                shared.stats.connections.bump();
                let shared = Arc::clone(&shared);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(stream, shared)
                }));
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(idle.current());
                idle.backoff();
            }
            Err(_) => break,
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// What to do after responding to one request.
enum After {
    Continue,
    Close,
}

/// One connection: read request lines, write response blocks, until EOF,
/// `QUIT`, `SHUTDOWN`, or server shutdown.
///
/// The read timeout ramps exponentially from the configured floor up to
/// [`POLL_CAP`] while the connection is idle and resets to the floor on
/// every received line, so a request that lands just after a timeout
/// waits ≈the floor instead of a full fixed poll — this is what collapses
/// the served p99 from the old fixed 25 ms poll.
fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    // Enter the server's observability runtime for the lifetime of this
    // connection thread: request spans and the sta/netlist phase spans
    // they enclose report into the server's registry and span ring.
    let _obs = shared.obs.enter();
    let mut idle = Backoff::new(shared.poll_floor, POLL_CAP);
    // Reads poll so a parked connection notices server shutdown.
    let _ = stream.set_read_timeout(Some(idle.current()));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut buf = String::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match reader.read_line(&mut buf) {
            // EOF.  A read timeout may have parked a partial request in
            // `buf` (appended without its newline before the client
            // closed); serve it before closing, exactly as the
            // `at_eof` branch below does when EOF and data arrive in one
            // read.
            Ok(0) => {
                if !buf.is_empty() {
                    let line = buf.trim_end_matches(['\r', '\n']).to_string();
                    buf.clear();
                    let _ = respond(&line, &shared, &mut writer);
                }
                break;
            }
            Ok(_) => {
                if idle.reset() {
                    let _ = reader.get_ref().set_read_timeout(Some(idle.current()));
                }
                // `read_line` without a trailing newline means EOF cut the
                // final line; serve it, then close.
                let at_eof = !buf.ends_with('\n');
                let line = buf.trim_end_matches(['\r', '\n']).to_string();
                buf.clear();
                match respond(&line, &shared, &mut writer) {
                    Ok(After::Continue) if !at_eof => {}
                    _ => break,
                }
            }
            // Timeout while idle (or mid-line: partial data stays in `buf`
            // and the next round continues it).
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if idle.backoff() {
                    let _ = reader.get_ref().set_read_timeout(Some(idle.current()));
                }
            }
            Err(_) => break,
        }
    }
}

/// A response block: owned lines, or a shared rendering out of the
/// rendered-report cache.
enum Block {
    Owned(Vec<String>),
    Cached(Arc<Vec<String>>),
}

impl Block {
    fn lines(&self) -> &[String] {
        match self {
            Block::Owned(lines) => lines,
            Block::Cached(lines) => lines,
        }
    }
}

/// Where an `ECO` request goes.
enum EcoRoute {
    /// Every known net belongs to this shard (requests naming no known
    /// net fall through to shard 0, whose executor re-derives the exact
    /// parse-error / skip response).
    Shard(usize),
    /// Known nets on two different shards: reject the request whole.
    Reject(usize, usize),
}

/// Routes an `ECO` request line by the nets its edits name.  The script
/// is parsed here only for routing; the owning shard's executor re-parses
/// and renders, so malformed scripts produce the executor's own error
/// text (against shard 0).
fn route_eco(shared: &Shared, script: &str) -> EcoRoute {
    let edits = match parse_eco_script_line(1, script) {
        Ok(ScriptLine::Edits(edits)) => edits,
        // Parse errors, blank scripts, and `quit` go to shard 0.
        _ => return EcoRoute::Shard(0),
    };
    let mut target: Option<usize> = None;
    for se in &edits {
        let Some(&shard) = shared.router.get(&se.edit.net) else {
            continue;
        };
        match target {
            None => target = Some(shard),
            Some(t) if t != shard => return EcoRoute::Reject(t.min(shard), t.max(shard)),
            Some(_) => {}
        }
    }
    EcoRoute::Shard(target.unwrap_or(0))
}

/// The shard owning `net` (shard 0 for unknown nets, which every shard
/// rejects identically).
fn route_net(shared: &Shared, net: &str) -> usize {
    shared.router.get(net).copied().unwrap_or(0)
}

/// Loads one consistent `(snapshot, revision)` pair per shard.  Each
/// pair is internally consistent; the vector as a whole names exactly
/// which published shard states a composed response read.
fn load_all(shared: &Shared) -> (Vec<Arc<DesignSnapshot>>, Vec<u64>) {
    let mut snapshots = Vec::with_capacity(shared.shards.len());
    let mut revs = Vec::with_capacity(shared.shards.len());
    for shard in &shared.shards {
        let (snapshot, rev) = shard.store.load();
        snapshots.push(snapshot);
        revs.push(rev);
    }
    (snapshots, revs)
}

/// Runs one `ECO` request on shard `s`: serializes on that shard's
/// writer lock only, publishes into that shard's store, and logs into
/// that shard's audit log.
fn exec_eco_on(shared: &Shared, s: usize, script: &str) -> Vec<String> {
    let shard = &shared.shards[s];
    let mut executor = lock(&shard.writer);
    let (lines, counts) = executor.exec_eco(
        script,
        &mut |snapshot, rev| shard.store.publish(Arc::clone(snapshot), rev),
        &mut |summary| lock(&shard.eco_log).push(summary.to_string()),
    );
    // Only the per-shard counters are written; the `STATS` globals are
    // derived by summing them at render time, so they cannot drift.
    shard.applied.add(counts.applied);
    shard.skipped.add(counts.skipped);
    lines
}

/// The wire verb of a parsed request, for per-verb counters and span
/// attributes.  `METRICS`/`TRACE` never reach this: they are intercepted
/// before the counted path.
fn verb_of(request: &Request) -> &'static str {
    match request {
        Request::Query { .. } => "QUERY",
        Request::Report { .. } => "REPORT",
        Request::Certify { .. } => "CERTIFY",
        Request::Stats => "STATS",
        Request::Eco { .. } => "ECO",
        Request::Quit => "QUIT",
        Request::Shutdown => "SHUTDOWN",
        Request::Metrics { .. } => "METRICS",
        Request::Trace { .. } => "TRACE",
    }
}

/// Parses one request line, serves it, writes the response block.
///
/// `METRICS` and `TRACE` are **self-excluding**: they are answered before
/// any counter moves or span opens, so a quiesced server answers repeated
/// scrapes byte-identically.  (`STATS` keeps counting itself, as it
/// always has.)  Every other parsed request bumps `rctree_requests_total`
/// and its per-verb counter, runs under a `serve.request` span, and
/// records its response bytes and handling duration after the flush.
fn respond(line: &str, shared: &Shared, out: &mut impl Write) -> io::Result<After> {
    let sharded = shared.shards.len() > 1;
    let mut after = After::Continue;
    let parsed = match protocol::parse_request(line) {
        Ok(Some(Request::Metrics { stable })) => {
            for line in render_metrics(shared, stable, sharded) {
                writeln!(out, "{line}")?;
            }
            out.flush()?;
            return Ok(After::Continue);
        }
        Ok(Some(Request::Trace { n })) => {
            for line in render_trace(shared, n, sharded) {
                writeln!(out, "{line}")?;
            }
            out.flush()?;
            return Ok(After::Continue);
        }
        other => other,
    };
    let started = Instant::now();
    let mut verb: Option<&'static str> = None;
    let mut span = rctree_obs::Span::disabled();
    let block = match parsed {
        // Blank lines get no response at all.
        Ok(None) => return Ok(After::Continue),
        Err(message) => {
            shared.stats.protocol_errors.bump();
            let message = format!("bad request: {message}");
            Block::Owned(vec![if sharded {
                let (_, revs) = load_all(shared);
                protocol::err_revs(&revs, &message)
            } else {
                protocol::err_line(shared.shards[0].store.load().1, &message)
            }])
        }
        Ok(Some(request)) => {
            shared.stats.requests.bump();
            let v = verb_of(&request);
            verb = Some(v);
            span = rctree_obs::span("serve.request");
            span.attr_str("verb", v);
            match request {
                Request::Query {
                    net,
                    node,
                    corner,
                    sens,
                } => {
                    let s = route_net(shared, &net);
                    let shard = &shared.shards[s];
                    let (snapshot, rev) = shard.store.load();
                    span.attr_u64("shard", s as u64);
                    span.attr_u64("rev", rev);
                    Block::Owned(protocol::render_query(
                        &snapshot,
                        rev,
                        &net,
                        node.as_deref(),
                        corner.as_deref(),
                        sens,
                    ))
                }
                Request::Report { corner } => {
                    let (snapshots, revs) = load_all(shared);
                    if span.is_live() {
                        span.attr_str("rev", protocol::rev_csv(&revs));
                    }
                    let (lines, hit) = shared.reports.rendered(&revs, corner.as_deref(), || {
                        if sharded {
                            protocol::render_report_composed(&snapshots, &revs, corner.as_deref())
                        } else {
                            protocol::render_report(&snapshots[0], revs[0], corner.as_deref())
                        }
                    });
                    if hit {
                        shared.stats.report_cache_hits.bump();
                        for shard in &shared.shards {
                            shard.report_cache_hits.bump();
                        }
                    }
                    span.attr_u64("cache_hit", u64::from(hit));
                    Block::Cached(lines)
                }
                Request::Certify { budget, over } => {
                    let (snapshots, revs) = load_all(shared);
                    if span.is_live() {
                        span.attr_str("rev", protocol::rev_csv(&revs));
                    }
                    Block::Owned(match over {
                        Some(over) if sharded => {
                            protocol::render_certify_over_composed(&snapshots, &revs, budget, &over)
                        }
                        Some(over) => {
                            protocol::render_certify_over(&snapshots[0], revs[0], budget, &over)
                        }
                        None if sharded => {
                            protocol::render_certify_composed(&snapshots, &revs, budget)
                        }
                        None => protocol::render_certify(&snapshots[0], revs[0], budget),
                    })
                }
                Request::Stats => Block::Owned(render_stats(shared)),
                Request::Quit => {
                    after = After::Close;
                    Block::Owned(vec![final_ok(shared, sharded)])
                }
                Request::Shutdown => {
                    after = After::Close;
                    shared.shutdown.store(true, Ordering::SeqCst);
                    Block::Owned(vec![final_ok(shared, sharded)])
                }
                Request::Eco { script } => match route_eco(shared, &script) {
                    EcoRoute::Shard(s) => {
                        span.attr_u64("shard", s as u64);
                        Block::Owned(exec_eco_on(shared, s, &script))
                    }
                    EcoRoute::Reject(a, b) => {
                        let (_, revs) = load_all(shared);
                        Block::Owned(vec![protocol::err_revs(
                            &revs,
                            &format!("ECO spans shards {a} and {b}; split the request"),
                        )])
                    }
                },
                Request::Metrics { .. } | Request::Trace { .. } => {
                    unreachable!("intercepted before the counted path")
                }
            }
        }
    };
    let mut bytes = 0u64;
    for line in block.lines() {
        writeln!(out, "{line}")?;
        bytes += line.len() as u64 + 1;
    }
    out.flush()?;
    if let Some(verb) = verb {
        let dur_us = started.elapsed().as_micros() as u64;
        span.attr_u64("bytes", bytes);
        drop(span);
        if let Some(vs) = shared.verbs.get(verb) {
            vs.requests.bump();
            vs.bytes.add(bytes);
            vs.duration_us.record(dur_us);
        }
        if let Some(threshold) = shared.slow_us {
            if dur_us > threshold {
                eprintln!("rctree-serve: slow request verb={verb} us={dur_us} line={line}");
            }
        }
    }
    Ok(after)
}

/// The bare `OK rev …` line of `QUIT`/`SHUTDOWN`: scalar when unsharded,
/// the revision vector otherwise.
fn final_ok(shared: &Shared, sharded: bool) -> String {
    if sharded {
        let (_, revs) = load_all(shared);
        protocol::ok_revs(&revs)
    } else {
        protocol::ok_line(shared.shards[0].store.load().1)
    }
}

/// The `STATS` response block.
///
/// The arena byte sizes come from the live designs behind the writer
/// locks (a size probe, not an analysis); like every other counter here
/// they are *not* part of the deterministic response surface.  The
/// sharded fields (`shards`, `routing_table`, `shard_revs`,
/// `shard_applied`, `shard_skipped`, `shard_report_cache_hits`) are
/// appended after the pre-sharding fields, so unsharded output stays a
/// superset-compatible extension of the old line.
fn render_stats(shared: &Shared) -> Vec<String> {
    let (snapshots, revs) = load_all(shared);
    let mut nets = 0;
    let mut instances = 0;
    let mut endpoints = 0;
    for snapshot in &snapshots {
        nets += snapshot.net_count();
        instances += snapshot.instance_count();
        endpoints += snapshot.report().endpoints.len();
    }
    let (mut arena_base, mut arena_corner) = (0, 0);
    for shard in &shared.shards {
        let (base, corner) = lock(&shard.writer).arena_bytes();
        arena_base += base;
        arena_corner += corner;
    }
    let csv = |get: &dyn Fn(&Shard) -> u64| {
        shared
            .shards
            .iter()
            .map(|s| get(s).to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    // The eco globals are sums over the per-shard registry counters —
    // derived, not separately maintained, so `STATS` and `METRICS` agree
    // by construction.
    let eco_applied: u64 = shared.shards.iter().map(|s| s.applied.get()).sum();
    let eco_skipped: u64 = shared.shards.iter().map(|s| s.skipped.get()).sum();
    let final_line = if shared.shards.len() > 1 {
        format!(
            "{}{}",
            protocol::ok_revs(&revs),
            protocol::corner_tail(&snapshots[0])
        )
    } else {
        format!(
            "{}{}",
            protocol::ok_line(revs[0]),
            protocol::corner_tail(&snapshots[0])
        )
    };
    vec![
        format!(
            "stats nets {} instances {} endpoints {} revision {} corners {} arena_base_bytes {} \
             arena_corner_bytes {} connections {} requests {} queries {} eco_applied {} \
             eco_skipped {} report_cache_hits {} shards {} routing_table {} shard_revs {} \
             shard_applied {} shard_skipped {} shard_report_cache_hits {}",
            nets,
            instances,
            endpoints,
            protocol::rev_csv(&revs),
            snapshots[0].corner_count(),
            arena_base,
            arena_corner,
            shared.stats.connections.get(),
            shared.stats.requests.get(),
            shared.stats.queries.get(),
            eco_applied,
            eco_skipped,
            shared.stats.report_cache_hits.get(),
            shared.shards.len(),
            shared.router.len(),
            protocol::rev_csv(&revs),
            csv(&|s| s.applied.get()),
            csv(&|s| s.skipped.get()),
            csv(&|s| s.report_cache_hits.get()),
        ),
        final_line,
    ]
}

/// The `METRICS [stable]` response block: the design-shape gauges are
/// refreshed from the published snapshots (the same size probe `STATS`
/// does), then the whole registry is rendered.  Nothing in here moves a
/// counter or opens a span, so a quiesced server answers repeated
/// scrapes byte-identically; with `stable` the volatile (wall-clock)
/// families are skipped and the text is additionally byte-identical
/// across `RCTREE_JOBS` for the same request history.
fn render_metrics(shared: &Shared, stable_only: bool, sharded: bool) -> Vec<String> {
    let (snapshots, revs) = load_all(shared);
    let mut nets = 0i64;
    let mut instances = 0i64;
    let mut endpoints = 0i64;
    for snapshot in &snapshots {
        nets += snapshot.net_count() as i64;
        instances += snapshot.instance_count() as i64;
        endpoints += snapshot.report().endpoints.len() as i64;
    }
    let (mut arena_base, mut arena_corner) = (0i64, 0i64);
    for shard in &shared.shards {
        let (base, corner) = lock(&shard.writer).arena_bytes();
        arena_base += base as i64;
        arena_corner += corner as i64;
    }
    shared.gauges.nets.set(nets);
    shared.gauges.instances.set(instances);
    shared.gauges.endpoints.set(endpoints);
    shared
        .gauges
        .corners
        .set(snapshots[0].corner_count() as i64);
    shared.gauges.arena_base_bytes.set(arena_base);
    shared.gauges.arena_corner_bytes.set(arena_corner);
    for (gauge, rev) in shared.gauges.shard_revision.iter().zip(&revs) {
        gauge.set(*rev as i64);
    }
    let text = shared.obs.registry().expose(stable_only);
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    lines.push(final_ok(shared, sharded));
    lines
}

/// The `TRACE <n>` response block: the most recent `n` finished spans,
/// oldest first, one `span …` line each.  Like `METRICS`, serving it
/// moves no counters and opens no span.
fn render_trace(shared: &Shared, n: usize, sharded: bool) -> Vec<String> {
    let mut lines: Vec<String> = shared
        .obs
        .ring()
        .recent(n)
        .iter()
        .map(|r| r.render())
        .collect();
    lines.push(final_ok(shared, sharded));
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_ramps_doubling_to_the_cap_and_resets_to_the_floor() {
        let mut b = Backoff::new(Duration::from_millis(1), Duration::from_millis(25));
        assert_eq!(b.current(), Duration::from_millis(1));
        let ramp: Vec<u64> =
            std::iter::from_fn(|| b.backoff().then(|| b.current().as_millis() as u64)).collect();
        assert_eq!(ramp, vec![2, 4, 8, 16, 25]);
        // Saturated: further idle rounds change nothing.
        assert!(!b.backoff());
        assert_eq!(b.current(), Duration::from_millis(25));
        // Activity snaps back to the floor, once.
        assert!(b.reset());
        assert_eq!(b.current(), Duration::from_millis(1));
        assert!(!b.reset());
    }

    #[test]
    fn backoff_clamps_degenerate_ranges() {
        // Floor above the cap collapses to the cap.
        let mut b = Backoff::new(Duration::from_millis(50), Duration::from_millis(25));
        assert_eq!(b.current(), Duration::from_millis(25));
        assert!(!b.backoff());
        // Zero floor is raised so the ramp makes progress.
        let mut b = Backoff::new(Duration::ZERO, Duration::from_millis(25));
        assert_eq!(b.current(), Duration::from_micros(1));
        assert!(b.backoff());
        assert_eq!(b.current(), Duration::from_micros(2));
        assert_eq!(Backoff::server_default().current(), DEFAULT_POLL_FLOOR);
    }
}
