//! The snapshot store, the rendered-report cache and the server counters.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

use rctree_obs::{Counter, Registry, Stability};
use rctree_sta::DesignSnapshot;

/// The published `(snapshot, revision)` pair readers serve from.
///
/// Readers take the read lock only long enough to clone an `Arc` (a
/// refcount bump), writers the write lock only long enough to swap the
/// pair — the critical sections are a few nanoseconds, so readers
/// effectively never block and never observe a torn state.  A true
/// lock-free `AtomicArc` swap would need `unsafe` (or an external crate),
/// both of which this workspace forbids; the `RwLock`-around-`Arc` pattern
/// is the safe-Rust equivalent with the same publication semantics:
/// every reader sees some committed prefix of the edit stream, and a
/// snapshot handed out keeps serving consistently however many edits land
/// after it.
#[derive(Debug)]
pub struct SnapshotStore {
    inner: RwLock<(Arc<DesignSnapshot>, u64)>,
}

impl SnapshotStore {
    /// Creates a store publishing `snapshot` as revision 0.
    pub fn new(snapshot: Arc<DesignSnapshot>) -> Self {
        SnapshotStore {
            inner: RwLock::new((snapshot, 0)),
        }
    }

    /// Loads the current `(snapshot, revision)` pair.
    pub fn load(&self) -> (Arc<DesignSnapshot>, u64) {
        match self.inner.read() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// Atomically publishes a successor snapshot.
    pub fn publish(&self, snapshot: Arc<DesignSnapshot>, revision: u64) {
        let mut guard = match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        *guard = (snapshot, revision);
    }
}

/// Per-revision(-vector) cache of rendered `REPORT` response blocks,
/// keyed by the raw `--corner` selector (`None` for the plain verb).
/// Rendering a [`rctree_sta::TimingReport`] walks and formats every
/// endpoint, which dwarfs the cost of writing the already-rendered lines
/// on big decks — and between edits every `REPORT` for the same selector
/// is byte-identical by construction, so the block is rendered once per
/// `(revision vector, selector)` and shared via `Arc` after that.  On a
/// sharded store the key is the full per-shard revision vector: an edit
/// on **any** shard drops the whole entry set, so the cache never serves
/// a superseded shard snapshot's rendering.
#[derive(Debug, Default)]
pub struct RenderedReportCache {
    inner: Mutex<ReportCacheState>,
}

#[derive(Debug, Default)]
struct ReportCacheState {
    revisions: Vec<u64>,
    rendered: HashMap<Option<String>, Arc<Vec<String>>>,
}

impl RenderedReportCache {
    /// The rendered `REPORT` block for `(revision vector, selector)`,
    /// rendering it with `render` on a miss.  Returns the shared block
    /// and whether it was a cache hit.
    pub fn rendered(
        &self,
        revisions: &[u64],
        corner: Option<&str>,
        render: impl FnOnce() -> Vec<String>,
    ) -> (Arc<Vec<String>>, bool) {
        let mut cache = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if cache.revisions != revisions {
            cache.revisions = revisions.to_vec();
            cache.rendered.clear();
        }
        if let Some(block) = cache.rendered.get(&corner.map(str::to_string)) {
            return (Arc::clone(block), true);
        }
        let block = Arc::new(render());
        cache
            .rendered
            .insert(corner.map(str::to_string), Arc::clone(&block));
        (block, false)
    }
}

/// Monotone server counters, shown by the `STATS` verb.  They are
/// schedule-dependent (how many queries raced ahead of an edit), so they
/// are deliberately *not* part of the deterministic response surface the
/// equivalence tests pin.
///
/// Since the observability PR these are **handles into the server's
/// [`rctree_obs::Registry`]** rather than standalone atomics: `STATS` and
/// the `METRICS` exposition read the same cells, so the two surfaces can
/// never disagree.  The shard-scoped tallies (applied/skipped/cache hits
/// per writer shard) live on the shards themselves, registered under
/// `rctree_shard_*` with a `shard` label; the `STATS` globals are derived
/// by summing them at render time.
#[derive(Debug)]
pub struct ServerStats {
    /// Connections accepted since start (`rctree_connections_total`).
    pub connections: Arc<Counter>,
    /// Requests parsed, excluding blank lines and the self-excluded
    /// `METRICS`/`TRACE` scrapes (`rctree_requests_total`).
    pub requests: Arc<Counter>,
    /// `QUERY` requests served — the same series as
    /// `rctree_requests_verb_total{verb="QUERY"}`.
    pub queries: Arc<Counter>,
    /// `REPORT` responses served from the per-revision rendered cache
    /// (`rctree_report_cache_hits_total`; a composed report counts once
    /// here and once per shard).
    pub report_cache_hits: Arc<Counter>,
    /// Request lines rejected by the protocol parser
    /// (`rctree_protocol_errors_total`).
    pub protocol_errors: Arc<Counter>,
}

impl ServerStats {
    /// Registers the counter families on `registry` and returns the
    /// handles.  Every family is `Stable`: the values depend only on the
    /// request stream, never on wall-clock time or worker count.
    pub fn new(registry: &Registry) -> ServerStats {
        ServerStats {
            connections: registry.counter("rctree_connections_total", Stability::Stable, &[]),
            requests: registry.counter("rctree_requests_total", Stability::Stable, &[]),
            queries: registry.counter(
                "rctree_requests_verb_total",
                Stability::Stable,
                &[("verb", "QUERY")],
            ),
            report_cache_hits: registry.counter(
                "rctree_report_cache_hits_total",
                Stability::Stable,
                &[],
            ),
            protocol_errors: registry.counter(
                "rctree_protocol_errors_total",
                Stability::Stable,
                &[],
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_share_series_with_the_registry() {
        let registry = Registry::new();
        let stats = ServerStats::new(&registry);
        stats.queries.bump();
        stats.connections.add(3);
        assert_eq!(stats.queries.get(), 1);
        assert_eq!(stats.connections.get(), 3);
        // The `queries` handle *is* the per-verb QUERY series: bumping one
        // moves the other, so STATS and METRICS cannot disagree.
        let per_verb = registry.counter(
            "rctree_requests_verb_total",
            Stability::Stable,
            &[("verb", "QUERY")],
        );
        per_verb.bump();
        assert_eq!(stats.queries.get(), 2);
        let text = registry.expose(false);
        assert!(text.contains("rctree_requests_verb_total{verb=\"QUERY\"} 2\n"));
        assert!(text.contains("rctree_connections_total 3\n"));
    }
}
