//! The snapshot store, the rendered-report cache and the server counters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use rctree_sta::DesignSnapshot;

/// The published `(snapshot, revision)` pair readers serve from.
///
/// Readers take the read lock only long enough to clone an `Arc` (a
/// refcount bump), writers the write lock only long enough to swap the
/// pair — the critical sections are a few nanoseconds, so readers
/// effectively never block and never observe a torn state.  A true
/// lock-free `AtomicArc` swap would need `unsafe` (or an external crate),
/// both of which this workspace forbids; the `RwLock`-around-`Arc` pattern
/// is the safe-Rust equivalent with the same publication semantics:
/// every reader sees some committed prefix of the edit stream, and a
/// snapshot handed out keeps serving consistently however many edits land
/// after it.
#[derive(Debug)]
pub struct SnapshotStore {
    inner: RwLock<(Arc<DesignSnapshot>, u64)>,
}

impl SnapshotStore {
    /// Creates a store publishing `snapshot` as revision 0.
    pub fn new(snapshot: Arc<DesignSnapshot>) -> Self {
        SnapshotStore {
            inner: RwLock::new((snapshot, 0)),
        }
    }

    /// Loads the current `(snapshot, revision)` pair.
    pub fn load(&self) -> (Arc<DesignSnapshot>, u64) {
        match self.inner.read() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// Atomically publishes a successor snapshot.
    pub fn publish(&self, snapshot: Arc<DesignSnapshot>, revision: u64) {
        let mut guard = match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        *guard = (snapshot, revision);
    }
}

/// Per-revision(-vector) cache of rendered `REPORT` response blocks,
/// keyed by the raw `--corner` selector (`None` for the plain verb).
/// Rendering a [`rctree_sta::TimingReport`] walks and formats every
/// endpoint, which dwarfs the cost of writing the already-rendered lines
/// on big decks — and between edits every `REPORT` for the same selector
/// is byte-identical by construction, so the block is rendered once per
/// `(revision vector, selector)` and shared via `Arc` after that.  On a
/// sharded store the key is the full per-shard revision vector: an edit
/// on **any** shard drops the whole entry set, so the cache never serves
/// a superseded shard snapshot's rendering.
#[derive(Debug, Default)]
pub struct RenderedReportCache {
    inner: Mutex<ReportCacheState>,
}

#[derive(Debug, Default)]
struct ReportCacheState {
    revisions: Vec<u64>,
    rendered: HashMap<Option<String>, Arc<Vec<String>>>,
}

impl RenderedReportCache {
    /// The rendered `REPORT` block for `(revision vector, selector)`,
    /// rendering it with `render` on a miss.  Returns the shared block
    /// and whether it was a cache hit.
    pub fn rendered(
        &self,
        revisions: &[u64],
        corner: Option<&str>,
        render: impl FnOnce() -> Vec<String>,
    ) -> (Arc<Vec<String>>, bool) {
        let mut cache = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if cache.revisions != revisions {
            cache.revisions = revisions.to_vec();
            cache.rendered.clear();
        }
        if let Some(block) = cache.rendered.get(&corner.map(str::to_string)) {
            return (Arc::clone(block), true);
        }
        let block = Arc::new(render());
        cache
            .rendered
            .insert(corner.map(str::to_string), Arc::clone(&block));
        (block, false)
    }
}

/// Monotone server counters, shown by the `STATS` verb.  They are
/// schedule-dependent (how many queries raced ahead of an edit), so they
/// are deliberately *not* part of the deterministic response surface the
/// equivalence tests pin.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted since start.
    pub connections: AtomicU64,
    /// Requests parsed (excluding blank lines).
    pub requests: AtomicU64,
    /// `QUERY` requests served.
    pub queries: AtomicU64,
    /// ECO directives applied (committed edits).
    pub eco_applied: AtomicU64,
    /// ECO directives skipped (rejected by validation or re-timing).
    pub eco_skipped: AtomicU64,
    /// `REPORT` responses served from the per-revision rendered cache.
    pub report_cache_hits: AtomicU64,
}

impl ServerStats {
    /// Relaxed increment — the counters are stand-alone monotone tallies.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed add.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Relaxed read.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_count() {
        let stats = ServerStats::default();
        ServerStats::bump(&stats.queries);
        ServerStats::add(&stats.eco_applied, 3);
        assert_eq!(ServerStats::get(&stats.queries), 1);
        assert_eq!(ServerStats::get(&stats.eco_applied), 3);
        assert_eq!(ServerStats::get(&stats.connections), 0);
    }
}
