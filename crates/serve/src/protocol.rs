//! The wire protocol: request grammar and response rendering.
//!
//! Requests are single text lines; responses are blocks of zero or more
//! payload lines terminated by exactly one final line beginning with
//! `OK rev <r>` or `ERR rev <r> <message>` (see `crates/serve/README.md`
//! for the full grammar).  The revision `r` names the snapshot the
//! response was computed against, which is what makes every response
//! *attributable*: a client (or a test oracle) can replay the server's
//! accepted-edit order to revision `r` and re-derive the response
//! byte-for-byte.
//!
//! Rendering lives here as pure functions over a [`DesignSnapshot`] so the
//! connection handlers and the serial-oracle equivalence tests share one
//! formatter — the equivalence pinned by `tests/server_sessions.rs` is
//! then exactly the concurrency model (which snapshot a response saw), not
//! accidental formatting drift.

use std::sync::Arc;

use rctree_core::algebra::parse_scale_range;
use rctree_core::cert::Certification;
use rctree_core::units::Seconds;
use rctree_sta::{BoxCertification, DesignSnapshot, Load, TimingReport};

/// A continuum certification box over the global wire scales: the operand
/// of `CERTIFY <budget> --over r <lo..hi> [c <lo..hi>]`.  The `c` range
/// defaults to the nominal point `(1, 1)` when omitted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleBox {
    /// `r_scale` range (both ends positive and finite, `lo ≤ hi`).
    pub r: (f64, f64),
    /// `c_scale` range (both ends positive and finite, `lo ≤ hi`).
    pub c: (f64, f64),
}

/// The counted wire verbs, in wire spelling — the per-verb metric series
/// (`rctree_requests_verb_total{verb=…}` and friends) are registered for
/// exactly this set at server start, so the exposition carries every verb
/// from the first scrape.  `METRICS` and `TRACE` are deliberately absent:
/// scraping is self-excluding and moves no counters.
pub const VERBS: [&str; 7] = [
    "QUERY", "REPORT", "ECO", "CERTIFY", "STATS", "QUIT", "SHUTDOWN",
];

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `QUERY <net> [node] [--corner <k|name>] [--sens]` — cached sink
    /// windows of a net, or on-demand characteristic times and delay
    /// bounds at one interconnect node, in the selected timing corner
    /// (nominal when omitted).  `--sens` additionally reports the exact
    /// polynomial sensitivities `dT/dr`, `dT/dc` of the node's upper
    /// bound at nominal; it requires a node and cannot be combined with
    /// `--corner`.
    Query {
        /// Net name.
        net: String,
        /// Optional node name within the net's interconnect.
        node: Option<String>,
        /// Optional corner selector: a lane index or a corner name.
        corner: Option<String>,
        /// Whether to append the nominal wire-scale sensitivities.
        sens: bool,
    },
    /// `REPORT [--corner <k|name|worst>]` — the full design timing report
    /// of one corner (nominal when omitted, `worst` for the smallest-slack
    /// lane against the server budget).
    Report {
        /// Optional corner selector: a lane index, a corner name, or
        /// `worst`.
        corner: Option<String>,
    },
    /// `ECO <edit-script-line>` — one edit-script line (the `rcdelay eco`
    /// grammar; several `;`-separated directives allowed).
    Eco {
        /// The raw script line (everything after the verb).
        script: String,
    },
    /// `CERTIFY <budget-seconds> [--over r <lo..hi> [c <lo..hi>]]` —
    /// three-valued certification against an arbitrary budget; with
    /// `--over`, certified over the whole continuum box of global wire
    /// scales via the symbolic polynomial lane (the exact worst point in
    /// the box is reported, not a sampling).
    Certify {
        /// Required arrival time in seconds.
        budget: f64,
        /// Optional continuum certification box.
        over: Option<ScaleBox>,
    },
    /// `STATS` — server counters (not part of the deterministic surface).
    Stats,
    /// `METRICS [stable]` — the observability registry as Prometheus-style
    /// text.  The full exposition is byte-stable across repeated scrapes of
    /// a quiesced server; `METRICS stable` additionally drops the
    /// wall-clock-valued (volatile) families, leaving only series that are
    /// byte-identical across `RCTREE_JOBS` for the same workload.  Scraping
    /// is self-excluding: a `METRICS`/`TRACE` request moves no counter.
    Metrics {
        /// Whether to emit only the deterministic (stable) subset.
        stable: bool,
    },
    /// `TRACE <n>` — the most recent `n` finished spans as one-line
    /// records (diagnostic; not part of the deterministic surface).
    Trace {
        /// Maximum number of spans to return.
        n: usize,
    },
    /// `QUIT` — close this connection.
    Quit,
    /// `SHUTDOWN` — stop the whole server (connections drain, the
    /// listener closes).
    Shutdown,
}

/// Parses one request line.  Returns `Ok(None)` for blank lines (they get
/// no response), `Err(message)` for malformed requests.
///
/// Verbs are case-insensitive; net and node names are case-sensitive.
pub fn parse_request(line: &str) -> Result<Option<Request>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    let verb = trimmed.split_whitespace().next().expect("non-empty");
    let rest = trimmed[verb.len()..].trim();
    let mut args: Vec<&str> = rest.split_whitespace().collect();
    let exact = |args: &[&str], want: usize, usage: &str| -> Result<(), String> {
        if args.len() == want {
            Ok(())
        } else {
            Err(format!("`{verb}` takes {usage}"))
        }
    };
    // Pulls a trailing-or-anywhere `--corner <value>` out of the argument
    // list, so positional arguments parse the same with or without it.
    let take_corner = |args: &mut Vec<&str>| -> Result<Option<String>, String> {
        match args.iter().position(|a| *a == "--corner") {
            None => Ok(None),
            Some(i) if i + 1 < args.len() => {
                let value = args.remove(i + 1).to_string();
                args.remove(i);
                Ok(Some(value))
            }
            Some(_) => Err(format!("`{verb}`: --corner takes a value")),
        }
    };
    // Pulls an `--over r <lo..hi> [c <lo..hi>]` clause out of the argument
    // list.  Ranges use the core scale-range grammar (`parse_scale_range`).
    let take_over = |args: &mut Vec<&str>| -> Result<Option<ScaleBox>, String> {
        let Some(i) = args.iter().position(|a| *a == "--over") else {
            return Ok(None);
        };
        let usage = || format!("`{verb}`: --over takes `r <lo..hi> [c <lo..hi>]`");
        if args.len() < i + 3 || args[i + 1] != "r" {
            return Err(usage());
        }
        let r = parse_scale_range(args[i + 2]).map_err(|e| format!("`{verb}`: {e}"))?;
        let mut consumed = 3;
        let c = if args.len() > i + 3 && args[i + 3] == "c" {
            if args.len() < i + 5 {
                return Err(usage());
            }
            consumed = 5;
            parse_scale_range(args[i + 4]).map_err(|e| format!("`{verb}`: {e}"))?
        } else {
            (1.0, 1.0)
        };
        args.drain(i..i + consumed);
        Ok(Some(ScaleBox { r, c }))
    };
    // Pulls a bare flag out of the argument list.
    let take_flag = |args: &mut Vec<&str>, flag: &str| -> bool {
        match args.iter().position(|a| *a == flag) {
            Some(i) => {
                args.remove(i);
                true
            }
            None => false,
        }
    };
    match verb.to_ascii_uppercase().as_str() {
        "QUERY" => {
            let corner = take_corner(&mut args)?;
            let sens = take_flag(&mut args, "--sens");
            if sens && corner.is_some() {
                return Err("`QUERY`: --sens cannot be combined with --corner \
                            (sensitivities are nominal wire-scale derivatives)"
                    .into());
            }
            match args.as_slice() {
                [_net] if sens => Err("`QUERY`: --sens requires a node".into()),
                [net] => Ok(Some(Request::Query {
                    net: (*net).to_string(),
                    node: None,
                    corner,
                    sens,
                })),
                [net, node] => Ok(Some(Request::Query {
                    net: (*net).to_string(),
                    node: Some((*node).to_string()),
                    corner,
                    sens,
                })),
                _ => Err("`QUERY` takes <net> [node] [--corner <k|name>] [--sens]".into()),
            }
        }
        "REPORT" => {
            let corner = take_corner(&mut args)?;
            exact(&args, 0, "[--corner <k|name|worst>]")?;
            Ok(Some(Request::Report { corner }))
        }
        "ECO" => {
            if rest.is_empty() {
                Err("`ECO` takes an edit-script line".into())
            } else {
                Ok(Some(Request::Eco {
                    script: rest.to_string(),
                }))
            }
        }
        "CERTIFY" => {
            let over = take_over(&mut args)?;
            exact(
                &args,
                1,
                "<budget-seconds> [--over r <lo..hi> [c <lo..hi>]]",
            )?;
            let budget = args[0]
                .parse::<f64>()
                .ok()
                .filter(|v| v.is_finite())
                .ok_or_else(|| format!("`CERTIFY`: `{}` is not a finite number", args[0]))?;
            Ok(Some(Request::Certify { budget, over }))
        }
        "STATS" => {
            exact(&args, 0, "no arguments")?;
            Ok(Some(Request::Stats))
        }
        "METRICS" => match args.as_slice() {
            [] => Ok(Some(Request::Metrics { stable: false })),
            [only] if only.eq_ignore_ascii_case("stable") => {
                Ok(Some(Request::Metrics { stable: true }))
            }
            _ => Err("`METRICS` takes [stable]".into()),
        },
        "TRACE" => {
            exact(&args, 1, "<count>")?;
            let n = args[0]
                .parse::<usize>()
                .map_err(|_| format!("`TRACE`: `{}` is not a span count", args[0]))?;
            Ok(Some(Request::Trace { n }))
        }
        "QUIT" => {
            exact(&args, 0, "no arguments")?;
            Ok(Some(Request::Quit))
        }
        "SHUTDOWN" => {
            exact(&args, 0, "no arguments")?;
            Ok(Some(Request::Shutdown))
        }
        // Report the verb as the client typed it, not the case-folded
        // match key.
        _ => Err(format!("unknown verb `{verb}`")),
    }
}

/// The success terminator of a response block.
pub fn ok_line(rev: u64) -> String {
    format!("OK rev {rev}")
}

/// The failure terminator of a response block.
pub fn err_line(rev: u64, message: &str) -> String {
    format!("ERR rev {rev} {message}")
}

/// Whether a line terminates a response block.
pub fn is_final(line: &str) -> bool {
    line.starts_with("OK ") || line.starts_with("ERR ") || line == "OK" || line == "ERR"
}

/// Extracts the revision from a **scalar** final line (`OK rev <r>` /
/// `ERR rev <r> …`).  Multi-shard responses carry a revision vector on
/// their final line; use [`final_revisions`] for those.
pub fn final_revision(line: &str) -> Option<u64> {
    let mut tokens = line.split_whitespace();
    let status = tokens.next()?;
    if status != "OK" && status != "ERR" {
        return None;
    }
    if tokens.next()? != "rev" {
        return None;
    }
    tokens.next()?.parse().ok()
}

/// The comma-joined revision vector of a sharded response's final line.
/// A scalar revision is a one-element vector, so single-shard lines parse
/// too.
pub fn rev_csv(revs: &[u64]) -> String {
    let mut out = String::new();
    for (i, rev) in revs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&rev.to_string());
    }
    out
}

/// The success terminator of a cross-shard response block:
/// `OK rev <r0,r1,…>`.
pub fn ok_revs(revs: &[u64]) -> String {
    format!("OK rev {}", rev_csv(revs))
}

/// The failure terminator of a cross-shard response block.
pub fn err_revs(revs: &[u64], message: &str) -> String {
    format!("ERR rev {} {}", rev_csv(revs), message)
}

/// Extracts the revision vector from a final line — `OK rev <r0,r1,…>` or
/// the scalar form (a one-element vector).  `None` for non-final lines or
/// a malformed vector.
pub fn final_revisions(line: &str) -> Option<Vec<u64>> {
    let mut tokens = line.split_whitespace();
    let status = tokens.next()?;
    if status != "OK" && status != "ERR" {
        return None;
    }
    if tokens.next()? != "rev" {
        return None;
    }
    tokens.next()?.split(',').map(|t| t.parse().ok()).collect()
}

/// The ` corners <name,...>` tail appended to data-bearing `OK` lines of
/// multi-corner decks.  Empty for nominal-only decks, so their responses
/// stay byte-identical to the single-corner protocol (`final_revision`
/// tolerates trailing tokens either way).
pub fn corner_tail(snapshot: &DesignSnapshot) -> String {
    match snapshot.corners() {
        Some(corners) => format!(" corners {}", corners.names_csv()),
        None => String::new(),
    }
}

/// The name of corner `k` (callers resolve `k` first, so it is in range).
fn corner_name(snapshot: &DesignSnapshot, k: usize) -> String {
    match snapshot.corners() {
        Some(corners) => corners.names()[k].clone(),
        None => "nominal".to_string(),
    }
}

/// The final `OK` line of a data-bearing response: revision, the selected
/// corner when one was requested explicitly, then the corner vector.
fn ok_selected(snapshot: &DesignSnapshot, rev: u64, selected: Option<usize>) -> String {
    let mut line = ok_line(rev);
    if let Some(k) = selected {
        line.push_str(&format!(" corner {k} {}", corner_name(snapshot, k)));
    }
    line.push_str(&corner_tail(snapshot));
    line
}

/// Resolves a `--corner` selector (lane index or corner name) against a
/// snapshot.  `worst` is only meaningful for `REPORT` and handled there.
fn resolve_corner(snapshot: &DesignSnapshot, token: &str) -> Result<usize, String> {
    let count = snapshot.corner_count();
    if let Ok(k) = token.parse::<usize>() {
        return if k < count {
            Ok(k)
        } else {
            Err(format!(
                "corner index {k} out of range (deck has {count} corner(s))"
            ))
        };
    }
    match snapshot.corners() {
        Some(corners) => corners
            .index_of(token)
            .ok_or_else(|| format!("unknown corner `{token}`")),
        None if token == "nominal" => Ok(0),
        None => Err(format!("unknown corner `{token}` (deck is nominal-only)")),
    }
}

/// Renders what a sink drives.
fn load_text(load: &Load) -> String {
    match load {
        Load::Instance(inst) => format!("inst {inst}"),
        Load::PrimaryOutput(po) => format!("po {po}"),
    }
}

/// Renders the response block of `QUERY <net> [node] [--corner <k|name>]
/// [--sens]` against one snapshot.  Sink and node lines have the same
/// shape in every corner; the selected corner is named on the final `OK`
/// line when one was requested explicitly.  With `sens`, a
/// `sens dT_dr … dT_dc …` payload line follows the node line — the exact
/// derivatives of the node's symbolic upper bound at the nominal scales.
pub fn render_query(
    snapshot: &DesignSnapshot,
    rev: u64,
    net: &str,
    node: Option<&str>,
    corner: Option<&str>,
    sens: bool,
) -> Vec<String> {
    let selected = match corner.map(|c| resolve_corner(snapshot, c)).transpose() {
        Ok(selected) => selected,
        Err(message) => return vec![err_line(rev, &message)],
    };
    let k = selected.unwrap_or(0);
    let Some(timing) = snapshot.net(net) else {
        return vec![err_line(rev, &format!("unknown net `{net}`"))];
    };
    match node {
        None => {
            let sinks = timing.sinks_at(k).expect("resolved corner is in range");
            let mut lines: Vec<String> = sinks
                .iter()
                .map(|s| {
                    format!(
                        "sink {} drives {} lower {:e} upper {:e}",
                        s.node,
                        load_text(&s.load),
                        s.lower.value(),
                        s.upper.value()
                    )
                })
                .collect();
            lines.push(ok_selected(snapshot, rev, selected));
            lines
        }
        Some(node) => match timing.node_times_at(node, snapshot.threshold(), k) {
            Ok((times, bounds)) => {
                let mut lines = vec![format!(
                    "node {node} t_p {:e} t_d {:e} t_r {:e} elmore {:e} lower {:e} upper {:e}",
                    times.t_p.value(),
                    times.t_d.value(),
                    times.t_r.value(),
                    times.elmore_delay().value(),
                    bounds.lower.value(),
                    bounds.upper.value()
                )];
                if sens {
                    match timing.node_sens(node, snapshot.threshold()) {
                        Ok((dr, dc)) => {
                            lines.push(format!("sens dT_dr {dr:e} dT_dc {dc:e}"));
                        }
                        Err(e) => return vec![err_line(rev, &format!("query failed: {e}"))],
                    }
                }
                lines.push(ok_selected(snapshot, rev, selected));
                lines
            }
            Err(e) => vec![err_line(rev, &format!("query failed: {e}"))],
        },
    }
}

/// Renders the response block of `REPORT [--corner <k|name|worst>]`: the
/// payload is exactly the [`rctree_sta::TimingReport`] display text of the
/// selected corner — byte-identical to what `rcdelay report` (with the
/// same `--corners` spec and `--corner` selector) prints offline for the
/// same design state.  `worst` picks the smallest-slack lane against the
/// snapshot's required time.
pub fn render_report(snapshot: &DesignSnapshot, rev: u64, corner: Option<&str>) -> Vec<String> {
    let selected = match corner {
        None => None,
        Some("worst") => Some(match snapshot.corners() {
            Some(corners) => corners.worst_against(snapshot.required_time()).0,
            None => 0,
        }),
        Some(token) => match resolve_corner(snapshot, token) {
            Ok(k) => Some(k),
            Err(message) => return vec![err_line(rev, &message)],
        },
    };
    let report = match selected {
        None | Some(0) => snapshot.report(),
        Some(k) => snapshot
            .corners()
            .and_then(|c| c.report(k))
            .expect("resolved corner is in range"),
    };
    let mut lines: Vec<String> = report.to_string().lines().map(str::to_string).collect();
    lines.push(ok_selected(snapshot, rev, selected));
    lines
}

/// Renders the response block of `CERTIFY <budget>`.
///
/// On a multi-corner deck the worst (smallest-slack) corner is named on
/// the certify line and the verdict is the conjunction over **all**
/// corners; nominal-only decks keep the single-corner line format.
pub fn render_certify(snapshot: &DesignSnapshot, rev: u64, budget: f64) -> Vec<String> {
    let required = Seconds::new(budget);
    let certify = match snapshot.corners() {
        Some(corners) => {
            let (worst, slack, verdict) = corners.worst_against(required);
            format!(
                "certify required {:e} worst_slack {:e} corner {} {}",
                budget,
                slack.value(),
                corners.names()[worst],
                verdict
            )
        }
        None => {
            let report = snapshot.report();
            format!(
                "certify required {:e} worst_slack {:e} {}",
                budget,
                report.slack_against(required).value(),
                report.certification_against(required)
            )
        }
    };
    vec![certify, ok_selected(snapshot, rev, None)]
}

/// The `certify … over …` payload line: box, exact worst point, slack and
/// verdict.  Range ends and the worst point print in Rust's shortest
/// round-trip form, so the reported point can be fed back verbatim (e.g.
/// into a materialized-corner spec) to reproduce the worst-case analysis.
fn over_line(budget: f64, over: &ScaleBox, cert: &BoxCertification, verdict: &str) -> String {
    format!(
        "certify required {:e} over r {:?}..{:?} c {:?}..{:?} worst_slack {:e} \
         worst at r={:?},c={:?} {}",
        budget,
        over.r.0,
        over.r.1,
        over.c.0,
        over.c.1,
        cert.worst_slack.value(),
        cert.at.0,
        cert.at.1,
        verdict
    )
}

/// The payload line of `CERTIFY <budget> --over …` against one snapshot:
/// the continuum certification of the symbolic polynomial lane over the
/// whole scale box.  Shared by the server renderer and the offline
/// `rcdelay certify-over` command, so the two surfaces are byte-identical
/// by construction.
pub fn certify_over_line(
    snapshot: &DesignSnapshot,
    budget: f64,
    over: &ScaleBox,
) -> Result<String, String> {
    let sym = snapshot
        .symbolic()
        .map_err(|e| format!("certify failed: {e}"))?;
    let cert = sym.certify_over(Seconds::new(budget), over.r, over.c);
    Ok(over_line(budget, over, &cert, &cert.verdict.to_string()))
}

/// Renders the response block of `CERTIFY <budget> --over …`.
pub fn render_certify_over(
    snapshot: &DesignSnapshot,
    rev: u64,
    budget: f64,
    over: &ScaleBox,
) -> Vec<String> {
    match certify_over_line(snapshot, budget, over) {
        Ok(line) => vec![line, ok_selected(snapshot, rev, None)],
        Err(message) => vec![err_line(rev, &message)],
    }
}

/// The final `OK` line of a composed (cross-shard) data-bearing response:
/// the revision vector, the selected corner when one was requested
/// explicitly, then the corner vector.  With one shard this is exactly
/// the scalar [`ok_selected`] line.
fn ok_selected_composed(lead: &DesignSnapshot, revs: &[u64], selected: Option<usize>) -> String {
    let mut line = ok_revs(revs);
    if let Some(k) = selected {
        line.push_str(&format!(" corner {k} {}", corner_name(lead, k)));
    }
    line.push_str(&corner_tail(lead));
    line
}

/// The corner-`k` report of one shard snapshot (`k` resolved, in range).
fn corner_report(snapshot: &DesignSnapshot, k: usize) -> &TimingReport {
    match k {
        0 => snapshot.report(),
        k => snapshot
            .corners()
            .and_then(|c| c.report(k))
            .expect("resolved corner is in range"),
    }
}

/// The worst lane of a composed multi-shard deck against `required`: the
/// lane whose **composed** slack (the minimum over shards) is smallest,
/// ties to the lowest lane — the cross-shard generalisation of
/// [`rctree_sta::SnapshotCorners::worst_against`].  Lane 0 for
/// nominal-only decks.
fn composed_worst_lane(snapshots: &[Arc<DesignSnapshot>], required: Seconds) -> usize {
    let lanes = snapshots[0].corner_count();
    let composed_slack = |k: usize| -> Seconds {
        snapshots
            .iter()
            .map(|s| corner_report(s, k).slack_against(required))
            .reduce(|a, b| if b < a { b } else { a })
            .expect("at least one shard")
    };
    let mut worst = 0usize;
    let mut slack = composed_slack(0);
    for k in 1..lanes {
        let s = composed_slack(k);
        if s < slack {
            worst = k;
            slack = s;
        }
    }
    worst
}

/// Renders the composed `REPORT` of a sharded deck: per-shard reports of
/// the selected lane merged through [`TimingReport::compose`], so the
/// payload is byte-identical to the monolithic report of the unsharded
/// design, terminated by the revision-vector final line.  `snapshots` and
/// `revs` are the per-shard pairs, in shard order.
pub fn render_report_composed(
    snapshots: &[Arc<DesignSnapshot>],
    revs: &[u64],
    corner: Option<&str>,
) -> Vec<String> {
    debug_assert_eq!(snapshots.len(), revs.len());
    let lead = &snapshots[0];
    let selected = match corner {
        None => None,
        Some("worst") => Some(composed_worst_lane(snapshots, lead.required_time())),
        Some(token) => match resolve_corner(lead, token) {
            Ok(k) => Some(k),
            Err(message) => return vec![err_revs(revs, &message)],
        },
    };
    let k = selected.unwrap_or(0);
    let composed = TimingReport::compose(snapshots.iter().map(|s| corner_report(s, k)));
    let mut lines: Vec<String> = composed.to_string().lines().map(str::to_string).collect();
    lines.push(ok_selected_composed(lead, revs, selected));
    lines
}

/// Renders the composed `CERTIFY` of a sharded deck: the worst slack is
/// the minimum over shards (and, on multi-corner decks, the worst
/// composed lane is named), the verdict the conjunction over every shard
/// and corner.  With one shard the block is byte-identical to
/// [`render_certify`].
pub fn render_certify_composed(
    snapshots: &[Arc<DesignSnapshot>],
    revs: &[u64],
    budget: f64,
) -> Vec<String> {
    let required = Seconds::new(budget);
    let lead = &snapshots[0];
    let certify = match lead.corners() {
        Some(corners) => {
            let worst = composed_worst_lane(snapshots, required);
            let slack = snapshots
                .iter()
                .map(|s| corner_report(s, worst).slack_against(required))
                .reduce(|a, b| if b < a { b } else { a })
                .expect("at least one shard");
            let mut verdict = Certification::Pass;
            for s in snapshots {
                for k in 0..s.corner_count() {
                    verdict = verdict.and(corner_report(s, k).certification_against(required));
                }
            }
            format!(
                "certify required {:e} worst_slack {:e} corner {} {}",
                budget,
                slack.value(),
                corners.names()[worst],
                verdict
            )
        }
        None => {
            let slack = snapshots
                .iter()
                .map(|s| s.report().slack_against(required))
                .reduce(|a, b| if b < a { b } else { a })
                .expect("at least one shard");
            let verdict = snapshots.iter().fold(Certification::Pass, |v, s| {
                v.and(s.report().certification_against(required))
            });
            format!(
                "certify required {:e} worst_slack {:e} {}",
                budget,
                slack.value(),
                verdict
            )
        }
    };
    vec![certify, ok_selected_composed(lead, revs, None)]
}

/// Renders the composed `CERTIFY --over` of a sharded deck: each shard
/// certifies its own symbolic lane over the same box, the reported worst
/// point is the smallest-slack shard's (ties to the lowest shard), and
/// the verdict is the conjunction over every shard.  With one shard the
/// block is byte-identical to [`render_certify_over`].
pub fn render_certify_over_composed(
    snapshots: &[Arc<DesignSnapshot>],
    revs: &[u64],
    budget: f64,
    over: &ScaleBox,
) -> Vec<String> {
    let required = Seconds::new(budget);
    let lead = &snapshots[0];
    let mut worst: Option<BoxCertification> = None;
    let mut verdict = Certification::Pass;
    for snapshot in snapshots {
        let sym = match snapshot.symbolic() {
            Ok(sym) => sym,
            Err(e) => return vec![err_revs(revs, &format!("certify failed: {e}"))],
        };
        let cert = sym.certify_over(required, over.r, over.c);
        verdict = verdict.and(cert.verdict);
        match &worst {
            Some(w) if cert.worst_slack >= w.worst_slack => {}
            _ => worst = Some(cert),
        }
    }
    let cert = worst.expect("at least one shard");
    vec![
        over_line(budget, over, &cert, &verdict.to_string()),
        ok_selected_composed(lead, revs, None),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse() {
        assert_eq!(parse_request("  "), Ok(None));
        assert_eq!(
            parse_request("QUERY clk"),
            Ok(Some(Request::Query {
                net: "clk".into(),
                node: None,
                corner: None,
                sens: false
            }))
        );
        assert_eq!(
            parse_request("query clk n4"),
            Ok(Some(Request::Query {
                net: "clk".into(),
                node: Some("n4".into()),
                corner: None,
                sens: false
            }))
        );
        assert_eq!(
            parse_request("REPORT"),
            Ok(Some(Request::Report { corner: None }))
        );
        assert_eq!(
            parse_request("ECO setcap clk n4 2e-15; prune clk stub"),
            Ok(Some(Request::Eco {
                script: "setcap clk n4 2e-15; prune clk stub".into()
            }))
        );
        assert_eq!(
            parse_request("CERTIFY 5e-9"),
            Ok(Some(Request::Certify {
                budget: 5e-9,
                over: None
            }))
        );
        assert_eq!(parse_request("STATS"), Ok(Some(Request::Stats)));
        assert_eq!(parse_request("QUIT"), Ok(Some(Request::Quit)));
        assert_eq!(parse_request("shutdown"), Ok(Some(Request::Shutdown)));
    }

    #[test]
    fn observability_verbs_parse() {
        assert_eq!(
            parse_request("METRICS"),
            Ok(Some(Request::Metrics { stable: false }))
        );
        assert_eq!(
            parse_request("metrics stable"),
            Ok(Some(Request::Metrics { stable: true }))
        );
        assert_eq!(
            parse_request("METRICS STABLE"),
            Ok(Some(Request::Metrics { stable: true }))
        );
        assert!(parse_request("METRICS everything")
            .unwrap_err()
            .contains("[stable]"));
        assert_eq!(
            parse_request("TRACE 16"),
            Ok(Some(Request::Trace { n: 16 }))
        );
        assert_eq!(parse_request("trace 0"), Ok(Some(Request::Trace { n: 0 })));
        assert!(parse_request("TRACE").unwrap_err().contains("<count>"));
        assert!(parse_request("TRACE many")
            .unwrap_err()
            .contains("not a span count"));
    }

    #[test]
    fn unknown_verbs_echo_the_token_as_typed() {
        // Pinned: the error must carry the verb exactly as the client sent
        // it, not the case-folded match key (`frobnicate`, not
        // `FROBNICATE`).
        assert_eq!(
            parse_request("frobnicate x"),
            Err("unknown verb `frobnicate`".to_string())
        );
        assert_eq!(
            parse_request("FROBNICATE"),
            Err("unknown verb `FROBNICATE`".to_string())
        );
        assert_eq!(
            parse_request("Query-ish clk"),
            Err("unknown verb `Query-ish`".to_string())
        );
    }

    #[test]
    fn corner_selectors_parse() {
        assert_eq!(
            parse_request("QUERY clk --corner slow"),
            Ok(Some(Request::Query {
                net: "clk".into(),
                node: None,
                corner: Some("slow".into()),
                sens: false
            }))
        );
        assert_eq!(
            parse_request("query clk --corner 2 n4"),
            Ok(Some(Request::Query {
                net: "clk".into(),
                node: Some("n4".into()),
                corner: Some("2".into()),
                sens: false
            }))
        );
        assert_eq!(
            parse_request("REPORT --corner worst"),
            Ok(Some(Request::Report {
                corner: Some("worst".into())
            }))
        );
        assert!(parse_request("REPORT --corner")
            .unwrap_err()
            .contains("--corner"));
        assert!(parse_request("QUERY clk n4 --corner").is_err());
        assert!(parse_request("REPORT --corner 1 extra").is_err());
    }

    #[test]
    fn sens_and_over_clauses_parse() {
        assert_eq!(
            parse_request("QUERY clk n4 --sens"),
            Ok(Some(Request::Query {
                net: "clk".into(),
                node: Some("n4".into()),
                corner: None,
                sens: true
            }))
        );
        assert!(parse_request("QUERY clk --sens")
            .unwrap_err()
            .contains("requires a node"));
        assert!(parse_request("QUERY clk n4 --sens --corner 1")
            .unwrap_err()
            .contains("--corner"));
        assert_eq!(
            parse_request("CERTIFY 5e-9 --over r 0.8..1.4"),
            Ok(Some(Request::Certify {
                budget: 5e-9,
                over: Some(ScaleBox {
                    r: (0.8, 1.4),
                    c: (1.0, 1.0)
                })
            }))
        );
        assert_eq!(
            parse_request("certify 5e-9 --over r 0.8..1.4 c 0.9..1.2"),
            Ok(Some(Request::Certify {
                budget: 5e-9,
                over: Some(ScaleBox {
                    r: (0.8, 1.4),
                    c: (0.9, 1.2)
                })
            }))
        );
        // The clause may precede the budget — flags parse position-free.
        assert_eq!(
            parse_request("CERTIFY --over r 1..1 3e-9"),
            Ok(Some(Request::Certify {
                budget: 3e-9,
                over: Some(ScaleBox {
                    r: (1.0, 1.0),
                    c: (1.0, 1.0)
                })
            }))
        );
        assert!(parse_request("CERTIFY 5e-9 --over").is_err());
        assert!(parse_request("CERTIFY 5e-9 --over r").is_err());
        assert!(parse_request("CERTIFY 5e-9 --over c 1..2").is_err());
        assert!(parse_request("CERTIFY 5e-9 --over r 1.4..0.8").is_err());
        assert!(parse_request("CERTIFY 5e-9 --over r 0..1").is_err());
        assert!(parse_request("CERTIFY 5e-9 --over r nope").is_err());
        assert!(parse_request("CERTIFY 5e-9 --over r 1..2 c").is_err());
    }

    #[test]
    fn malformed_requests_are_rejected_with_a_message() {
        assert!(parse_request("QUERY").unwrap_err().contains("QUERY"));
        assert!(parse_request("QUERY a b c").is_err());
        assert!(parse_request("REPORT now").is_err());
        assert!(parse_request("CERTIFY abc").unwrap_err().contains("`abc`"));
        assert!(parse_request("CERTIFY inf").is_err());
        assert!(parse_request("ECO").is_err());
        assert!(parse_request("FROBNICATE x")
            .unwrap_err()
            .contains("`FROBNICATE`"));
    }

    #[test]
    fn final_lines_carry_the_revision() {
        assert!(is_final(&ok_line(7)));
        assert!(is_final(&err_line(3, "nope")));
        assert!(!is_final("sink n4 drives po out lower 1e-9 upper 2e-9"));
        assert_eq!(final_revision(&ok_line(7)), Some(7));
        assert_eq!(final_revision(&err_line(3, "nope")), Some(3));
        assert_eq!(final_revision("sink x"), None);
    }
}
