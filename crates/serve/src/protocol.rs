//! The wire protocol: request grammar and response rendering.
//!
//! Requests are single text lines; responses are blocks of zero or more
//! payload lines terminated by exactly one final line beginning with
//! `OK rev <r>` or `ERR rev <r> <message>` (see `crates/serve/README.md`
//! for the full grammar).  The revision `r` names the snapshot the
//! response was computed against, which is what makes every response
//! *attributable*: a client (or a test oracle) can replay the server's
//! accepted-edit order to revision `r` and re-derive the response
//! byte-for-byte.
//!
//! Rendering lives here as pure functions over a [`DesignSnapshot`] so the
//! connection handlers and the serial-oracle equivalence tests share one
//! formatter — the equivalence pinned by `tests/server_sessions.rs` is
//! then exactly the concurrency model (which snapshot a response saw), not
//! accidental formatting drift.

use rctree_core::units::Seconds;
use rctree_sta::{DesignSnapshot, Load};

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `QUERY <net> [node]` — cached sink windows of a net, or on-demand
    /// characteristic times and delay bounds at one interconnect node.
    Query {
        /// Net name.
        net: String,
        /// Optional node name within the net's interconnect.
        node: Option<String>,
    },
    /// `REPORT` — the full design timing report.
    Report,
    /// `ECO <edit-script-line>` — one edit-script line (the `rcdelay eco`
    /// grammar; several `;`-separated directives allowed).
    Eco {
        /// The raw script line (everything after the verb).
        script: String,
    },
    /// `CERTIFY <budget-seconds>` — three-valued certification against an
    /// arbitrary budget.
    Certify {
        /// Required arrival time in seconds.
        budget: f64,
    },
    /// `STATS` — server counters (not part of the deterministic surface).
    Stats,
    /// `QUIT` — close this connection.
    Quit,
    /// `SHUTDOWN` — stop the whole server (connections drain, the
    /// listener closes).
    Shutdown,
}

/// Parses one request line.  Returns `Ok(None)` for blank lines (they get
/// no response), `Err(message)` for malformed requests.
///
/// Verbs are case-insensitive; net and node names are case-sensitive.
pub fn parse_request(line: &str) -> Result<Option<Request>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    let verb = trimmed.split_whitespace().next().expect("non-empty");
    let rest = trimmed[verb.len()..].trim();
    let args: Vec<&str> = rest.split_whitespace().collect();
    let exact = |want: usize, usage: &str| -> Result<(), String> {
        if args.len() == want {
            Ok(())
        } else {
            Err(format!("`{verb}` takes {usage}"))
        }
    };
    match verb.to_ascii_uppercase().as_str() {
        "QUERY" => match args.as_slice() {
            [net] => Ok(Some(Request::Query {
                net: (*net).to_string(),
                node: None,
            })),
            [net, node] => Ok(Some(Request::Query {
                net: (*net).to_string(),
                node: Some((*node).to_string()),
            })),
            _ => Err("`QUERY` takes <net> [node]".into()),
        },
        "REPORT" => {
            exact(0, "no arguments")?;
            Ok(Some(Request::Report))
        }
        "ECO" => {
            if rest.is_empty() {
                Err("`ECO` takes an edit-script line".into())
            } else {
                Ok(Some(Request::Eco {
                    script: rest.to_string(),
                }))
            }
        }
        "CERTIFY" => {
            exact(1, "<budget-seconds>")?;
            let budget = args[0]
                .parse::<f64>()
                .ok()
                .filter(|v| v.is_finite())
                .ok_or_else(|| format!("`CERTIFY`: `{}` is not a finite number", args[0]))?;
            Ok(Some(Request::Certify { budget }))
        }
        "STATS" => {
            exact(0, "no arguments")?;
            Ok(Some(Request::Stats))
        }
        "QUIT" => {
            exact(0, "no arguments")?;
            Ok(Some(Request::Quit))
        }
        "SHUTDOWN" => {
            exact(0, "no arguments")?;
            Ok(Some(Request::Shutdown))
        }
        other => Err(format!("unknown verb `{other}`")),
    }
}

/// The success terminator of a response block.
pub fn ok_line(rev: u64) -> String {
    format!("OK rev {rev}")
}

/// The failure terminator of a response block.
pub fn err_line(rev: u64, message: &str) -> String {
    format!("ERR rev {rev} {message}")
}

/// Whether a line terminates a response block.
pub fn is_final(line: &str) -> bool {
    line.starts_with("OK ") || line.starts_with("ERR ") || line == "OK" || line == "ERR"
}

/// Extracts the revision from a final line (`OK rev <r>` / `ERR rev <r> …`).
pub fn final_revision(line: &str) -> Option<u64> {
    let mut tokens = line.split_whitespace();
    let status = tokens.next()?;
    if status != "OK" && status != "ERR" {
        return None;
    }
    if tokens.next()? != "rev" {
        return None;
    }
    tokens.next()?.parse().ok()
}

/// Renders what a sink drives.
fn load_text(load: &Load) -> String {
    match load {
        Load::Instance(inst) => format!("inst {inst}"),
        Load::PrimaryOutput(po) => format!("po {po}"),
    }
}

/// Renders the response block of `QUERY <net> [node]` against one
/// snapshot.
pub fn render_query(
    snapshot: &DesignSnapshot,
    rev: u64,
    net: &str,
    node: Option<&str>,
) -> Vec<String> {
    let Some(timing) = snapshot.net(net) else {
        return vec![err_line(rev, &format!("unknown net `{net}`"))];
    };
    match node {
        None => {
            let mut lines: Vec<String> = timing
                .sinks()
                .iter()
                .map(|s| {
                    format!(
                        "sink {} drives {} lower {:e} upper {:e}",
                        s.node,
                        load_text(&s.load),
                        s.lower.value(),
                        s.upper.value()
                    )
                })
                .collect();
            lines.push(ok_line(rev));
            lines
        }
        Some(node) => match timing.node_times(node, snapshot.threshold()) {
            Ok((times, bounds)) => vec![
                format!(
                    "node {node} t_p {:e} t_d {:e} t_r {:e} elmore {:e} lower {:e} upper {:e}",
                    times.t_p.value(),
                    times.t_d.value(),
                    times.t_r.value(),
                    times.elmore_delay().value(),
                    bounds.lower.value(),
                    bounds.upper.value()
                ),
                ok_line(rev),
            ],
            Err(e) => vec![err_line(rev, &format!("query failed: {e}"))],
        },
    }
}

/// Renders the response block of `REPORT`: the payload is exactly the
/// [`rctree_sta::TimingReport`] display text — byte-identical to what
/// `rcdelay report` prints offline for the same design state.
pub fn render_report(snapshot: &DesignSnapshot, rev: u64) -> Vec<String> {
    let mut lines: Vec<String> = snapshot
        .report()
        .to_string()
        .lines()
        .map(str::to_string)
        .collect();
    lines.push(ok_line(rev));
    lines
}

/// Renders the response block of `CERTIFY <budget>`.
pub fn render_certify(snapshot: &DesignSnapshot, rev: u64, budget: f64) -> Vec<String> {
    let required = Seconds::new(budget);
    let report = snapshot.report();
    vec![
        format!(
            "certify required {:e} worst_slack {:e} {}",
            budget,
            report.slack_against(required).value(),
            report.certification_against(required)
        ),
        ok_line(rev),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse() {
        assert_eq!(parse_request("  "), Ok(None));
        assert_eq!(
            parse_request("QUERY clk"),
            Ok(Some(Request::Query {
                net: "clk".into(),
                node: None
            }))
        );
        assert_eq!(
            parse_request("query clk n4"),
            Ok(Some(Request::Query {
                net: "clk".into(),
                node: Some("n4".into())
            }))
        );
        assert_eq!(parse_request("REPORT"), Ok(Some(Request::Report)));
        assert_eq!(
            parse_request("ECO setcap clk n4 2e-15; prune clk stub"),
            Ok(Some(Request::Eco {
                script: "setcap clk n4 2e-15; prune clk stub".into()
            }))
        );
        assert_eq!(
            parse_request("CERTIFY 5e-9"),
            Ok(Some(Request::Certify { budget: 5e-9 }))
        );
        assert_eq!(parse_request("STATS"), Ok(Some(Request::Stats)));
        assert_eq!(parse_request("QUIT"), Ok(Some(Request::Quit)));
        assert_eq!(parse_request("shutdown"), Ok(Some(Request::Shutdown)));
    }

    #[test]
    fn malformed_requests_are_rejected_with_a_message() {
        assert!(parse_request("QUERY").unwrap_err().contains("QUERY"));
        assert!(parse_request("QUERY a b c").is_err());
        assert!(parse_request("REPORT now").is_err());
        assert!(parse_request("CERTIFY abc").unwrap_err().contains("`abc`"));
        assert!(parse_request("CERTIFY inf").is_err());
        assert!(parse_request("ECO").is_err());
        assert!(parse_request("FROBNICATE x")
            .unwrap_err()
            .contains("`FROBNICATE`"));
    }

    #[test]
    fn final_lines_carry_the_revision() {
        assert!(is_final(&ok_line(7)));
        assert!(is_final(&err_line(3, "nope")));
        assert!(!is_final("sink n4 drives po out lower 1e-9 upper 2e-9"));
        assert_eq!(final_revision(&ok_line(7)), Some(7));
        assert_eq!(final_revision(&err_line(3, "nope")), Some(3));
        assert_eq!(final_revision("sink x"), None);
    }
}
