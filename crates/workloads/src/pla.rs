//! The PLA polysilicon-line workload of Section V / Figures 12–13.
//!
//! The paper estimates whether the dominant delay of a PLA lies in the
//! polysilicon lines that drive its AND plane.  A superbuffer with 380 Ω
//! effective pull-up resistance (and 0.04 pF of output capacitance) drives a
//! poly line; "the gates are assumed to be 4 microns square, separated by
//! 24 microns of RC line", and "every second minterm has a transistor
//! present", so one line *section* accounts for two minterms and consists of
//! a 180 Ω / 0.01 pF wire segment followed by a 30 Ω / 0.013 pF gate
//! crossing (the APL function `PLALINE`, Figure 12).
//!
//! Figure 13 then plots the delay bounds at a 0.7·V_DD threshold against the
//! number of minterms (2 … 100) on log-log axes, showing the quadratic
//! growth and the headline claim that "even with as many as a hundred
//! minterms, the delay is guaranteed to be no worse than 10 nsec".

use rctree_core::builder::RcTreeBuilder;
use rctree_core::expr::NetworkExpr;
use rctree_core::tree::{NodeId, RcTree};
use rctree_core::units::{Farads, Ohms};

use crate::tech::{microns, Technology};

/// Electrical parameters of one PLA line, in SI units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaLineParams {
    /// Effective pull-up resistance of the superbuffer driver (Ω).
    pub driver_resistance: f64,
    /// Effective output capacitance of the driver (F).
    pub driver_capacitance: f64,
    /// Resistance of the 24 µm wire segment between gates (Ω).
    pub segment_resistance: f64,
    /// Capacitance of the 24 µm wire segment between gates (F).
    pub segment_capacitance: f64,
    /// Resistance of the poly crossing over one gate (Ω).
    pub gate_resistance: f64,
    /// Capacitance of one gate (F).
    pub gate_capacitance: f64,
}

impl PlaLineParams {
    /// The values quoted in Section V of the paper: 380 Ω / 0.04 pF driver,
    /// 180 Ω / 0.01 pF per wire segment, 30 Ω / 0.013 pF per gate.
    pub fn paper_values() -> Self {
        PlaLineParams {
            driver_resistance: 380.0,
            driver_capacitance: 0.04e-12,
            segment_resistance: 180.0,
            segment_capacitance: 0.01e-12,
            gate_resistance: 30.0,
            gate_capacitance: 0.013e-12,
        }
    }

    /// Derives the wire and gate parasitics from the technology model
    /// (4 µm × 4 µm gates on a 24 µm pitch), keeping the paper's driver
    /// values.
    pub fn from_technology(tech: &Technology) -> Self {
        let seg_len = microns(24.0);
        let width = microns(4.0);
        let gate = microns(4.0);
        PlaLineParams {
            driver_resistance: 380.0,
            driver_capacitance: 0.04e-12,
            segment_resistance: tech.poly_wire_resistance(seg_len, width).value(),
            segment_capacitance: tech.poly_wire_capacitance(seg_len, width).value(),
            gate_resistance: tech.gate_crossing_resistance(gate, gate).value(),
            gate_capacitance: tech.gate_capacitance(gate, gate).value(),
        }
    }
}

impl Default for PlaLineParams {
    fn default() -> Self {
        Self::paper_values()
    }
}

/// A generated PLA line model for a given number of minterms.
#[derive(Debug, Clone)]
pub struct PlaLine {
    params: PlaLineParams,
    minterms: usize,
    sections: usize,
}

impl PlaLine {
    /// Creates the model for `minterms` minterms with the paper's values.
    ///
    /// One section covers two minterms (the paper assumes "every second
    /// minterm has a transistor present"), so the number of sections is
    /// `ceil(minterms / 2)`, matching the APL loop of Figure 12.
    pub fn new(minterms: usize) -> Self {
        Self::with_params(minterms, PlaLineParams::paper_values())
    }

    /// Creates the model with explicit electrical parameters.
    pub fn with_params(minterms: usize, params: PlaLineParams) -> Self {
        let sections = minterms.div_ceil(2);
        PlaLine {
            params,
            minterms,
            sections,
        }
    }

    /// Number of minterms this line serves.
    pub fn minterms(&self) -> usize {
        self.minterms
    }

    /// Number of wire+gate sections in the model.
    pub fn sections(&self) -> usize {
        self.sections
    }

    /// The electrical parameters used.
    pub fn params(&self) -> &PlaLineParams {
        &self.params
    }

    /// The line as a wiring-algebra expression, mirroring the APL `PLALINE`
    /// function of Figure 12: driver, then one `(wire WC gate)` block per
    /// section.
    pub fn expr(&self) -> NetworkExpr {
        let p = &self.params;
        let mut expr = NetworkExpr::resistor(Ohms::new(p.driver_resistance))
            .cascade(NetworkExpr::capacitor(Farads::new(p.driver_capacitance)));
        for _ in 0..self.sections {
            expr = expr
                .cascade(NetworkExpr::line(
                    Ohms::new(p.segment_resistance),
                    Farads::new(p.segment_capacitance),
                ))
                .cascade(NetworkExpr::line(
                    Ohms::new(p.gate_resistance),
                    Farads::new(p.gate_capacitance),
                ));
        }
        expr
    }

    /// The line as an explicit [`RcTree`] with the far end marked as the
    /// output (the last gate on the line — the worst case).
    pub fn tree(&self) -> (RcTree, NodeId) {
        let p = &self.params;
        let mut b = RcTreeBuilder::new();
        let drv = b
            .add_resistor(b.input(), "driver", Ohms::new(p.driver_resistance))
            .expect("static construction");
        b.add_capacitance(drv, Farads::new(p.driver_capacitance))
            .expect("static construction");
        let mut prev = drv;
        for i in 1..=self.sections {
            let wire = b
                .add_line(
                    prev,
                    format!("wire{i}"),
                    Ohms::new(p.segment_resistance),
                    Farads::new(p.segment_capacitance),
                )
                .expect("static construction");
            let gate = b
                .add_line(
                    wire,
                    format!("gate{i}"),
                    Ohms::new(p.gate_resistance),
                    Farads::new(p.gate_capacitance),
                )
                .expect("static construction");
            prev = gate;
        }
        b.mark_output(prev).expect("static construction");
        let tree = b.build().expect("static construction");
        let out = tree.outputs().next().expect("one output");
        (tree, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rctree_core::moments::characteristic_times;
    use rctree_core::units::Seconds;

    #[test]
    fn section_count_matches_figure12_loop() {
        assert_eq!(PlaLine::new(2).sections(), 1);
        assert_eq!(PlaLine::new(3).sections(), 2);
        assert_eq!(PlaLine::new(4).sections(), 2);
        assert_eq!(PlaLine::new(100).sections(), 50);
        assert_eq!(PlaLine::new(100).minterms(), 100);
    }

    #[test]
    fn expr_and_tree_agree() {
        let line = PlaLine::new(20);
        let (tree, out) = line.tree();
        let from_tree = characteristic_times(&tree, out).unwrap();
        let from_expr = line.expr().evaluate().characteristic_times().unwrap();
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-30);
        assert!(rel(from_tree.t_p.value(), from_expr.t_p.value()) < 1e-12);
        assert!(rel(from_tree.t_d.value(), from_expr.t_d.value()) < 1e-12);
        assert!(rel(from_tree.t_r.value(), from_expr.t_r.value()) < 1e-12);
    }

    #[test]
    fn hundred_minterm_delay_is_about_10ns() {
        // The headline claim of Section V: "even with as many as a hundred
        // minterms, the delay is guaranteed to be no worse than 10 nsec"
        // at the 0.7·V_DD threshold.  With the rounded element values quoted
        // in the text (0.01 pF / 0.013 pF) the computed upper bound lands at
        // 10.04 ns — the paper's round 10 ns claim reproduces to well within
        // the precision of its own rounded inputs.
        let (tree, out) = PlaLine::new(100).tree();
        let t = characteristic_times(&tree, out).unwrap();
        let bounds = t.delay_bounds(0.7).unwrap();
        assert!(
            bounds.upper <= Seconds::from_nano(10.5),
            "upper bound {} is far above the paper's 10 ns claim",
            bounds.upper
        );
        assert!(bounds.upper >= Seconds::from_nano(5.0), "suspiciously fast");
    }

    #[test]
    fn delay_grows_roughly_quadratically() {
        // Doubling the line length should roughly quadruple the delay once
        // the line resistance dominates the fixed driver resistance.
        let upper = |minterms: usize| {
            let (tree, out) = PlaLine::new(minterms).tree();
            characteristic_times(&tree, out)
                .unwrap()
                .delay_bounds(0.7)
                .unwrap()
                .upper
                .value()
        };
        let d50 = upper(50);
        let d100 = upper(100);
        let ratio = d100 / d50;
        assert!(
            ratio > 2.5 && ratio < 4.5,
            "expected roughly quadratic growth, got ratio {ratio}"
        );
    }

    #[test]
    fn technology_derived_params_are_close_to_paper_values() {
        let derived = PlaLineParams::from_technology(&Technology::paper_1981());
        let paper = PlaLineParams::paper_values();
        assert!((derived.segment_resistance - paper.segment_resistance).abs() < 1.0);
        assert!((derived.gate_resistance - paper.gate_resistance).abs() < 1.0);
        // Capacitances agree to ~15% (the paper rounds to 2 significant digits).
        let rel = |a: f64, b: f64| ((a - b) / b).abs();
        assert!(rel(derived.segment_capacitance, paper.segment_capacitance) < 0.15);
        assert!(rel(derived.gate_capacitance, paper.gate_capacitance) < 0.15);
    }

    #[test]
    fn params_accessors() {
        let line = PlaLine::with_params(10, PlaLineParams::paper_values());
        assert_eq!(line.params().driver_resistance, 380.0);
        assert_eq!(line.sections(), 5);
    }

    #[test]
    fn bounds_bracket_for_every_sweep_point() {
        for minterms in [2, 10, 40, 100] {
            let (tree, out) = PlaLine::new(minterms).tree();
            let t = characteristic_times(&tree, out).unwrap();
            let b = t.delay_bounds(0.7).unwrap();
            assert!(b.lower <= b.upper, "minterms={minterms}");
            assert!(t.satisfies_ordering(), "minterms={minterms}");
        }
    }
}
