//! The example network of Figure 7 / Eq. (18).
//!
//! This is the network whose delay and voltage bound tables are printed in
//! Figure 10 of the paper (and plotted against the exact response in
//! Figure 11), which makes it the primary numerical regression target of the
//! reproduction.  Parameter values are in plain ohms and farads, exactly as
//! in the paper.

use rctree_core::builder::RcTreeBuilder;
use rctree_core::expr::NetworkExpr;
use rctree_core::tree::{NodeId, RcTree};
use rctree_core::units::{Farads, Ohms};

/// Name of the output node (far end of the main path) in [`figure7_tree`].
pub const OUTPUT_NAME: &str = "out";
/// Name of the side-branch load node in [`figure7_tree`].
pub const SIDE_NAME: &str = "side";
/// Name of the internal fan-out node in [`figure7_tree`].
pub const STEM_NAME: &str = "stem";

/// The Figure 7 network as an explicit [`RcTree`], with the far end of the
/// main path marked as the output.
///
/// Topology: `input —R(15Ω)— stem [2 F]`, a side branch
/// `stem —R(8Ω)— side [7 F]`, and the main path
/// `stem —URC(3Ω, 4F)— out [9 F]`.
pub fn figure7_tree() -> (RcTree, NodeId) {
    let mut b = RcTreeBuilder::new();
    let stem = b
        .add_resistor(b.input(), STEM_NAME, Ohms::new(15.0))
        .expect("static network construction cannot fail");
    b.add_capacitance(stem, Farads::new(2.0)).expect("valid");
    let side = b
        .add_resistor(stem, SIDE_NAME, Ohms::new(8.0))
        .expect("valid");
    b.add_capacitance(side, Farads::new(7.0)).expect("valid");
    let out = b
        .add_line(stem, OUTPUT_NAME, Ohms::new(3.0), Farads::new(4.0))
        .expect("valid");
    b.add_capacitance(out, Farads::new(9.0)).expect("valid");
    b.mark_output(out).expect("valid");
    let tree = b.build().expect("valid");
    (tree, out)
}

/// The Figure 7 network as a wiring-algebra expression, exactly as written
/// in Eq. (18):
///
/// ```text
/// (URC 15 0) WC (URC 0 2) WC (WB ((URC 8 0) WC (URC 0 7)))
///            WC (URC 3 4) WC (URC 0 9)
/// ```
pub fn figure7_expr() -> NetworkExpr {
    NetworkExpr::resistor(Ohms::new(15.0))
        .cascade(NetworkExpr::capacitor(Farads::new(2.0)))
        .cascade(
            NetworkExpr::resistor(Ohms::new(8.0))
                .cascade(NetworkExpr::capacitor(Farads::new(7.0)))
                .side_branch(),
        )
        .cascade(NetworkExpr::line(Ohms::new(3.0), Farads::new(4.0)))
        .cascade(NetworkExpr::capacitor(Farads::new(9.0)))
}

/// The delay-bound table of Figure 10 as printed in the paper:
/// `(threshold, T_MIN, T_MAX)` rows (times in seconds).
///
/// The `T_MIN` entry for threshold 0.5 is partially illegible in the
/// scanned copy ("18~.23"); it is reproduced here as the value computed from
/// the paper's own formulas, 184.23 s, which matches the legible digits.
pub const FIG10_DELAY_TABLE: &[(f64, f64, f64)] = &[
    (0.1, 0.0, 68.167),
    (0.2, 27.8, 117.22),
    (0.3, 71.46, 173.17),
    (0.4, 123.13, 237.76),
    (0.5, 184.23, 314.15),
    (0.6, 259.02, 407.65),
    (0.7, 355.45, 528.18),
    (0.8, 491.34, 698.07),
    (0.9, 723.66, 988.5),
];

/// The voltage-bound table of Figure 10 as printed in the paper:
/// `(time, V_MIN, V_MAX)` rows (time in seconds, voltages normalized).
pub const FIG10_VOLTAGE_TABLE: &[(f64, f64, f64)] = &[
    (20.0, 0.0, 0.18138),
    (40.0, 0.03243, 0.22912),
    (60.0, 0.0814, 0.27565),
    (80.0, 0.12565, 0.31761),
    (100.0, 0.16644, 0.35714),
    (200.0, 0.34342, 0.52297),
    (300.0, 0.48283, 0.64603),
    (400.0, 0.59263, 0.73734),
    (500.0, 0.67913, 0.8051),
    (1000.0, 0.90271, 0.95615),
    (2000.0, 0.99105, 0.99778),
];

#[cfg(test)]
mod tests {
    use super::*;
    use rctree_core::moments::characteristic_times;

    #[test]
    fn tree_and_expression_agree() {
        let (tree, out) = figure7_tree();
        let t_tree = characteristic_times(&tree, out).unwrap();
        let t_expr = figure7_expr().evaluate().characteristic_times().unwrap();
        assert!((t_tree.t_p.value() - t_expr.t_p.value()).abs() < 1e-9);
        assert!((t_tree.t_d.value() - t_expr.t_d.value()).abs() < 1e-9);
        assert!((t_tree.t_r.value() - t_expr.t_r.value()).abs() < 1e-9);
    }

    #[test]
    fn characteristic_times_have_expected_values() {
        let (tree, out) = figure7_tree();
        let t = characteristic_times(&tree, out).unwrap();
        assert!((t.t_p.value() - 419.0).abs() < 1e-9);
        assert!((t.t_d.value() - 363.0).abs() < 1e-9);
        assert!((t.t_r.value() - 6033.0 / 18.0).abs() < 1e-9);
        assert_eq!(t.r_ee, Ohms::new(18.0));
        assert_eq!(t.total_cap, Farads::new(22.0));
    }

    #[test]
    fn delay_bounds_reproduce_figure10_table() {
        let (tree, out) = figure7_tree();
        let t = characteristic_times(&tree, out).unwrap();
        for &(threshold, t_min, t_max) in FIG10_DELAY_TABLE {
            let b = t.delay_bounds(threshold).unwrap();
            // The paper prints 5 significant digits; allow 0.1% slack.
            let tol_min = (t_min.abs() * 1e-3).max(0.05);
            let tol_max = t_max.abs() * 1e-3;
            assert!(
                (b.lower.value() - t_min).abs() < tol_min,
                "T_MIN({threshold}) = {} vs paper {t_min}",
                b.lower.value()
            );
            assert!(
                (b.upper.value() - t_max).abs() < tol_max,
                "T_MAX({threshold}) = {} vs paper {t_max}",
                b.upper.value()
            );
        }
    }

    #[test]
    fn voltage_bounds_reproduce_figure10_table() {
        let (tree, out) = figure7_tree();
        let t = characteristic_times(&tree, out).unwrap();
        for &(time, v_min, v_max) in FIG10_VOLTAGE_TABLE {
            let b = t
                .voltage_bounds(rctree_core::units::Seconds::new(time))
                .unwrap();
            assert!(
                (b.lower - v_min).abs() < 6e-4,
                "V_MIN({time}) = {} vs paper {v_min}",
                b.lower
            );
            assert!(
                (b.upper - v_max).abs() < 6e-4,
                "V_MAX({time}) = {} vs paper {v_max}",
                b.upper
            );
        }
    }

    #[test]
    fn named_nodes_exist() {
        let (tree, out) = figure7_tree();
        assert_eq!(tree.node_by_name(OUTPUT_NAME).unwrap(), out);
        assert!(tree.node_by_name(SIDE_NAME).is_ok());
        assert!(tree.node_by_name(STEM_NAME).is_ok());
        assert_eq!(tree.node_count(), 4);
    }
}
