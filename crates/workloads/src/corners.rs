//! Seeded PVT corner-spec generator.
//!
//! Multi-corner tests and benches need reproducible [`CornerSet`]s over
//! arbitrary decks.  [`corner_spec`] renders a seeded specification in the
//! exact text grammar `CornerSet::parse` accepts (one `<name>=<r>,<c>,<d>`
//! line per extra corner, plus `override <net> <corner> <r> <c>` lines
//! scattered over the deck's nets), and [`corner_set`] parses it back —
//! so every generated set also exercises the parser round-trip.
//!
//! Scale factors are drawn from ranges representative of real signoff
//! spreads (slow/fast silicon, wire-stack variation): resistances and
//! capacitances within roughly ±40% of nominal, intrinsic delays within
//! ±25%.  Determinism is part of the contract: the same seed, parameters
//! and net list always produce the same spec text, bit for bit.

use std::fmt;
use std::fmt::Write as _;

use rctree_core::corner::CornerSet;

use crate::rng::Rng;

/// Shape of a generated corner specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CornerSpecParams {
    /// Total corner count **including** the implicit nominal corner
    /// (so `corners: 4` emits three spec lines).  `0` and `1` both
    /// produce an empty spec (nominal-only).
    pub corners: usize,
    /// Number of per-net wire-scale `override` lines, scattered over
    /// seeded `(net, corner)` pairs.  Ignored when the net list is empty
    /// or no extra corner exists.
    pub overrides: usize,
}

impl Default for CornerSpecParams {
    fn default() -> Self {
        CornerSpecParams {
            corners: 4,
            overrides: 2,
        }
    }
}

/// Corner-name suffixes cycled by the generator (process-corner flavour).
const FLAVOURS: [&str; 5] = ["ss", "ff", "sf", "fs", "tt"];

/// Renders a seeded corner specification in the `CornerSet::parse`
/// grammar.  Floats are printed in Rust's shortest round-trip form, so
/// parsing the spec reproduces the generated scale factors bit for bit.
pub fn corner_spec(params: &CornerSpecParams, nets: &[String], seed: u64) -> String {
    let mut rng = Rng::from_seed(seed ^ 0xC04E_4552_5357_4545);
    let mut out = String::from("# seeded corner spec\n");
    let extra = params.corners.saturating_sub(1);
    let mut names: Vec<String> = Vec::with_capacity(extra);
    for i in 0..extra {
        let name = format!("c{}_{}", i + 1, FLAVOURS[i % FLAVOURS.len()]);
        let r = rng.range_f64(0.7, 1.4);
        let c = rng.range_f64(0.7, 1.4);
        let d = rng.range_f64(0.8, 1.25);
        let _ = writeln!(out, "{name}={r:?},{c:?},{d:?}");
        names.push(name);
    }
    if !names.is_empty() && !nets.is_empty() {
        for _ in 0..params.overrides {
            let net = &nets[rng.index(nets.len())];
            let corner = &names[rng.index(names.len())];
            let r = rng.range_f64(0.8, 1.6);
            let c = rng.range_f64(0.8, 1.3);
            let _ = writeln!(out, "override {net} {corner} {r:?} {c:?}");
        }
    }
    out
}

/// The parsed [`CornerSet`] of [`corner_spec`] with the same arguments.
///
/// # Panics
///
/// Never in practice: the generator only emits scales the parser accepts
/// (finite, positive) and corner names without whitespace or commas.
pub fn corner_set(params: &CornerSpecParams, nets: &[String], seed: u64) -> CornerSet {
    CornerSet::parse(&corner_spec(params, nets, seed)).expect("generated specs parse")
}

/// A seeded continuum certification box over the global wire scales — the
/// input shape of `CERTIFY … --over` / `rcdelay certify-over`.  Both ranges
/// straddle the nominal `1.0`, matching realistic wire-stack spreads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalSpec {
    /// `r_scale` range (`lo ≤ 1 ≤ hi`).
    pub r: (f64, f64),
    /// `c_scale` range (`lo ≤ 1 ≤ hi`).
    pub c: (f64, f64),
}

impl fmt::Display for IntervalSpec {
    /// Renders the exact `--over` operand grammar the serve protocol
    /// parses (`r <a..b> c <a..b>`, each range accepted by
    /// `rctree_core::algebra::parse_scale_range`); floats print in Rust's
    /// shortest round-trip form, so parsing reproduces the generated
    /// bounds bit for bit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "r {:?}..{:?} c {:?}..{:?}",
            self.r.0, self.r.1, self.c.0, self.c.1
        )
    }
}

/// Renders a seeded certification box, reproducibly: the same seed always
/// produces the same [`IntervalSpec`], bit for bit.
pub fn interval_spec(seed: u64) -> IntervalSpec {
    let mut rng = Rng::from_seed(seed ^ 0x0B0C_5343_414C_4553);
    IntervalSpec {
        r: (rng.range_f64(0.6, 1.0), rng.range_f64(1.0, 1.5)),
        c: (rng.range_f64(0.7, 1.0), rng.range_f64(1.0, 1.3)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nets() -> Vec<String> {
        vec!["net0".into(), "net1".into(), "net2".into()]
    }

    #[test]
    fn same_seed_same_spec() {
        let p = CornerSpecParams::default();
        assert_eq!(corner_spec(&p, &nets(), 7), corner_spec(&p, &nets(), 7));
        assert_ne!(corner_spec(&p, &nets(), 7), corner_spec(&p, &nets(), 8));
    }

    #[test]
    fn parsed_set_has_the_requested_shape() {
        let p = CornerSpecParams {
            corners: 4,
            overrides: 3,
        };
        let set = corner_set(&p, &nets(), 42);
        assert_eq!(set.len(), 4);
        assert_eq!(set.corner(0).name, "nominal");
        assert_eq!(set.corner(1).name, "c1_ss");
        assert!(!set.is_nominal_only());
        for k in 1..set.len() {
            let c = set.corner(k);
            assert!(c.r_scale > 0.0 && c.r_scale.is_finite());
            assert!((0.7..=1.4).contains(&c.r_scale));
            assert!((0.8..=1.25).contains(&c.delay_scale));
        }
    }

    #[test]
    fn spec_round_trips_through_the_parser() {
        let p = CornerSpecParams {
            corners: 5,
            overrides: 4,
        };
        let spec = corner_spec(&p, &nets(), 99);
        let parsed = CornerSet::parse(&spec).expect("parses");
        assert_eq!(parsed, corner_set(&p, &nets(), 99));
        // At least one override changed some net's wire scales away from
        // the corner globals.
        let moved = (1..parsed.len()).any(|k| {
            nets().iter().any(|n| {
                let c = parsed.corner(k);
                parsed.wire_scales(n, k) != (c.r_scale, c.c_scale)
            })
        });
        assert!(moved, "overrides should move some wire scales:\n{spec}");
    }

    #[test]
    fn interval_specs_are_seeded_and_straddle_nominal() {
        assert_eq!(interval_spec(7), interval_spec(7));
        assert_ne!(interval_spec(7), interval_spec(8));
        for seed in 0..32 {
            let spec = interval_spec(seed);
            assert!(spec.r.0 <= 1.0 && 1.0 <= spec.r.1);
            assert!(spec.c.0 <= 1.0 && 1.0 <= spec.c.1);
        }
    }

    #[test]
    fn interval_spec_display_round_trips_through_the_range_parser() {
        use rctree_core::algebra::parse_scale_range;
        let spec = interval_spec(42);
        let text = spec.to_string();
        let mut parts = text.split_whitespace();
        assert_eq!(parts.next(), Some("r"));
        let r = parse_scale_range(parts.next().unwrap()).unwrap();
        assert_eq!(parts.next(), Some("c"));
        let c = parse_scale_range(parts.next().unwrap()).unwrap();
        assert_eq!(parts.next(), None);
        assert_eq!((r, c), (spec.r, spec.c));
    }

    #[test]
    fn degenerate_shapes_are_nominal_only() {
        let p = CornerSpecParams {
            corners: 1,
            overrides: 5,
        };
        assert!(corner_set(&p, &nets(), 1).is_nominal_only());
        let p0 = CornerSpecParams {
            corners: 0,
            overrides: 0,
        };
        assert!(corner_set(&p0, &[], 1).is_nominal_only());
    }
}
