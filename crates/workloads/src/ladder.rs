//! Uniform RC ladders and distributed lines.
//!
//! Section III notes two useful special cases: for RC trees without side
//! branches `T_De = T_P`, and for a single uniform RC line
//! `T_P = T_De = RC/2`, `T_Re = RC/3`.  These generators produce both the
//! lumped ladder approximation (n sections of R/n and C/n) and the single
//! distributed line, which the tests and benchmarks use to check convergence
//! of the ladder towards the distributed limit.

use rctree_core::builder::RcTreeBuilder;
use rctree_core::tree::{NodeId, RcTree};
use rctree_core::units::{Farads, Ohms};

/// A uniform RC ladder: `sections` lumped R–C sections approximating a line
/// with the given total resistance and capacitance.  The far end is the
/// output.
///
/// # Panics
///
/// Panics if `sections` is zero.
pub fn rc_ladder(total_r: Ohms, total_c: Farads, sections: usize) -> (RcTree, NodeId) {
    assert!(sections > 0, "a ladder needs at least one section");
    let r_seg = Ohms::new(total_r.value() / sections as f64);
    let c_seg = Farads::new(total_c.value() / sections as f64);
    let mut b = RcTreeBuilder::new();
    let mut prev = b.input();
    for i in 1..=sections {
        prev = b
            .add_resistor(prev, format!("n{i}"), r_seg)
            .expect("static construction");
        b.add_capacitance(prev, c_seg).expect("static construction");
    }
    b.mark_output(prev).expect("static construction");
    let tree = b.build().expect("static construction");
    let out = tree.outputs().next().expect("one output");
    (tree, out)
}

/// A single uniform distributed RC line with the far end as the output.
pub fn distributed_line(total_r: Ohms, total_c: Farads) -> (RcTree, NodeId) {
    let mut b = RcTreeBuilder::new();
    let end = b
        .add_line(b.input(), "end", total_r, total_c)
        .expect("static construction");
    b.mark_output(end).expect("static construction");
    let tree = b.build().expect("static construction");
    (tree, end)
}

/// A chain of identical lumped driver/wire/load stages, useful for scaling
/// benchmarks: `stages` repetitions of a resistor `r` followed by a
/// capacitor `c`, with every stage boundary marked as an output.
pub fn repeated_chain(r: Ohms, c: Farads, stages: usize) -> RcTree {
    assert!(stages > 0, "a chain needs at least one stage");
    let mut b = RcTreeBuilder::new();
    let mut prev = b.input();
    for i in 1..=stages {
        prev = b
            .add_resistor(prev, format!("stage{i}"), r)
            .expect("static construction");
        b.add_capacitance(prev, c).expect("static construction");
        b.mark_output(prev).expect("static construction");
    }
    b.build().expect("static construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rctree_core::moments::characteristic_times;

    #[test]
    fn distributed_line_matches_paper_constants() {
        let (tree, out) = distributed_line(Ohms::new(2.0), Farads::new(6.0));
        let t = characteristic_times(&tree, out).unwrap();
        let rc = 12.0;
        assert!((t.t_p.value() - rc / 2.0).abs() < 1e-12);
        assert!((t.t_d.value() - rc / 2.0).abs() < 1e-12);
        assert!((t.t_r.value() - rc / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ladder_converges_to_distributed_line() {
        let (line, line_out) = distributed_line(Ohms::new(10.0), Farads::new(4.0));
        let exact = characteristic_times(&line, line_out).unwrap();
        let mut prev_err = f64::INFINITY;
        for sections in [2, 8, 32, 128] {
            let (ladder, out) = rc_ladder(Ohms::new(10.0), Farads::new(4.0), sections);
            let t = characteristic_times(&ladder, out).unwrap();
            let err = (t.t_d.value() - exact.t_d.value()).abs()
                + (t.t_r.value() - exact.t_r.value()).abs();
            assert!(err < prev_err, "error should shrink with more sections");
            prev_err = err;
        }
        // 128 sections approximate the distributed limit to better than 2%
        // of the Elmore delay (the ladder error decays as 1/n).
        assert!(prev_err < 0.02 * exact.t_d.value());
    }

    #[test]
    fn ladder_is_a_chain_so_td_equals_tp() {
        let (ladder, out) = rc_ladder(Ohms::new(5.0), Farads::new(3.0), 10);
        let t = characteristic_times(&ladder, out).unwrap();
        assert!((t.t_p.value() - t.t_d.value()).abs() < 1e-12);
    }

    #[test]
    fn repeated_chain_marks_every_stage_as_output() {
        let tree = repeated_chain(Ohms::new(1.0), Farads::new(1.0), 5);
        assert_eq!(tree.outputs().count(), 5);
        assert_eq!(tree.node_count(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one section")]
    fn zero_section_ladder_panics() {
        let _ = rc_ladder(Ohms::new(1.0), Farads::new(1.0), 0);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stage_chain_panics() {
        let _ = repeated_chain(Ohms::new(1.0), Farads::new(1.0), 0);
    }
}
