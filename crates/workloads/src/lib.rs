//! # rctree-workloads
//!
//! Workload generators for the Penfield–Rubinstein reproduction: the paper's
//! own example networks (Figures 3 and 7, the PLA line of Figure 12, the MOS
//! fan-out of Figures 1–2), the 1981 technology model of Section V, and
//! synthetic generators (uniform ladders, H-tree clock networks, seeded
//! random trees) used by the tests and benchmarks.
//!
//! ```
//! use rctree_workloads::fig7::figure7_tree;
//! use rctree_core::moments::characteristic_times;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (tree, out) = figure7_tree();
//! let times = characteristic_times(&tree, out)?;
//! let bounds = times.delay_bounds(0.5)?;
//! // Figure 10: the 50% threshold is reached between 184.23 s and 314.15 s.
//! assert!((bounds.lower.value() - 184.23).abs() < 0.1);
//! assert!((bounds.upper.value() - 314.15).abs() < 0.1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod corners;
pub mod dag;
pub mod deck;
pub mod eco;
pub mod fig3;
pub mod fig7;
pub mod htree;
pub mod ladder;
pub mod mos_net;
pub mod pla;
pub mod random;
pub mod requests;
pub mod rng;
pub mod tech;

pub use crate::corners::{corner_set, corner_spec, interval_spec, CornerSpecParams, IntervalSpec};
pub use crate::dag::{eco_dag, EcoDag, EcoDagNet, EcoDagParams};
pub use crate::deck::{render_spef_deck, spef_deck, SpefDeckParams};
pub use crate::eco::{EcoStream, EcoStreamParams};
pub use crate::fig3::{figure3_tree, Figure3Nodes, Figure3Values};
pub use crate::fig7::{figure7_expr, figure7_tree, FIG10_DELAY_TABLE, FIG10_VOLTAGE_TABLE};
pub use crate::htree::{h_tree, HTreeParams};
pub use crate::ladder::{distributed_line, rc_ladder, repeated_chain};
pub use crate::mos_net::{mos_fanout_tree, representative_mos_fanout, MosNetOutputs, MosNetParams};
pub use crate::pla::{PlaLine, PlaLineParams};
pub use crate::random::RandomTreeConfig;
pub use crate::requests::{request_mix, shard_crossing_mix, shard_of, RequestMixParams};
pub use crate::tech::Technology;
