//! The resistance-illustration network of Figure 3.
//!
//! Figure 3 of the paper is a five-resistor tree used to illustrate the
//! definitions of `R_ke`, `R_kk` and `R_ee`: with the output `e` behind
//! `R5` and the node `k` behind `R3`,
//!
//! ```text
//! R_ke = R1 + R2      R_kk = R1 + R2 + R3      R_ee = R1 + R2 + R5
//! ```

use rctree_core::builder::RcTreeBuilder;
use rctree_core::tree::{NodeId, RcTree};
use rctree_core::units::{Farads, Ohms};

/// Resistor values of the Figure 3 network, in order `R1 … R5` (ohms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure3Values {
    /// `R1`, from the input to the first internal node.
    pub r1: f64,
    /// `R2`, to the branching node.
    pub r2: f64,
    /// `R3`, from the branching node towards `k`.
    pub r3: f64,
    /// `R4`, beyond `k`.
    pub r4: f64,
    /// `R5`, from the branching node to the output `e`.
    pub r5: f64,
    /// Capacitance hung at node `k` (farads).
    pub cap_k: f64,
    /// Capacitance hung at the output `e` (farads).
    pub cap_e: f64,
}

impl Default for Figure3Values {
    fn default() -> Self {
        // The paper does not assign numbers in Figure 3; these defaults make
        // the three resistances easy to recognize: R_ke = 3, R_kk = 6,
        // R_ee = 8.
        Figure3Values {
            r1: 1.0,
            r2: 2.0,
            r3: 3.0,
            r4: 4.0,
            r5: 5.0,
            cap_k: 1.0,
            cap_e: 1.0,
        }
    }
}

/// Handle on the interesting nodes of the Figure 3 network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Figure3Nodes {
    /// The node `k` (behind `R3`).
    pub k: NodeId,
    /// The node beyond `R4` (end of the `k` branch).
    pub beyond_k: NodeId,
    /// The output node `e` (behind `R5`).
    pub e: NodeId,
    /// The branching node where the paths to `k` and `e` diverge.
    pub fork: NodeId,
}

/// Builds the Figure 3 network with the given element values.
pub fn figure3_tree(values: Figure3Values) -> (RcTree, Figure3Nodes) {
    let mut b = RcTreeBuilder::new();
    let n1 = b
        .add_resistor(b.input(), "n1", Ohms::new(values.r1))
        .expect("static construction");
    let fork = b
        .add_resistor(n1, "fork", Ohms::new(values.r2))
        .expect("static construction");
    let k = b
        .add_resistor(fork, "k", Ohms::new(values.r3))
        .expect("static construction");
    let beyond_k = b
        .add_resistor(k, "beyond_k", Ohms::new(values.r4))
        .expect("static construction");
    let e = b
        .add_resistor(fork, "e", Ohms::new(values.r5))
        .expect("static construction");
    b.add_capacitance(k, Farads::new(values.cap_k))
        .expect("static construction");
    b.add_capacitance(e, Farads::new(values.cap_e))
        .expect("static construction");
    b.mark_output(e).expect("static construction");
    let tree = b.build().expect("static construction");
    (
        tree,
        Figure3Nodes {
            k,
            beyond_k,
            e,
            fork,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rctree_core::resistance::{path_resistance, shared_resistance};

    #[test]
    fn paper_resistance_identities_hold() {
        let v = Figure3Values::default();
        let (tree, nodes) = figure3_tree(v);
        // R_ke = R1 + R2.
        assert_eq!(
            shared_resistance(&tree, nodes.k, nodes.e).unwrap(),
            Ohms::new(v.r1 + v.r2)
        );
        // R_kk = R1 + R2 + R3.
        assert_eq!(
            path_resistance(&tree, nodes.k).unwrap(),
            Ohms::new(v.r1 + v.r2 + v.r3)
        );
        // R_ee = R1 + R2 + R5.
        assert_eq!(
            path_resistance(&tree, nodes.e).unwrap(),
            Ohms::new(v.r1 + v.r2 + v.r5)
        );
    }

    #[test]
    fn custom_values_are_respected() {
        let v = Figure3Values {
            r1: 10.0,
            r2: 20.0,
            r3: 30.0,
            r4: 40.0,
            r5: 50.0,
            cap_k: 2.0,
            cap_e: 3.0,
        };
        let (tree, nodes) = figure3_tree(v);
        assert_eq!(
            shared_resistance(&tree, nodes.beyond_k, nodes.e).unwrap(),
            Ohms::new(30.0)
        );
        assert_eq!(tree.total_capacitance(), Farads::new(5.0));
        assert_eq!(tree.node_count(), 6);
    }

    #[test]
    fn fork_is_the_lowest_common_ancestor() {
        let (tree, nodes) = figure3_tree(Figure3Values::default());
        assert_eq!(
            tree.lowest_common_ancestor(nodes.k, nodes.e).unwrap(),
            nodes.fork
        );
    }
}
