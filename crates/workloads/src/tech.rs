//! The 1981 NMOS technology model used in Section V of the paper.
//!
//! The paper derives its PLA numbers from process constants: "The poly
//! resistance is assumed to be 30 ohms per square, the gate-oxide thickness
//! 400 Angstroms, and the field-oxide thickness 3000 Angstroms", with
//! 4-micron gates separated by 24 microns of RC line.  [`Technology`]
//! encodes those constants and converts wire/gate geometry into the lumped
//! R and C values the workload generators need, so that the PLA and MOS
//! fan-out networks are generated from geometry exactly as a 1981 designer
//! would have done rather than from magic numbers.

use rctree_core::units::{Farads, Ohms};

/// Permittivity of free space (F/m).
const EPSILON_0: f64 = 8.854_187_812_8e-12;
/// Relative permittivity of SiO₂.
const EPSILON_R_SIO2: f64 = 3.9;

/// Process constants for interconnect parasitics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    /// Polysilicon sheet resistance (ohms per square).
    pub poly_sheet_resistance: f64,
    /// Gate-oxide thickness in metres.
    pub gate_oxide_thickness: f64,
    /// Field-oxide thickness in metres.
    pub field_oxide_thickness: f64,
}

impl Technology {
    /// The process constants quoted in Section V of the paper
    /// (30 Ω/□ poly, 400 Å gate oxide, 3000 Å field oxide).
    pub fn paper_1981() -> Self {
        Technology {
            poly_sheet_resistance: 30.0,
            gate_oxide_thickness: 400e-10,
            field_oxide_thickness: 3000e-10,
        }
    }

    /// Oxide capacitance per unit area (F/m²) for a conductor over the field
    /// oxide.
    pub fn field_cap_per_area(&self) -> f64 {
        EPSILON_0 * EPSILON_R_SIO2 / self.field_oxide_thickness
    }

    /// Oxide capacitance per unit area (F/m²) for a transistor gate.
    pub fn gate_cap_per_area(&self) -> f64 {
        EPSILON_0 * EPSILON_R_SIO2 / self.gate_oxide_thickness
    }

    /// Series resistance of a polysilicon wire of the given length and width
    /// (metres).
    pub fn poly_wire_resistance(&self, length: f64, width: f64) -> Ohms {
        Ohms::new(self.poly_sheet_resistance * length / width)
    }

    /// Capacitance to substrate of a polysilicon wire over field oxide.
    pub fn poly_wire_capacitance(&self, length: f64, width: f64) -> Farads {
        Farads::new(self.field_cap_per_area() * length * width)
    }

    /// Gate capacitance of a transistor of the given gate dimensions.
    pub fn gate_capacitance(&self, length: f64, width: f64) -> Farads {
        Farads::new(self.gate_cap_per_area() * length * width)
    }

    /// Resistance of the polysilicon crossing over a gate of the given
    /// dimensions (the "30 ohms ... for each gate" of Section V: one square
    /// of poly).
    pub fn gate_crossing_resistance(&self, length: f64, width: f64) -> Ohms {
        Ohms::new(self.poly_sheet_resistance * length / width)
    }
}

impl Default for Technology {
    fn default() -> Self {
        Self::paper_1981()
    }
}

/// Helper: converts microns to metres.
pub fn microns(value: f64) -> f64 {
    value * 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_segment_resistance_is_180_ohms() {
        // 24 µm of 4 µm-wide poly at 30 Ω/□ is 6 squares = 180 Ω.
        let tech = Technology::paper_1981();
        let r = tech.poly_wire_resistance(microns(24.0), microns(4.0));
        assert!((r.value() - 180.0).abs() < 1e-9);
    }

    #[test]
    fn paper_segment_capacitance_is_about_0_01_pf() {
        // "These numbers lead to a capacitance of 0.01 pF ... between gates".
        let tech = Technology::paper_1981();
        let c = tech.poly_wire_capacitance(microns(24.0), microns(4.0));
        let pf = c.value() * 1e12;
        assert!((pf - 0.011).abs() < 0.002, "got {pf} pF");
    }

    #[test]
    fn paper_gate_capacitance_is_about_0_013_pf() {
        // "a resistance of 30 ohms and capacitance of 0.013 pF for each gate"
        // for a 4 µm × 4 µm gate over 400 Å oxide.
        let tech = Technology::paper_1981();
        let c = tech.gate_capacitance(microns(4.0), microns(4.0));
        let pf = c.value() * 1e12;
        assert!((pf - 0.0138).abs() < 0.002, "got {pf} pF");
    }

    #[test]
    fn paper_gate_crossing_resistance_is_30_ohms() {
        let tech = Technology::paper_1981();
        let r = tech.gate_crossing_resistance(microns(4.0), microns(4.0));
        assert!((r.value() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn gate_oxide_is_denser_than_field_oxide() {
        let tech = Technology::paper_1981();
        assert!(tech.gate_cap_per_area() > tech.field_cap_per_area());
        // The ratio equals the inverse thickness ratio (same dielectric).
        let ratio = tech.gate_cap_per_area() / tech.field_cap_per_area();
        assert!((ratio - 7.5).abs() < 1e-9);
    }

    #[test]
    fn default_is_the_paper_process() {
        assert_eq!(Technology::default(), Technology::paper_1981());
    }

    #[test]
    fn microns_helper() {
        assert!((microns(24.0) - 24e-6).abs() < 1e-18);
    }
}
