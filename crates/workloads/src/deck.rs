//! Multi-net SPEF deck generation for ingestion-scale benchmarks.
//!
//! The paper's per-net analysis only becomes interesting at full-chip
//! scale: thousands of extracted nets arriving as one SPEF document.  This
//! module generates such decks reproducibly — every net is a seeded random
//! RC tree rendered as a `*D_NET` section — so the parse → analyze →
//! certify pipeline can be driven and benchmarked end-to-end without a real
//! extractor in the loop.
//!
//! Only lumped resistors and grounded capacitors are emitted (SPEF has no
//! distributed-line element), so the generator forces
//! [`RandomTreeConfig::line_probability`] to zero.

use std::io;

use rctree_core::tree::RcTree;

use crate::random::RandomTreeConfig;

/// Configuration for [`spef_deck`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpefDeckParams {
    /// Number of `*D_NET` sections to generate.
    pub nets: usize,
    /// Shape of each net's RC tree.  `line_probability` is ignored (forced
    /// to zero — SPEF cannot express distributed lines).
    pub tree: RandomTreeConfig,
}

impl Default for SpefDeckParams {
    fn default() -> Self {
        SpefDeckParams {
            nets: 1000,
            tree: RandomTreeConfig {
                nodes: 12,
                line_probability: 0.0,
                resistance_range: (5.0, 500.0),
                capacitance_range: (1e-15, 50e-15),
                capacitor_probability: 0.8,
                prefer_chains: true,
            },
        }
    }
}

impl SpefDeckParams {
    /// The deterministic per-net seed: decouples net `i` from the others so
    /// decks of different sizes share a prefix of identical nets.
    fn net_seed(&self, seed: u64, i: usize) -> u64 {
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(i as u64)
    }

    /// Generates the trees of the deck without rendering them to text.
    pub fn trees(&self, seed: u64) -> Vec<(String, RcTree)> {
        let cfg = RandomTreeConfig {
            line_probability: 0.0,
            ..self.tree
        };
        (0..self.nets)
            .map(|i| (format!("net{i}"), cfg.generate(self.net_seed(seed, i))))
            .collect()
    }
}

/// Generates a SPEF-lite document with [`SpefDeckParams::nets`] `*D_NET`
/// sections, reproducibly from a seed.
///
/// The output parses with `rctree_netlist::parse_spef` and
/// `parse_spef_deck`; every leaf of every net is declared as a `*P` load
/// pin, and the `*D_NET` total-capacitance field matches the section's
/// `*CAP` entries.
///
/// Convenience wrapper over [`render_spef_deck`] for callers that want the
/// whole document in memory; million-net decks should stream instead.
pub fn spef_deck(params: &SpefDeckParams, seed: u64) -> String {
    let mut out = Vec::with_capacity(params.nets * 256);
    render_spef_deck(params, seed, &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("rendered deck is ASCII")
}

/// Streams the deck [`spef_deck`] would return — byte-identical — into any
/// writer, generating and rendering one net at a time.
///
/// Peak memory is one net's tree plus one section's text regardless of
/// [`SpefDeckParams::nets`], which is what makes million-net fixture decks
/// practical: pipe the output to a file (`rcdelay gen-deck`) instead of
/// materialising gigabytes of SPEF in memory.
///
/// # Errors
///
/// Propagates the writer's I/O errors.
pub fn render_spef_deck<W: io::Write>(
    params: &SpefDeckParams,
    seed: u64,
    out: &mut W,
) -> io::Result<()> {
    let cfg = RandomTreeConfig {
        line_probability: 0.0,
        ..params.tree
    };
    out.write_all(b"*SPEF \"IEEE 1481-1998\"\n")?;
    out.write_all(b"*DESIGN \"rctree-workloads deck\"\n")?;
    out.write_all(b"*R_UNIT 1 OHM\n")?;
    out.write_all(b"*C_UNIT 1 PF\n")?;
    let mut section = String::new();
    for i in 0..params.nets {
        let tree = cfg.generate(params.net_seed(seed, i));
        section.clear();
        render_d_net(&mut section, &format!("net{i}"), &tree);
        out.write_all(section.as_bytes())?;
    }
    Ok(())
}

/// Renders one RC tree as a `*D_NET` section.  The tree's input node is the
/// driver pin; every marked output is a `*P` load pin.
fn render_d_net(out: &mut String, name: &str, tree: &RcTree) {
    let node_name = |id| tree.name(id).expect("valid node");
    let total_pf = tree.total_capacitance().value() * 1e12;
    out.push_str(&format!("\n*D_NET {name} {total_pf}\n*CONN\n"));
    out.push_str(&format!("*I {} I\n", node_name(tree.input())));
    for id in tree.outputs() {
        out.push_str(&format!("*P {} O\n", node_name(id)));
    }
    out.push_str("*CAP\n");
    let mut index = 0;
    for id in tree.preorder() {
        let cap = tree.capacitance(id).expect("valid node");
        if !cap.is_zero() {
            index += 1;
            out.push_str(&format!(
                "{index} {} {}\n",
                node_name(id),
                cap.value() * 1e12
            ));
        }
    }
    out.push_str("*RES\n");
    let mut index = 0;
    for id in tree.preorder() {
        if id == tree.input() {
            continue;
        }
        let parent = tree.parent(id).expect("valid node").expect("non-input");
        let branch = tree.branch(id).expect("valid node").expect("non-input");
        index += 1;
        out.push_str(&format!(
            "{index} {} {} {}\n",
            node_name(parent),
            node_name(id),
            branch.resistance().value()
        ));
    }
    out.push_str("*END\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deck_is_deterministic_per_seed() {
        let params = SpefDeckParams {
            nets: 5,
            ..SpefDeckParams::default()
        };
        assert_eq!(spef_deck(&params, 42), spef_deck(&params, 42));
        assert_ne!(spef_deck(&params, 42), spef_deck(&params, 43));
    }

    #[test]
    fn deck_has_the_requested_number_of_sections() {
        let params = SpefDeckParams {
            nets: 17,
            ..SpefDeckParams::default()
        };
        let text = spef_deck(&params, 7);
        assert_eq!(text.matches("*D_NET ").count(), 17);
        assert_eq!(text.matches("*END").count(), 17);
    }

    #[test]
    fn smaller_decks_are_prefixes_net_wise() {
        let small = SpefDeckParams {
            nets: 3,
            ..SpefDeckParams::default()
        };
        let large = SpefDeckParams {
            nets: 6,
            ..SpefDeckParams::default()
        };
        let small_trees = small.trees(11);
        let large_trees = large.trees(11);
        assert_eq!(small_trees[..], large_trees[..3]);
    }

    #[test]
    fn streamed_deck_matches_the_in_memory_render() {
        let params = SpefDeckParams {
            nets: 8,
            ..SpefDeckParams::default()
        };
        let mut streamed = Vec::new();
        render_spef_deck(&params, 42, &mut streamed).unwrap();
        assert_eq!(streamed, spef_deck(&params, 42).into_bytes());
    }

    #[test]
    fn writer_errors_propagate() {
        struct Broken;
        impl io::Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "closed"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let err = render_spef_deck(&SpefDeckParams::default(), 1, &mut Broken).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn trees_are_resistor_only() {
        let params = SpefDeckParams {
            nets: 4,
            tree: RandomTreeConfig {
                line_probability: 1.0, // must be overridden
                ..SpefDeckParams::default().tree
            },
        };
        for (_, tree) in params.trees(3) {
            for id in tree.node_ids() {
                if let Some(branch) = tree.branch(id).unwrap() {
                    assert!(!branch.is_distributed());
                }
            }
        }
    }
}
