//! The MOS signal-distribution network of Figures 1–2.
//!
//! Figure 1 of the paper shows a typical MOS fan-out situation: an inverter
//! drives three gates (A, B, C), some through long polysilicon runs, one via
//! a metal line whose resistance is negligible but whose capacitance is not.
//! Figure 2 is its linear model: the pull-up is replaced by a linear
//! resistor, the poly runs by uniform RC lines, and the gates / contact cuts
//! / source diffusion by lumped capacitors.
//!
//! The paper gives no numeric values for this network, so the generator
//! derives representative ones from the Section V technology model
//! (30 Ω/□ poly, 400 Å gate oxide) and typical 1981 dimensions.  All
//! parameters can be overridden for experimentation.

use rctree_core::builder::RcTreeBuilder;
use rctree_core::tree::{NodeId, RcTree};
use rctree_core::units::{Farads, Ohms};

use crate::tech::{microns, Technology};

/// Geometric/electrical description of the Figure 1 fan-out network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosNetParams {
    /// Effective pull-up resistance of the driving inverter (Ω).
    pub pullup_resistance: f64,
    /// Capacitance at the inverter output (source diffusion + contact) (F).
    pub driver_capacitance: f64,
    /// Length of the poly run to gate A (m).
    pub poly_to_a: f64,
    /// Length of the poly run to gate B (m).
    pub poly_to_b: f64,
    /// Length of the shared poly trunk before the fan-out point (m).
    pub poly_trunk: f64,
    /// Length of the metal line to gate C (m) — contributes capacitance only.
    pub metal_to_c: f64,
    /// Width of all poly wires (m).
    pub poly_width: f64,
    /// Gate side length for the driven transistors (m).
    pub gate_size: f64,
    /// Metal capacitance per unit length (F/m).
    pub metal_cap_per_length: f64,
}

impl MosNetParams {
    /// Representative 1981 values: a 10 kΩ depletion pull-up driving ~1 mm
    /// of interconnect, the regime the introduction calls out ("wiring
    /// lengths as short as 1 mm, with 4-micron minimum feature size").
    pub fn representative() -> Self {
        MosNetParams {
            pullup_resistance: 10_000.0,
            driver_capacitance: 0.05e-12,
            poly_trunk: microns(200.0),
            poly_to_a: microns(800.0),
            poly_to_b: microns(400.0),
            metal_to_c: microns(1000.0),
            poly_width: microns(4.0),
            gate_size: microns(4.0),
            // ~0.03 fF/µm is a reasonable 1981 metal-over-field value.
            metal_cap_per_length: 0.03e-15 / 1e-6,
        }
    }
}

impl Default for MosNetParams {
    fn default() -> Self {
        Self::representative()
    }
}

/// Handles on the output nodes of the generated fan-out network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MosNetOutputs {
    /// Gate A, at the end of the long poly run.
    pub gate_a: NodeId,
    /// Gate B, at the end of the shorter poly run.
    pub gate_b: NodeId,
    /// Gate C, reached through the metal line.
    pub gate_c: NodeId,
}

/// Builds the Figure 1/2 fan-out network from the given parameters and
/// technology.
pub fn mos_fanout_tree(params: MosNetParams, tech: &Technology) -> (RcTree, MosNetOutputs) {
    let gate_cap = tech.gate_capacitance(params.gate_size, params.gate_size);

    let mut b = RcTreeBuilder::new();
    // Pull-up resistor to the inverter output node.
    let drv = b
        .add_resistor(
            b.input(),
            "inverter_out",
            Ohms::new(params.pullup_resistance),
        )
        .expect("static construction");
    b.add_capacitance(drv, Farads::new(params.driver_capacitance))
        .expect("static construction");

    // Shared poly trunk to the fan-out point.
    let trunk = b
        .add_line(
            drv,
            "trunk",
            tech.poly_wire_resistance(params.poly_trunk, params.poly_width),
            tech.poly_wire_capacitance(params.poly_trunk, params.poly_width),
        )
        .expect("static construction");

    // Branch A: long poly run.
    let gate_a = b
        .add_line(
            trunk,
            "gate_a",
            tech.poly_wire_resistance(params.poly_to_a, params.poly_width),
            tech.poly_wire_capacitance(params.poly_to_a, params.poly_width),
        )
        .expect("static construction");
    b.add_capacitance(gate_a, gate_cap)
        .expect("static construction");
    b.mark_output(gate_a).expect("static construction");

    // Branch B: shorter poly run.
    let gate_b = b
        .add_line(
            trunk,
            "gate_b",
            tech.poly_wire_resistance(params.poly_to_b, params.poly_width),
            tech.poly_wire_capacitance(params.poly_to_b, params.poly_width),
        )
        .expect("static construction");
    b.add_capacitance(gate_b, gate_cap)
        .expect("static construction");
    b.mark_output(gate_b).expect("static construction");

    // Branch C: metal line — resistance neglected, capacitance kept
    // (paper: "The resistance of the metal line is neglected, but its
    // parasitic capacitance remains").
    let gate_c = b
        .add_line(
            drv,
            "gate_c",
            Ohms::ZERO,
            Farads::new(params.metal_cap_per_length * params.metal_to_c),
        )
        .expect("static construction");
    b.add_capacitance(gate_c, gate_cap)
        .expect("static construction");
    b.mark_output(gate_c).expect("static construction");

    let tree = b.build().expect("static construction");
    (
        tree,
        MosNetOutputs {
            gate_a,
            gate_b,
            gate_c,
        },
    )
}

/// Convenience constructor with the representative parameters and the
/// paper's technology.
pub fn representative_mos_fanout() -> (RcTree, MosNetOutputs) {
    mos_fanout_tree(MosNetParams::representative(), &Technology::paper_1981())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rctree_core::analysis::TreeAnalysis;
    use rctree_core::moments::characteristic_times;
    use rctree_core::units::Seconds;

    #[test]
    fn network_has_three_outputs() {
        let (tree, outs) = representative_mos_fanout();
        let marked: Vec<NodeId> = tree.outputs().collect();
        assert_eq!(marked.len(), 3);
        assert!(marked.contains(&outs.gate_a));
        assert!(marked.contains(&outs.gate_b));
        assert!(marked.contains(&outs.gate_c));
    }

    #[test]
    fn long_poly_branch_is_the_slowest() {
        let (tree, outs) = representative_mos_fanout();
        let a = characteristic_times(&tree, outs.gate_a).unwrap();
        let b = characteristic_times(&tree, outs.gate_b).unwrap();
        let c = characteristic_times(&tree, outs.gate_c).unwrap();
        assert!(a.t_d > b.t_d);
        assert!(b.t_d > c.t_d);
        let analysis = TreeAnalysis::of(&tree).unwrap();
        assert_eq!(analysis.critical_output().node, outs.gate_a);
    }

    #[test]
    fn delays_are_in_the_nanosecond_regime() {
        // The introduction motivates the method with interconnect delay
        // "comparable to or longer than active-device delay" at ~1 mm wire
        // lengths; the representative network should land in the ns range.
        let (tree, outs) = representative_mos_fanout();
        let t = characteristic_times(&tree, outs.gate_a).unwrap();
        let b = t.delay_bounds(0.7).unwrap();
        assert!(b.upper > Seconds::from_nano(0.1));
        assert!(b.upper < Seconds::from_nano(1000.0));
    }

    #[test]
    fn bounds_are_tight_when_pullup_dominates() {
        // "The results ... are very tight in the case where most of the
        // resistance is in the pullup."  Compare the relative bound width of
        // the default network against one whose pull-up dominates even more.
        let tech = Technology::paper_1981();
        let mut weak = MosNetParams::representative();
        weak.pullup_resistance = 100_000.0;
        let (tree_dom, outs_dom) = mos_fanout_tree(weak, &tech);
        let (tree_std, outs_std) = representative_mos_fanout();
        let width = |tree: &RcTree, out: NodeId| {
            characteristic_times(tree, out)
                .unwrap()
                .delay_bounds(0.5)
                .unwrap()
                .relative_uncertainty()
        };
        assert!(width(&tree_dom, outs_dom.gate_a) < width(&tree_std, outs_std.gate_a));
    }

    #[test]
    fn metal_branch_has_zero_path_resistance_beyond_driver() {
        let (tree, outs) = representative_mos_fanout();
        let r = tree.resistance_from_input(outs.gate_c).unwrap();
        assert_eq!(
            r,
            Ohms::new(MosNetParams::representative().pullup_resistance)
        );
    }

    #[test]
    fn all_outputs_satisfy_the_ordering_invariant() {
        let (tree, _) = representative_mos_fanout();
        for out in tree.outputs().collect::<Vec<_>>() {
            let t = characteristic_times(&tree, out).unwrap();
            assert!(t.satisfies_ordering());
        }
    }
}
