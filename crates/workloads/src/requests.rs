//! Seeded request mixes for the `rctree-serve` wire protocol.
//!
//! Generates, reproducibly from a seed, one request script per client
//! connection: a weighted blend of `QUERY <net>`, `QUERY <net> <node>`,
//! `REPORT`, `CERTIFY <budget>` and (optionally) `ECO` directive lines
//! over the nets of a generated deck.  This is the workload behind
//! `rcdelay bench-client` and the concurrent-session equivalence tests —
//! the same `(seed, connection)` pair always produces the same script, so
//! a captured server run can be replayed exactly.

use rctree_core::tree::RcTree;

use crate::rng::Rng;

/// Shape of a generated request mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestMixParams {
    /// Requests per connection script.
    pub requests_per_connection: usize,
    /// Fraction of requests that are `ECO` directive lines (0.0 for a
    /// read-only mix).
    pub eco_fraction: f64,
    /// Budget (seconds) used by generated `CERTIFY` requests.
    pub certify_budget: f64,
}

impl Default for RequestMixParams {
    fn default() -> Self {
        RequestMixParams {
            requests_per_connection: 100,
            eco_fraction: 0.0,
            certify_budget: 100e-9,
        }
    }
}

/// Net-name plus node-name metadata the generator draws from.
#[derive(Debug, Clone)]
struct NetNodes {
    name: String,
    /// All node names, in pre-order (the input node first).
    nodes: Vec<String>,
}

fn net_nodes(nets: &[(String, RcTree)]) -> Vec<NetNodes> {
    nets.iter()
        .map(|(name, tree)| NetNodes {
            name: name.clone(),
            nodes: tree
                .preorder()
                .into_iter()
                .map(|id| tree.name(id).expect("valid node").to_string())
                .collect(),
        })
        .collect()
}

/// One seeded request script per connection over the given `(name, tree)`
/// deck nets.
///
/// ECO directives are value edits only (`setcap` anywhere, `setline` on
/// non-input nodes) with absolute values, so the design never drifts
/// structurally and every generated request stays valid against any
/// serialization of the edit stream.  Weights for the read verbs:
/// 55% `QUERY <net>`, 20% `QUERY <net> <node>`, 15% `REPORT`,
/// 10% `CERTIFY`.
///
/// # Panics
///
/// Panics if `nets` is empty.
pub fn request_mix(
    nets: &[(String, RcTree)],
    connections: usize,
    params: &RequestMixParams,
    seed: u64,
) -> Vec<Vec<String>> {
    assert!(!nets.is_empty(), "request mix needs at least one net");
    let nets = net_nodes(nets);
    (0..connections)
        .map(|conn| {
            let mut rng = Rng::from_seed(
                seed.wrapping_mul(0xA076_1D64_78BD_642F)
                    .wrapping_add(conn as u64 + 1),
            );
            (0..params.requests_per_connection)
                .map(|_| one_request(&nets, params, &mut rng))
                .collect()
        })
        .collect()
}

fn one_request(nets: &[NetNodes], params: &RequestMixParams, rng: &mut Rng) -> String {
    let net = &nets[rng.index(nets.len())];
    one_request_for(net, params, rng)
}

fn one_request_for(net: &NetNodes, params: &RequestMixParams, rng: &mut Rng) -> String {
    if rng.chance(params.eco_fraction) {
        return eco_request(net, rng);
    }
    match rng.uniform() {
        u if u < 0.55 => format!("QUERY {}", net.name),
        u if u < 0.75 => {
            let node = &net.nodes[rng.index(net.nodes.len())];
            format!("QUERY {} {node}", net.name)
        }
        u if u < 0.90 => "REPORT".to_string(),
        _ => format!("CERTIFY {:e}", params.certify_budget),
    }
}

/// The shard owning deck net `index` of `total` under an `shards`-way
/// net-range partition — the client-side mirror of
/// [`rctree_sta::Design::partition`]'s contiguous component split (each
/// deck net of an extracted design is one connected component, in deck
/// order).
///
/// # Panics
///
/// Panics if `index >= total`.
pub fn shard_of(index: usize, total: usize, shards: usize) -> usize {
    assert!(index < total, "net index out of range");
    let count = shards.clamp(1, total);
    index * count / total
}

/// One seeded *shard-crossing* request script per connection: request `r`
/// of connection `c` targets shard `(c + r) % shards`, so every
/// connection's consecutive requests hop across all writer shards (ECOs
/// land on rotating shards, never spanning two) while `REPORT`/`CERTIFY`
/// requests exercise cross-shard composition throughout.
///
/// With `shards == 1` this degenerates to a valid (though differently
/// seeded-per-request) single-shard mix.  Determinism contract matches
/// [`request_mix`]: same `(seed, connection)` → same script.
///
/// # Panics
///
/// Panics if `nets` is empty.
pub fn shard_crossing_mix(
    nets: &[(String, RcTree)],
    connections: usize,
    params: &RequestMixParams,
    shards: usize,
    seed: u64,
) -> Vec<Vec<String>> {
    assert!(!nets.is_empty(), "request mix needs at least one net");
    let meta = net_nodes(nets);
    let count = shards.clamp(1, meta.len());
    let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); count];
    for i in 0..meta.len() {
        by_shard[shard_of(i, meta.len(), count)].push(i);
    }
    (0..connections)
        .map(|conn| {
            let mut rng = Rng::from_seed(
                seed.wrapping_mul(0xA076_1D64_78BD_642F)
                    .wrapping_add(conn as u64 + 1),
            );
            (0..params.requests_per_connection)
                .map(|r| {
                    let pool = &by_shard[(conn + r) % count];
                    let net = &meta[pool[rng.index(pool.len())]];
                    one_request_for(net, params, &mut rng)
                })
                .collect()
        })
        .collect()
}

fn eco_request(net: &NetNodes, rng: &mut Rng) -> String {
    let setcap = |rng: &mut Rng| {
        let node = &net.nodes[rng.index(net.nodes.len())];
        let cap = rng.range_f64(0.5e-15, 60e-15);
        format!("setcap {} {node} {cap:e}", net.name)
    };
    // `setline` rewires the branch feeding a node, so it needs a non-input
    // node; single-node nets fall back to a capacitance edit.
    let setline = |rng: &mut Rng| {
        if net.nodes.len() < 2 {
            return setcap(rng);
        }
        let node = &net.nodes[1 + rng.index(net.nodes.len() - 1)];
        let r = rng.range_f64(5.0, 400.0);
        let c = rng.range_f64(0.5e-15, 20e-15);
        format!("setline {} {node} {r:e} {c:e}", net.name)
    };
    let first = if rng.chance(0.7) {
        setcap(rng)
    } else {
        setline(rng)
    };
    // Sometimes batch two directives on one request line, exercising the
    // multi-edit `;` path end to end.
    if rng.chance(0.25) {
        let second = setcap(rng);
        format!("ECO {first}; {second}")
    } else {
        format!("ECO {first}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deck::SpefDeckParams;

    fn trees() -> Vec<(String, RcTree)> {
        SpefDeckParams {
            nets: 6,
            ..SpefDeckParams::default()
        }
        .trees(11)
    }

    #[test]
    fn mixes_are_deterministic_per_seed_and_connection() {
        let nets = trees();
        let params = RequestMixParams {
            requests_per_connection: 40,
            eco_fraction: 0.3,
            ..RequestMixParams::default()
        };
        let a = request_mix(&nets, 3, &params, 7);
        let b = request_mix(&nets, 3, &params, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|s| s.len() == 40));
        // Connections draw distinct streams.
        assert_ne!(a[0], a[1]);
        // A different seed changes the scripts.
        assert_ne!(a, request_mix(&nets, 3, &params, 8));
    }

    #[test]
    fn read_only_mix_contains_no_eco() {
        let nets = trees();
        let params = RequestMixParams {
            requests_per_connection: 200,
            eco_fraction: 0.0,
            ..RequestMixParams::default()
        };
        let scripts = request_mix(&nets, 2, &params, 3);
        assert!(scripts.iter().flatten().all(|r| !r.starts_with("ECO")));
        // Every read verb shows up at this volume.
        let all: Vec<&String> = scripts.iter().flatten().collect();
        assert!(all.iter().any(|r| r.starts_with("QUERY ")));
        assert!(all.iter().any(|r| *r == "REPORT"));
        assert!(all.iter().any(|r| r.starts_with("CERTIFY ")));
        assert!(all
            .iter()
            .any(|r| r.starts_with("QUERY ") && r.split_whitespace().count() == 3));
    }

    #[test]
    fn shard_of_is_a_contiguous_clamped_partition() {
        // 6 nets over 3 shards: 2 per shard, contiguous, in order.
        let owners: Vec<usize> = (0..6).map(|i| shard_of(i, 6, 3)).collect();
        assert_eq!(owners, [0, 0, 1, 1, 2, 2]);
        // Monotone non-decreasing even when the split is uneven.
        let uneven: Vec<usize> = (0..7).map(|i| shard_of(i, 7, 4)).collect();
        assert!(uneven.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*uneven.last().unwrap(), 3);
        // More shards than nets clamps to one net per shard.
        assert_eq!(shard_of(1, 2, 8), 1);
        // Zero shards behaves as one.
        assert_eq!(shard_of(5, 6, 0), 0);
    }

    #[test]
    fn shard_crossing_mix_rotates_target_shards_and_is_deterministic() {
        let nets = trees();
        let params = RequestMixParams {
            requests_per_connection: 60,
            eco_fraction: 0.5,
            ..RequestMixParams::default()
        };
        let a = shard_crossing_mix(&nets, 3, &params, 3, 9);
        assert_eq!(a, shard_crossing_mix(&nets, 3, &params, 3, 9));
        assert_ne!(a, shard_crossing_mix(&nets, 3, &params, 3, 10));
        // Request r of connection c names a net owned by shard (c + r) % 3
        // whenever the request names a net at all.
        for (conn, script) in a.iter().enumerate() {
            for (r, request) in script.iter().enumerate() {
                let expected = (conn + r) % 3;
                let net = if let Some(rest) = request.strip_prefix("QUERY ") {
                    rest.split_whitespace().next().unwrap().to_string()
                } else if let Some(rest) = request.strip_prefix("ECO ") {
                    rest.split_whitespace().nth(1).unwrap().to_string()
                } else {
                    continue;
                };
                let index = nets.iter().position(|(n, _)| *n == net).expect("deck net");
                assert_eq!(
                    shard_of(index, nets.len(), 3),
                    expected,
                    "request `{request}` off its rotation slot"
                );
            }
        }
        // Every generated ECO stays single-shard: all nets in one request
        // line agree on an owner (the generator reuses one net per line).
        for request in a.iter().flatten().filter(|r| r.starts_with("ECO ")) {
            let body = request.strip_prefix("ECO ").unwrap();
            let owners: Vec<usize> = body
                .split(';')
                .map(|d| {
                    let net = d.split_whitespace().nth(1).unwrap();
                    let index = nets.iter().position(|(n, _)| *n == net).unwrap();
                    shard_of(index, nets.len(), 3)
                })
                .collect();
            assert!(owners.windows(2).all(|w| w[0] == w[1]), "{request}");
        }
    }

    #[test]
    fn eco_mix_emits_valid_directive_lines() {
        let nets = trees();
        let params = RequestMixParams {
            requests_per_connection: 300,
            eco_fraction: 0.5,
            ..RequestMixParams::default()
        };
        let scripts = request_mix(&nets, 1, &params, 5);
        let ecos: Vec<&String> = scripts[0]
            .iter()
            .filter(|r| r.starts_with("ECO "))
            .collect();
        assert!(!ecos.is_empty());
        assert!(
            ecos.iter().any(|r| r.contains(';')),
            "multi-edit lines occur"
        );
        for r in ecos {
            let line = r.strip_prefix("ECO ").unwrap();
            // Every generated directive parses under the shared grammar.
            let parsed = rctree_sta::script::parse_eco_script_line(1, line).unwrap();
            assert!(matches!(parsed, rctree_sta::ScriptLine::Edits(_)));
        }
    }
}
