//! Symmetric H-tree clock-distribution networks.
//!
//! Clock distribution is the classic consumer of RC-tree delay bounds: a
//! driver feeds a binary tree of wires whose leaves are the clocked
//! elements, and the designer must certify that every leaf switches within
//! the clock budget (the paper's third use-case).  The H-tree generator
//! produces a symmetric binary tree of `levels` levels in which the wire
//! segments halve in length (and therefore resistance and capacitance) at
//! every level, as in a physical H-tree layout.

use rctree_core::builder::RcTreeBuilder;
use rctree_core::tree::{NodeId, RcTree};
use rctree_core::units::{Farads, Ohms};

/// Parameters of an H-tree clock network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HTreeParams {
    /// Driver (clock buffer) output resistance (Ω).
    pub driver_resistance: f64,
    /// Resistance of the top-level wire segment (Ω); each level halves it.
    pub top_segment_resistance: f64,
    /// Capacitance of the top-level wire segment (F); each level halves it.
    pub top_segment_capacitance: f64,
    /// Load capacitance at every leaf (F).
    pub leaf_capacitance: f64,
    /// Number of branching levels (the tree has `2^levels` leaves).
    pub levels: usize,
}

impl Default for HTreeParams {
    fn default() -> Self {
        HTreeParams {
            driver_resistance: 100.0,
            top_segment_resistance: 200.0,
            top_segment_capacitance: 0.2e-12,
            leaf_capacitance: 0.02e-12,
            levels: 4,
        }
    }
}

/// Builds the H-tree and returns it together with its leaf nodes (all marked
/// as outputs).
///
/// # Panics
///
/// Panics if `params.levels` is zero.
pub fn h_tree(params: HTreeParams) -> (RcTree, Vec<NodeId>) {
    assert!(params.levels > 0, "an H-tree needs at least one level");
    let mut b = RcTreeBuilder::new();
    let root = b
        .add_resistor(b.input(), "buffer", Ohms::new(params.driver_resistance))
        .expect("static construction");

    let mut frontier = vec![root];
    let mut leaves = Vec::new();
    for level in 0..params.levels {
        let scale = 0.5_f64.powi(level as i32);
        let r = Ohms::new(params.top_segment_resistance * scale);
        let c = Farads::new(params.top_segment_capacitance * scale);
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for (i, &parent) in frontier.iter().enumerate() {
            for side in ["l", "r"] {
                let name = format!("n{level}_{i}{side}");
                let child = b.add_line(parent, name, r, c).expect("static construction");
                next.push(child);
            }
        }
        frontier = next;
    }
    for &leaf in &frontier {
        b.add_capacitance(leaf, Farads::new(params.leaf_capacitance))
            .expect("static construction");
        b.mark_output(leaf).expect("static construction");
        leaves.push(leaf);
    }
    let tree = b.build().expect("static construction");
    (tree, leaves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rctree_core::analysis::TreeAnalysis;
    use rctree_core::moments::characteristic_times;

    #[test]
    fn leaf_count_is_two_to_the_levels() {
        for levels in 1..=5 {
            let (_, leaves) = h_tree(HTreeParams {
                levels,
                ..HTreeParams::default()
            });
            assert_eq!(leaves.len(), 1 << levels);
        }
    }

    #[test]
    fn symmetric_tree_has_identical_leaf_delays() {
        let (tree, leaves) = h_tree(HTreeParams::default());
        let first = characteristic_times(&tree, leaves[0]).unwrap();
        for &leaf in &leaves[1..] {
            let t = characteristic_times(&tree, leaf).unwrap();
            assert!((t.t_d.value() - first.t_d.value()).abs() < 1e-12 * first.t_d.value());
            assert!((t.t_r.value() - first.t_r.value()).abs() < 1e-12 * first.t_r.value());
        }
    }

    #[test]
    fn whole_tree_analysis_certifies_uniformly() {
        let (tree, _) = h_tree(HTreeParams::default());
        let analysis = TreeAnalysis::of(&tree).unwrap();
        let worst = analysis.worst_delay_upper_bound(0.9).unwrap();
        // With a comfortable budget every leaf passes.
        let verdict = analysis
            .certify_all(0.9, worst + rctree_core::units::Seconds::from_pico(1.0))
            .unwrap();
        assert!(verdict.is_pass());
    }

    #[test]
    fn deeper_trees_are_slower() {
        let delay = |levels: usize| {
            let (tree, leaves) = h_tree(HTreeParams {
                levels,
                ..HTreeParams::default()
            });
            characteristic_times(&tree, leaves[0]).unwrap().t_d
        };
        assert!(delay(3) > delay(2));
        assert!(delay(4) > delay(3));
    }

    #[test]
    fn node_count_matches_structure() {
        let levels = 3;
        let (tree, _) = h_tree(HTreeParams {
            levels,
            ..HTreeParams::default()
        });
        // input + buffer + sum_{l=1..levels} 2^l internal/leaf nodes.
        let expected = 2 + (2usize.pow(levels as u32 + 1) - 2);
        assert_eq!(tree.node_count(), expected);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        let _ = h_tree(HTreeParams {
            levels: 0,
            ..HTreeParams::default()
        });
    }
}
