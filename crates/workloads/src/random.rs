//! Seeded random RC-tree generation.
//!
//! Property-based tests and the validity experiments ("the exact response
//! always lies between the bounds") need a large supply of structurally
//! diverse RC trees.  [`RandomTreeConfig`] generates them reproducibly from
//! a seed: every non-input node attaches to a uniformly chosen existing
//! node, branches are randomly lumped resistors or distributed lines, and
//! every leaf is marked as an output.

use rctree_core::builder::RcTreeBuilder;
use rctree_core::tree::RcTree;
use rctree_core::units::{Farads, Ohms};

use crate::rng::Rng;

/// Configuration for the random tree generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomTreeConfig {
    /// Number of nodes to generate (excluding the input).
    pub nodes: usize,
    /// Probability that a branch is a distributed line rather than a lumped
    /// resistor.
    pub line_probability: f64,
    /// Resistance range for branches (Ω).
    pub resistance_range: (f64, f64),
    /// Capacitance range for node capacitors and line capacitances (F).
    pub capacitance_range: (f64, f64),
    /// Probability that a node carries a lumped capacitor.
    pub capacitor_probability: f64,
    /// If `true`, attach each new node to the previously created node with
    /// 50% probability (producing deeper trees); otherwise attach uniformly.
    pub prefer_chains: bool,
}

impl Default for RandomTreeConfig {
    fn default() -> Self {
        RandomTreeConfig {
            nodes: 20,
            line_probability: 0.4,
            resistance_range: (1.0, 1000.0),
            capacitance_range: (1e-15, 1e-12),
            capacitor_probability: 0.7,
            prefer_chains: true,
        }
    }
}

impl RandomTreeConfig {
    /// Generates a tree from the given seed.
    ///
    /// The same `(config, seed)` pair always produces the same tree.  At
    /// least one capacitor is guaranteed (so the tree is always analysable)
    /// and every leaf is marked as an output.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or a range is inverted.
    pub fn generate(&self, seed: u64) -> RcTree {
        assert!(self.nodes > 0, "need at least one node");
        assert!(
            self.resistance_range.0 <= self.resistance_range.1
                && self.capacitance_range.0 <= self.capacitance_range.1,
            "ranges must be ordered"
        );
        let mut rng = Rng::from_seed(seed);
        let mut b = RcTreeBuilder::new();
        let mut ids = vec![b.input()];

        for i in 1..=self.nodes {
            let parent = if self.prefer_chains && rng.chance(0.5) {
                *ids.last().expect("non-empty")
            } else {
                ids[rng.index(ids.len())]
            };
            let r = Ohms::new(rng.range_f64(self.resistance_range.0, self.resistance_range.1));
            let name = format!("n{i}");
            let node = if rng.chance(self.line_probability) {
                let c =
                    Farads::new(rng.range_f64(self.capacitance_range.0, self.capacitance_range.1));
                b.add_line(parent, name, r, c)
                    .expect("generated values are valid")
            } else {
                b.add_resistor(parent, name, r)
                    .expect("generated values are valid")
            };
            if rng.chance(self.capacitor_probability) {
                let c =
                    Farads::new(rng.range_f64(self.capacitance_range.0, self.capacitance_range.1));
                b.add_capacitance(node, c)
                    .expect("generated values are valid");
            }
            ids.push(node);
        }

        // Guarantee at least one capacitor so the analysis never degenerates.
        let last = *ids.last().expect("non-empty");
        b.add_capacitance(
            last,
            Farads::new(self.capacitance_range.1.max(self.capacitance_range.0)),
        )
        .expect("generated values are valid");

        // Mark every leaf as an output; if the tree is a single chain the
        // last node is the only leaf.
        let tree_preview = b.clone().build().expect("at least one capacitor exists");
        for id in tree_preview.node_ids() {
            let is_leaf = tree_preview.children(id).expect("valid").is_empty();
            if is_leaf && id != tree_preview.input() {
                b.mark_output(id).expect("valid node");
            }
        }
        b.build().expect("at least one capacitor exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rctree_core::moments::{characteristic_times, characteristic_times_direct};

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = RandomTreeConfig::default();
        let a = cfg.generate(42);
        let b = cfg.generate(42);
        assert_eq!(a, b);
        let c = cfg.generate(43);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_trees_have_requested_size_and_outputs() {
        let cfg = RandomTreeConfig {
            nodes: 50,
            ..RandomTreeConfig::default()
        };
        let tree = cfg.generate(7);
        assert_eq!(tree.node_count(), 51);
        assert!(tree.outputs().count() >= 1);
        assert!(tree.total_capacitance().value() > 0.0);
    }

    #[test]
    fn every_output_satisfies_the_ordering_invariant() {
        for seed in 0..20 {
            let tree = RandomTreeConfig::default().generate(seed);
            for out in tree.outputs().collect::<Vec<_>>() {
                let t = characteristic_times(&tree, out).unwrap();
                assert!(t.satisfies_ordering(), "seed {seed}");
            }
        }
    }

    #[test]
    fn fast_and_direct_algorithms_agree_on_random_trees() {
        for seed in 0..10 {
            let tree = RandomTreeConfig {
                nodes: 30,
                ..RandomTreeConfig::default()
            }
            .generate(seed);
            for out in tree.outputs().collect::<Vec<_>>() {
                let fast = characteristic_times(&tree, out).unwrap();
                let slow = characteristic_times_direct(&tree, out).unwrap();
                let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-30);
                assert!(
                    rel(fast.t_p.value(), slow.t_p.value()) < 1e-9,
                    "seed {seed}"
                );
                assert!(
                    rel(fast.t_d.value(), slow.t_d.value()) < 1e-9,
                    "seed {seed}"
                );
                assert!(
                    rel(fast.t_r.value(), slow.t_r.value()) < 1e-9,
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn pure_resistor_trees_can_be_generated() {
        let cfg = RandomTreeConfig {
            line_probability: 0.0,
            capacitor_probability: 1.0,
            ..RandomTreeConfig::default()
        };
        let tree = cfg.generate(3);
        // No distributed branches at all.
        for id in tree.node_ids() {
            if let Some(branch) = tree.branch(id).unwrap() {
                assert!(!branch.is_distributed());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = RandomTreeConfig {
            nodes: 0,
            ..RandomTreeConfig::default()
        }
        .generate(1);
    }
}
