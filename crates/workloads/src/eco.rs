//! Seeded ECO edit-stream generation.
//!
//! The incremental engine (`rctree_core::incremental`) needs realistic
//! edit traffic to be validated and benchmarked against: single-capacitor
//! tweaks (load changes), branch resizes (driver/wire sizing bursts),
//! subtree grafts (buffer insertion, re-extraction) and prunes.  An
//! [`EcoStream`] produces such a stream deterministically from a seed,
//! *against the evolving tree*: each call to [`EcoStream::next_edit`]
//! inspects the tree's current state, so the stream stays valid across
//! structural edits that renumber node ids.
//!
//! ```
//! use rctree_core::incremental::EditableTree;
//! use rctree_workloads::eco::{EcoStream, EcoStreamParams};
//! use rctree_workloads::htree::{h_tree, HTreeParams};
//!
//! let (tree, _) = h_tree(HTreeParams::default());
//! let mut eco = EditableTree::new(tree);
//! let mut stream = EcoStream::new(EcoStreamParams::default(), 7);
//! for _ in 0..20 {
//!     let edit = stream.next_edit(eco.tree());
//!     eco.apply(&edit).expect("generated edits are valid");
//! }
//! assert!(eco.times().total_capacitance().value() > 0.0);
//! ```

use rctree_core::builder::RcTreeBuilder;
use rctree_core::element::Branch;
use rctree_core::incremental::TreeEdit;
use rctree_core::tree::{NodeId, RcTree};
use rctree_core::units::{Farads, Ohms};

use crate::rng::Rng;

/// Shape of a generated edit stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcoStreamParams {
    /// Relative weight of single-capacitor tweaks.
    pub p_set_cap: f64,
    /// Relative weight of branch resizes.
    pub p_set_branch: f64,
    /// Relative weight of subtree grafts.
    pub p_graft: f64,
    /// Relative weight of subtree prunes.
    pub p_prune: f64,
    /// Multiplicative range applied to existing values (kept away from
    /// zero so repeated edits cannot cancel catastrophically).
    pub scale_range: (f64, f64),
    /// Maximum node count of a grafted chain.
    pub graft_nodes: usize,
}

impl Default for EcoStreamParams {
    fn default() -> Self {
        EcoStreamParams {
            p_set_cap: 0.55,
            p_set_branch: 0.25,
            p_graft: 0.12,
            p_prune: 0.08,
            scale_range: (0.25, 4.0),
            graft_nodes: 3,
        }
    }
}

impl EcoStreamParams {
    /// A stream of single-capacitor tweaks only (the canonical hot ECO
    /// op, used by the `eco_throughput` benchmark).
    pub fn caps_only() -> Self {
        EcoStreamParams {
            p_set_cap: 1.0,
            p_set_branch: 0.0,
            p_graft: 0.0,
            p_prune: 0.0,
            ..EcoStreamParams::default()
        }
    }
}

/// A deterministic, stateful generator of [`TreeEdit`]s.
///
/// The same `(params, seed)` pair fed the same sequence of tree states
/// produces the same edits.  Generated edits are always valid for the tree
/// they were generated against: prunes never target the input, never
/// remove the tree's entire capacitance, and grafted names are fresh.
#[derive(Debug, Clone)]
pub struct EcoStream {
    rng: Rng,
    params: EcoStreamParams,
    /// Monotone counter behind fresh graft node names.
    fresh: usize,
}

impl EcoStream {
    /// Creates a stream from the given seed.
    pub fn new(params: EcoStreamParams, seed: u64) -> Self {
        EcoStream {
            rng: Rng::from_seed(seed),
            params,
            fresh: 0,
        }
    }

    /// Generates the next edit against the tree's current state.
    pub fn next_edit(&mut self, tree: &RcTree) -> TreeEdit {
        let weights = [
            self.params.p_set_cap,
            self.params.p_set_branch,
            self.params.p_graft,
            self.params.p_prune,
        ];
        let total: f64 = weights.iter().sum();
        let mut roll = self.rng.uniform() * total.max(f64::MIN_POSITIVE);
        let mut op = 0;
        for (k, w) in weights.iter().enumerate() {
            if roll < *w {
                op = k;
                break;
            }
            roll -= w;
        }
        match op {
            1 => self.set_branch(tree).unwrap_or_else(|| self.set_cap(tree)),
            2 => self.graft(tree),
            3 => self.prune(tree).unwrap_or_else(|| self.set_cap(tree)),
            _ => self.set_cap(tree),
        }
    }

    /// A node-capacitance scale well away from degenerate values.
    fn scale(&mut self) -> f64 {
        let (lo, hi) = self.params.scale_range;
        self.rng.range_f64(lo, hi)
    }

    fn pick_node(&mut self, tree: &RcTree) -> NodeId {
        let idx = self.rng.index(tree.node_count());
        tree.node_ids().nth(idx).expect("index in range")
    }

    /// A representative capacitance for nodes that currently carry none.
    fn typical_cap(tree: &RcTree) -> f64 {
        let avg = tree.total_capacitance().value() / tree.node_count() as f64;
        if avg > 0.0 {
            avg
        } else {
            1e-15
        }
    }

    fn set_cap(&mut self, tree: &RcTree) -> TreeEdit {
        let node = self.pick_node(tree);
        let old = tree.capacitance(node).expect("valid node").value();
        let base = if old > 0.0 {
            old
        } else {
            Self::typical_cap(tree)
        };
        TreeEdit::SetCap {
            node,
            cap: Farads::new(base * self.scale()),
        }
    }

    fn set_branch(&mut self, tree: &RcTree) -> Option<TreeEdit> {
        if tree.node_count() < 2 {
            return None;
        }
        let idx = 1 + self.rng.index(tree.node_count() - 1);
        let node = tree.node_ids().nth(idx).expect("index in range");
        let old = tree.branch(node).expect("valid node").expect("non-input");
        let r = Ohms::new(old.resistance().value().max(1e-3) * self.scale());
        // Dropping a line's distributed capacitance may not drain the
        // tree's entire capacitance (the analysis would become undefined).
        let drop_keeps_capacitance = {
            let total = tree.total_capacitance().value();
            total - old.capacitance().value() > 1e-6 * total
        };
        // Occasionally flip the element kind (re-extraction changing a
        // lumped resistor into a distributed line or back).
        let branch = if self.rng.chance(0.25) {
            match old {
                Branch::Resistor { .. } => {
                    Branch::line(r, Farads::new(Self::typical_cap(tree) * self.scale()))
                }
                Branch::Line { .. } if drop_keeps_capacitance => Branch::resistor(r),
                Branch::Line { capacitance, .. } => Branch::line(
                    r,
                    Farads::new(capacitance.value().max(1e-18) * self.scale()),
                ),
            }
        } else {
            match old {
                Branch::Resistor { .. } => Branch::resistor(r),
                Branch::Line { capacitance, .. } => Branch::line(
                    r,
                    Farads::new(capacitance.value().max(1e-18) * self.scale()),
                ),
            }
        };
        Some(TreeEdit::SetBranch { node, branch })
    }

    fn graft(&mut self, tree: &RcTree) -> TreeEdit {
        let parent = self.pick_node(tree);
        // Fresh, collision-free name prefix.
        let mut tag = self.fresh;
        while tree.node_by_name(&format!("eco{tag}_0")).is_ok() {
            tag += 1;
        }
        self.fresh = tag + 1;

        let typical = Self::typical_cap(tree);
        let typical_r = {
            let avg = tree.total_resistance().value() / tree.branch_count().max(1) as f64;
            if avg > 0.0 {
                avg
            } else {
                10.0
            }
        };
        let nodes = 1 + self.rng.index(self.params.graft_nodes.max(1));
        let mut b = RcTreeBuilder::with_input_name(format!("eco{tag}_0"));
        b.add_capacitance(b.input(), Farads::new(typical * self.scale()))
            .expect("generated values are valid");
        let mut cur = b.input();
        for j in 1..nodes {
            let r = Ohms::new(typical_r * self.scale());
            let name = format!("eco{tag}_{j}");
            cur = if self.rng.chance(0.4) {
                b.add_line(cur, name, r, Farads::new(typical * self.scale()))
            } else {
                b.add_resistor(cur, name, r)
            }
            .expect("generated values are valid");
            if self.rng.chance(0.7) {
                b.add_capacitance(cur, Farads::new(typical * self.scale()))
                    .expect("generated values are valid");
            }
        }
        if self.rng.chance(0.5) {
            b.mark_output(cur).expect("valid node");
        }
        TreeEdit::GraftSubtree {
            parent,
            via: Branch::line(
                Ohms::new(typical_r * self.scale()),
                Farads::new(if self.rng.chance(0.5) {
                    typical * self.scale()
                } else {
                    0.0
                }),
            ),
            subtree: Box::new(b.build().expect("grafted chain always has capacitance")),
        }
    }

    fn prune(&mut self, tree: &RcTree) -> Option<TreeEdit> {
        let n = tree.node_count();
        if n < 3 {
            return None;
        }
        let total = tree.total_capacitance().value();
        for _ in 0..4 {
            let idx = 1 + self.rng.index(n - 1);
            let node = tree.node_ids().nth(idx).expect("index in range");
            let removed = tree.subtree_capacitance(node).expect("valid node").value()
                + tree
                    .branch(node)
                    .expect("valid node")
                    .map_or(0.0, |b| b.capacitance().value());
            let small_enough = tree.subtree_size(node).expect("valid node") <= n / 2;
            let keeps_capacitance = total - removed > 1e-6 * total;
            if small_enough && keeps_capacitance {
                return Some(TreeEdit::PruneSubtree { node });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rctree_core::incremental::EditableTree;

    use crate::htree::{h_tree, HTreeParams};
    use crate::random::RandomTreeConfig;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let make = |seed| {
            let tree = RandomTreeConfig::default().generate(3);
            let mut eco = EditableTree::new(tree);
            let mut stream = EcoStream::new(EcoStreamParams::default(), seed);
            let mut log = Vec::new();
            for _ in 0..25 {
                let edit = stream.next_edit(eco.tree());
                log.push(format!("{edit:?}"));
                eco.apply(&edit).expect("generated edits are valid");
            }
            (log, eco.tree().clone())
        };
        let (log_a, tree_a) = make(11);
        let (log_b, tree_b) = make(11);
        assert_eq!(log_a, log_b);
        assert_eq!(tree_a, tree_b);
        let (log_c, _) = make(12);
        assert_ne!(log_a, log_c);
    }

    #[test]
    fn generated_edits_keep_trees_valid_and_capacitive() {
        let (tree, _) = h_tree(HTreeParams {
            levels: 3,
            ..HTreeParams::default()
        });
        let mut eco = EditableTree::new(tree);
        let mut stream = EcoStream::new(EcoStreamParams::default(), 42);
        for step in 0..120 {
            let edit = stream.next_edit(eco.tree());
            eco.apply(&edit)
                .unwrap_or_else(|e| panic!("step {step}: {e} for {edit:?}"));
            assert!(
                eco.tree().total_capacitance().value() > 0.0,
                "step {step} drained all capacitance"
            );
        }
    }

    #[test]
    fn caps_only_stream_emits_only_set_cap() {
        let tree = RandomTreeConfig::default().generate(9);
        let mut stream = EcoStream::new(EcoStreamParams::caps_only(), 5);
        for _ in 0..50 {
            let edit = stream.next_edit(&tree);
            assert!(matches!(edit, TreeEdit::SetCap { .. }));
        }
    }
}
