//! DAG-shaped multi-stage ECO designs for cone-propagation tests.
//!
//! The cone-limited arrival re-propagation of `rctree_sta::Design::apply_eco`
//! only shows its worth (and can only be *tested*) on designs whose
//! instance graph has real breadth: several logic chains running in
//! parallel, occasionally cross-coupled, so that an edit on one net dirties
//! a bounded fan-out cone while the rest of the design keeps its cached
//! arrival windows.  [`eco_dag`] generates exactly that shape,
//! reproducibly from a seed:
//!
//! * `chains` parallel chains of `depth` stages each, every stage a library
//!   cell driving a short extracted wire;
//! * with probability `cross_probability` a stage net also feeds the next
//!   stage of the *neighbouring* chain (edges always go strictly forward in
//!   stage index, so the graph is a DAG for any probability);
//! * every `po_stride`-th chain terminates in a primary output, so the
//!   critical endpoint can move between cones as edits land.
//!
//! The returned [`EcoDag`] carries, next to the [`Design`], the net/node
//! name metadata an edit generator needs (design nets do not expose their
//! interconnect trees), including which nodes carry sinks and must survive
//! prunes.
//!
//! ```
//! use rctree_core::units::Seconds;
//! use rctree_workloads::dag::{eco_dag, EcoDagParams};
//!
//! let dag = eco_dag(&EcoDagParams::default(), 7);
//! let report = dag.design.analyze(0.5, Seconds::from_nano(500.0)).unwrap();
//! assert!(!report.endpoints.is_empty());
//! ```

use rctree_core::builder::RcTreeBuilder;
use rctree_core::tree::RcTree;
use rctree_core::units::{Farads, Ohms, Seconds};
use rctree_sta::{CellLibrary, Design, Driver, Load, Net, Sink};

use crate::rng::Rng;

/// Shape of a generated multi-stage DAG design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcoDagParams {
    /// Number of parallel chains (the breadth the cone walk exploits).
    pub chains: usize,
    /// Number of stages per chain.
    pub depth: usize,
    /// Probability that a stage net also feeds the neighbouring chain's
    /// next stage (cross edges make the graph a genuine DAG).
    pub cross_probability: f64,
    /// Wire segments per generated net (interconnect nodes, excluding the
    /// driver pin).
    pub wire_nodes: usize,
    /// Every `po_stride`-th chain ends in a primary output (`1` = all).
    pub po_stride: usize,
}

impl Default for EcoDagParams {
    fn default() -> Self {
        EcoDagParams {
            chains: 4,
            depth: 6,
            cross_probability: 0.25,
            wire_nodes: 3,
            po_stride: 1,
        }
    }
}

/// Name metadata of one generated net, for edit generation against the
/// design (whose nets do not expose their trees).
#[derive(Debug, Clone)]
pub struct EcoDagNet {
    /// Net name (`in{c}`, `n{c}_{s}` or `out{c}`).
    pub name: String,
    /// Every interconnect node name, in creation (chain) order.
    pub nodes: Vec<String>,
    /// The subset of `nodes` that carries a sink (pruning these is refused
    /// by `apply_eco`'s sink-survival rule).
    pub sink_nodes: Vec<String>,
}

/// A generated DAG design plus its edit-targeting metadata.
#[derive(Debug)]
pub struct EcoDag {
    /// The multi-stage design (instances wired chain by chain).
    pub design: Design,
    /// Per-net name metadata, in net insertion order.
    pub nets: Vec<EcoDagNet>,
}

impl EcoDag {
    /// Total number of instances.
    pub fn instance_count(&self) -> usize {
        self.design.instance_count()
    }

    /// A generous delay budget for `analyze`/`apply_eco` calls: every
    /// endpoint certifies against it, so edit streams exercise slack
    /// deltas rather than failures.
    pub fn budget(&self) -> Seconds {
        Seconds::from_nano(500.0)
    }
}

/// One short extracted wire: `wire_nodes` RC segments with seeded values.
/// Returns the tree and its node names in chain order.
fn wire(rng: &mut Rng, wire_nodes: usize) -> (RcTree, Vec<String>) {
    let mut b = RcTreeBuilder::new();
    let mut names = Vec::with_capacity(wire_nodes);
    let mut cur = b.input();
    for j in 0..wire_nodes.max(1) {
        let name = format!("w{j}");
        let r = Ohms::new(rng.range_f64(20.0, 200.0));
        let c = Farads::from_femto(rng.range_f64(1.0, 20.0));
        cur = if rng.chance(0.5) {
            b.add_line(cur, &name, r, c)
                .expect("generated wire is valid")
        } else {
            let node = b
                .add_resistor(cur, &name, r)
                .expect("generated wire is valid");
            b.add_capacitance(node, c).expect("generated wire is valid");
            node
        };
        names.push(name);
    }
    let _ = cur;
    (b.build().expect("generated wire is valid"), names)
}

/// Generates a DAG-shaped multi-stage design, reproducibly from a seed.
///
/// Instances are named `u{chain}_{stage}` (cells cycle through the 1981
/// library's inverters and buffer); nets are `in{c}` (primary-input
/// feeders), `n{c}_{s}` (stage nets) and `out{c}` (endpoint nets driving
/// `po{c}`).
pub fn eco_dag(params: &EcoDagParams, seed: u64) -> EcoDag {
    let mut rng = Rng::from_seed(seed ^ 0xDA6_0000);
    let chains = params.chains.max(1);
    let depth = params.depth.max(1);
    let cells = ["inv_1x", "inv_4x", "buf_8x"];

    let mut design = Design::new(CellLibrary::nmos_1981());
    for c in 0..chains {
        for s in 0..depth {
            design
                .add_instance(format!("u{c}_{s}"), cells[(c + s) % cells.len()])
                .expect("generated instances are unique");
        }
    }

    let mut nets = Vec::new();
    let mut add_net = |design: &mut Design,
                       name: String,
                       tree: RcTree,
                       node_names: Vec<String>,
                       sinks: Vec<Sink>,
                       driver: Driver| {
        let sink_nodes = sinks.iter().map(|s| s.node.clone()).collect();
        design
            .add_net(Net {
                name: name.clone(),
                driver,
                interconnect: tree,
                sinks,
            })
            .expect("generated nets are valid");
        nets.push(EcoDagNet {
            name,
            nodes: node_names,
            sink_nodes,
        });
    };

    for c in 0..chains {
        // Feeder from a primary input into the chain's first stage.
        let (tree, names) = wire(&mut rng, params.wire_nodes);
        let last = names.last().expect("wire has nodes").clone();
        add_net(
            &mut design,
            format!("in{c}"),
            tree,
            names,
            vec![Sink {
                node: last,
                load: Load::Instance(format!("u{c}_0")),
            }],
            Driver::PrimaryInput,
        );

        for s in 0..depth - 1 {
            let (tree, names) = wire(&mut rng, params.wire_nodes);
            let last = names.last().expect("wire has nodes").clone();
            let mut sinks = vec![Sink {
                node: last,
                load: Load::Instance(format!("u{c}_{}", s + 1)),
            }];
            // Cross edge into the neighbouring chain's next stage; tapped
            // mid-wire so the two sinks see different windows.
            if chains > 1 && rng.chance(params.cross_probability) {
                let tap = names[rng.index(names.len())].clone();
                sinks.push(Sink {
                    node: tap,
                    load: Load::Instance(format!("u{}_{}", (c + 1) % chains, s + 1)),
                });
            }
            add_net(
                &mut design,
                format!("n{c}_{s}"),
                tree,
                names,
                sinks,
                Driver::Instance(format!("u{c}_{s}")),
            );
        }

        // Endpoint net for every po_stride-th chain.
        if c % params.po_stride.max(1) == 0 {
            let (tree, names) = wire(&mut rng, params.wire_nodes);
            let last = names.last().expect("wire has nodes").clone();
            add_net(
                &mut design,
                format!("out{c}"),
                tree,
                names,
                vec![Sink {
                    node: last,
                    load: Load::PrimaryOutput(format!("po{c}")),
                }],
                Driver::Instance(format!("u{c}_{}", depth - 1)),
            );
        }
    }

    EcoDag { design, nets }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_designs_analyze_and_are_deterministic() {
        let params = EcoDagParams::default();
        let a = eco_dag(&params, 11);
        let b = eco_dag(&params, 11);
        assert_eq!(a.instance_count(), params.chains * params.depth);
        assert_eq!(a.nets.len(), b.nets.len());
        let budget = a.budget();
        let ra = a.design.analyze(0.5, budget).unwrap();
        let rb = b.design.analyze(0.5, budget).unwrap();
        assert_eq!(ra, rb, "same seed, same design");
        // Every chain ends in a primary output with the default stride.
        assert_eq!(ra.endpoints.len(), params.chains);

        let c = eco_dag(&params, 12);
        assert_ne!(
            ra,
            c.design.analyze(0.5, budget).unwrap(),
            "different seeds differ"
        );
    }

    #[test]
    fn po_stride_thins_the_endpoints() {
        let params = EcoDagParams {
            chains: 6,
            po_stride: 3,
            ..EcoDagParams::default()
        };
        let dag = eco_dag(&params, 5);
        let report = dag.design.analyze(0.5, dag.budget()).unwrap();
        assert_eq!(report.endpoints.len(), 2); // chains 0 and 3
    }

    #[test]
    fn metadata_names_resolve_against_the_design() {
        // Every advertised (net, node) pair must be editable: a no-op cap
        // edit through the public ECO API exercises the name resolution.
        use rctree_sta::{EcoEdit, EcoEditKind};
        let dag = eco_dag(&EcoDagParams::default(), 3);
        let mut design = dag.design;
        let budget = Seconds::from_nano(500.0);
        let baseline = design.analyze(0.5, budget).unwrap();
        let edits: Vec<EcoEdit> = dag
            .nets
            .iter()
            .map(|net| EcoEdit {
                net: net.name.clone(),
                kind: EcoEditKind::SetCap {
                    node: net.nodes[0].clone(),
                    cap: Farads::from_femto(5.0),
                },
            })
            .collect();
        let report = design.apply_eco(&edits, 0.5, budget).unwrap();
        assert_eq!(report, design.analyze(0.5, budget).unwrap());
        assert_ne!(report, baseline);
    }
}
