//! A small, self-contained pseudo-random number generator.
//!
//! The build environment does not vendor the `rand` crate, so the seeded
//! generators in this crate use their own PRNG: SplitMix64 to expand the
//! seed, then xoshiro256++ for the stream (Blackman & Vigna, 2019).  The
//! statistical quality is far beyond what structural tree generation needs,
//! and the implementation is ~40 lines with no dependencies.
//!
//! Determinism is part of the public contract of the workload generators:
//! the same seed always produces the same tree, across platforms, because
//! everything below is integer arithmetic with explicit wrapping.

/// A seeded xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64 seed expansion).
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// A uniform f64 in `[0, 1)` (53 mantissa bits).
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform f64 in `[lo, hi]`.  Requires `lo <= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "inverted range");
        lo + (hi - lo) * self.uniform()
    }

    /// A uniform index in `[0, n)`.  Requires `n > 0`.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "empty range");
        // Multiply-shift range reduction; the modulo bias is < 2^-64 * n,
        // irrelevant for workload generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::from_seed(7);
        let mut b = Rng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::from_seed(1);
        let mut b = Rng::from_seed(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut r = Rng::from_seed(3);
        for _ in 0..1000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng::from_seed(4);
        for _ in 0..1000 {
            let x = r.range_f64(5.0, 6.0);
            assert!((5.0..=6.0).contains(&x));
            let i = r.index(7);
            assert!(i < 7);
        }
    }

    #[test]
    fn chance_mean_is_approximately_p() {
        let mut r = Rng::from_seed(5);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
