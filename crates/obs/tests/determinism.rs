//! Shard-merge determinism: the same value multiset recorded by any number
//! of writer threads, in any interleaving, must aggregate to identical
//! bucket counts and byte-identical exposition text.

use std::sync::Arc;

use rctree_obs::{HistogramSnapshot, Registry, Stability};

/// A fixed multiset of samples spanning the exact buckets, several octaves,
/// and the extremes.
fn sample_multiset() -> Vec<u64> {
    let mut values = Vec::new();
    for seed in 0..640u64 {
        // Deterministic mix: small exact values, mid-range, and huge values.
        let v = match seed % 5 {
            0 => seed % 4,
            1 => 4 + seed % 64,
            2 => (seed + 1) * 1_000,
            3 => 1 << (seed % 50),
            _ => u64::MAX - seed,
        };
        values.push(v);
    }
    values
}

/// Record `values` split round-robin across `threads` writer threads and
/// return the merged snapshot plus the full exposition text.
fn record_with_threads(values: &[u64], threads: usize) -> (HistogramSnapshot, String) {
    let registry = Arc::new(Registry::new());
    let hist = registry.histogram("det_us", Stability::Stable, &[("k", "v")]);
    let chunks: Vec<Vec<u64>> = (0..threads)
        .map(|t| {
            values
                .iter()
                .enumerate()
                .filter(|(i, _)| i % threads == t)
                .map(|(_, v)| *v)
                .collect()
        })
        .collect();
    let handles: Vec<_> = chunks
        .into_iter()
        .map(|chunk| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                for v in chunk {
                    hist.record(v);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    (hist.snapshot(), registry.expose(false))
}

#[test]
fn merged_shards_are_identical_for_any_thread_count() {
    // Mirrors the RCTREE_JOBS ∈ {1, 2, 7} matrix the engine runs under.
    let values = sample_multiset();
    let (base_snap, base_text) = record_with_threads(&values, 1);
    assert_eq!(base_snap.count, values.len() as u64);
    for threads in [2usize, 7] {
        let (snap, text) = record_with_threads(&values, threads);
        assert_eq!(
            snap.buckets, base_snap.buckets,
            "bucket counts diverged at {threads} threads"
        );
        assert_eq!(snap.sum, base_snap.sum);
        assert_eq!(
            text, base_text,
            "exposition must be byte-identical at {threads} threads"
        );
    }
}

#[test]
fn exposition_is_identical_across_merge_orders() {
    // Recording order is a merge order for the per-thread shards: reversing
    // and interleaving the multiset must not move a single byte.
    let values = sample_multiset();
    let mut reversed = values.clone();
    reversed.reverse();
    let mut interleaved = Vec::with_capacity(values.len());
    let half = values.len() / 2;
    for i in 0..half {
        interleaved.push(values[i]);
        interleaved.push(values[values.len() - 1 - i]);
    }
    let (_, base) = record_with_threads(&values, 3);
    let (_, rev) = record_with_threads(&reversed, 3);
    let (_, inter) = record_with_threads(&interleaved, 3);
    assert_eq!(base, rev);
    assert_eq!(base, inter);
}
