//! Metric families: counters, gauges, and log-linear histograms.
//!
//! Counters and histograms are sharded per thread: each writer thread is
//! assigned a cache-line-padded shard (one per hardware thread, plus a shared
//! fallback shard for any overflow threads), so the hot path is a single
//! `Relaxed` `fetch_add` with no cross-core contention. Shards are summed only
//! at scrape time. Because a histogram bucket index depends only on the
//! recorded value — never on which shard recorded it — the merged bucket
//! counts are identical for any thread count and any merge order.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log-linear buckets: 4 exact buckets for values 0..=3, then four
/// sub-buckets per power-of-two octave up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 252;

/// A counter cell padded to a cache line so per-thread shards never share one.
#[repr(align(64))]
struct PadCell(AtomicU64);

impl PadCell {
    fn new() -> Self {
        PadCell(AtomicU64::new(0))
    }
}

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// Stable slot for the calling thread, assigned round-robin on first use.
fn thread_slot() -> usize {
    THREAD_SLOT.with(|cell| {
        let slot = cell.get();
        if slot != usize::MAX {
            return slot;
        }
        let slot = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
        cell.set(slot);
        slot
    })
}

/// Shard count: one shard per hardware thread (the `rctree-par` pool never
/// runs wider) plus one shared fallback shard for overflow threads.
pub(crate) fn shard_count() -> usize {
    let width = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 64);
    width + 1
}

fn shard_index(shards: usize) -> usize {
    let slot = thread_slot();
    if slot < shards - 1 {
        slot
    } else {
        shards - 1
    }
}

/// Monotone counter, sharded per thread.
pub struct Counter {
    shards: Box<[PadCell]>,
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.get())
            .finish()
    }
}

impl Counter {
    fn new() -> Self {
        Counter {
            shards: (0..shard_count()).map(|_| PadCell::new()).collect(),
        }
    }

    pub fn add(&self, v: u64) {
        let idx = shard_index(self.shards.len());
        self.shards[idx].0.fetch_add(v, Ordering::Relaxed);
    }

    pub fn bump(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Point-in-time gauge. Set at scrape or on low-frequency state changes, so a
/// single atomic is enough.
pub struct Gauge {
    value: AtomicI64,
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge").field("value", &self.get()).finish()
    }
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, v: i64) {
        self.value.fetch_add(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Map a value to its log-linear bucket: exact for 0..=3, then four
/// sub-buckets per octave (HDR-style, ~25% relative error bound).
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    4 * (msb - 1) + ((v >> (msb - 2)) & 3) as usize
}

/// Inclusive upper bound of a bucket, for `le=` exposition labels.
pub fn bucket_upper_bound(idx: usize) -> u64 {
    if idx < 4 {
        return idx as u64;
    }
    let msb = idx / 4 + 1;
    let sub = (idx % 4) as u128;
    let hi = ((4 + sub + 1) << (msb - 2)) - 1;
    if hi > u64::MAX as u128 {
        u64::MAX
    } else {
        hi as u64
    }
}

/// One thread shard of a histogram: bucket counts plus the running sum.
struct HistogramShard {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl HistogramShard {
    fn new() -> Self {
        HistogramShard {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }
}

/// Log-linear histogram of `u64` samples, sharded per thread.
pub struct Histogram {
    shards: Box<[HistogramShard]>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("sum", &snap.sum)
            .finish()
    }
}

/// Aggregated view of a histogram at scrape time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: Vec<u64>,
    pub sum: u64,
    pub count: u64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            shards: (0..shard_count()).map(|_| HistogramShard::new()).collect(),
        }
    }

    pub fn record(&self, v: u64) {
        let shard = &self.shards[shard_index(self.shards.len())];
        shard.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        let mut sum = 0u64;
        for shard in self.shards.iter() {
            for (acc, b) in buckets.iter_mut().zip(shard.buckets.iter()) {
                *acc += b.load(Ordering::Relaxed);
            }
            sum = sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
        }
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            sum,
            count,
        }
    }
}

/// Whether a family survives into the `stable` exposition subset.
///
/// `Volatile` marks wall-clock-valued families (durations): their bucket
/// contents depend on machine speed, so they are byte-stable across repeated
/// scrapes of a quiesced server but not across runs or worker counts.
/// `Stable` families depend only on the workload (request counts, cone sizes,
/// bytes) and are byte-identical across `RCTREE_JOBS` for the same input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stability {
    Stable,
    Volatile,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    kind: MetricKind,
    stability: Stability,
    series: BTreeMap<String, Series>,
}

/// Registry of metric families, keyed by name, each holding label-keyed
/// series. Registration takes a lock and formats labels; callers cache the
/// returned `Arc` handles so the hot path never touches the registry.
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Canonical label-set rendering: keys sorted, values escaped; empty label
/// sets render as the empty string.
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort_by(|a, b| a.0.cmp(b.0));
    let body: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Merge an extra `le` label into an existing rendered label set.
fn with_le(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
    }
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            families: Mutex::new(BTreeMap::new()),
        }
    }

    fn family<'a>(
        families: &'a mut BTreeMap<&'static str, Family>,
        name: &'static str,
        kind: MetricKind,
        stability: Stability,
    ) -> &'a mut Family {
        let fam = families.entry(name).or_insert_with(|| Family {
            kind,
            stability,
            series: BTreeMap::new(),
        });
        assert!(
            fam.kind == kind && fam.stability == stability,
            "metric family `{name}` re-registered with a different kind or stability"
        );
        fam
    }

    pub fn counter(
        &self,
        name: &'static str,
        stability: Stability,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        let mut families = self.families.lock().unwrap();
        let fam = Self::family(&mut families, name, MetricKind::Counter, stability);
        let series = fam
            .series
            .entry(label_key(labels))
            .or_insert_with(|| Series::Counter(Arc::new(Counter::new())));
        match series {
            Series::Counter(c) => Arc::clone(c),
            _ => unreachable!(),
        }
    }

    pub fn gauge(
        &self,
        name: &'static str,
        stability: Stability,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        let mut families = self.families.lock().unwrap();
        let fam = Self::family(&mut families, name, MetricKind::Gauge, stability);
        let series = fam
            .series
            .entry(label_key(labels))
            .or_insert_with(|| Series::Gauge(Arc::new(Gauge::new())));
        match series {
            Series::Gauge(g) => Arc::clone(g),
            _ => unreachable!(),
        }
    }

    pub fn histogram(
        &self,
        name: &'static str,
        stability: Stability,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let mut families = self.families.lock().unwrap();
        let fam = Self::family(&mut families, name, MetricKind::Histogram, stability);
        let series = fam
            .series
            .entry(label_key(labels))
            .or_insert_with(|| Series::Histogram(Arc::new(Histogram::new())));
        match series {
            Series::Histogram(h) => Arc::clone(h),
            _ => unreachable!(),
        }
    }

    /// All series of one histogram family as `(label set, snapshot)` pairs,
    /// sorted by label set. Used by `rcdelay profile` to aggregate phases.
    pub fn histogram_series(&self, name: &str) -> Vec<(String, HistogramSnapshot)> {
        let families = self.families.lock().unwrap();
        let Some(fam) = families.get(name) else {
            return Vec::new();
        };
        fam.series
            .iter()
            .filter_map(|(labels, series)| match series {
                Series::Histogram(h) => Some((labels.clone(), h.snapshot())),
                _ => None,
            })
            .collect()
    }

    /// Render the registry as Prometheus-style text. Families sort by name,
    /// series by label set, buckets by upper bound: the output is a pure
    /// function of the recorded values, so a quiesced registry renders
    /// byte-identically on every call. With `stable_only`, volatile
    /// (wall-clock-valued) families are skipped; the remaining text is
    /// byte-identical across `RCTREE_JOBS` for the same workload.
    pub fn expose(&self, stable_only: bool) -> String {
        let families = self.families.lock().unwrap();
        let mut out = String::new();
        for (name, fam) in families.iter() {
            if stable_only && fam.stability == Stability::Volatile {
                continue;
            }
            let kind = match fam.kind {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
                MetricKind::Histogram => "histogram",
            };
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            for (labels, series) in fam.series.iter() {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!("{name}{labels} {}\n", c.get()));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!("{name}{labels} {}\n", g.get()));
                    }
                    Series::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cum = 0u64;
                        for (idx, n) in snap.buckets.iter().enumerate() {
                            if *n == 0 {
                                continue;
                            }
                            cum += n;
                            let le = bucket_upper_bound(idx).to_string();
                            out.push_str(&format!("{name}_bucket{} {cum}\n", with_le(labels, &le)));
                        }
                        out.push_str(&format!(
                            "{name}_bucket{} {}\n",
                            with_le(labels, "+Inf"),
                            snap.count
                        ));
                        out.push_str(&format!("{name}_sum{labels} {}\n", snap.sum));
                        out.push_str(&format!("{name}_count{labels} {}\n", snap.count));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_exact_below_four() {
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
        let mut last = 0usize;
        for shift in 2..64 {
            for sub in 0..4u64 {
                let v = (4 + sub) << (shift - 2);
                let idx = bucket_index(v);
                assert!(idx >= last, "bucket index must be monotone");
                assert!(v <= bucket_upper_bound(idx));
                last = idx;
            }
        }
        assert!(bucket_index(u64::MAX) < HISTOGRAM_BUCKETS);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn bucket_bounds_partition_the_domain() {
        // Every value's bucket upper bound is >= the value, and the previous
        // bucket's bound is < the value.
        for &v in &[4u64, 5, 7, 8, 100, 1023, 1024, 1 << 40, u64::MAX] {
            let idx = bucket_index(v);
            assert!(bucket_upper_bound(idx) >= v);
            if idx > 0 {
                assert!(bucket_upper_bound(idx - 1) < v);
            }
        }
    }

    #[test]
    fn counter_sums_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("t_total", Stability::Stable, &[]);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.bump();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn label_sets_are_canonicalised() {
        let reg = Registry::new();
        let a = reg.counter("x_total", Stability::Stable, &[("b", "2"), ("a", "1")]);
        let b = reg.counter("x_total", Stability::Stable, &[("a", "1"), ("b", "2")]);
        a.bump();
        b.bump();
        assert_eq!(a.get(), 2, "label order must not split a series");
        let text = reg.expose(false);
        assert!(text.contains("x_total{a=\"1\",b=\"2\"} 2\n"), "{text}");
    }

    #[test]
    fn exposition_is_sorted_and_repeatable() {
        let reg = Registry::new();
        reg.counter("zz_total", Stability::Stable, &[]).add(7);
        reg.gauge("aa_bytes", Stability::Stable, &[]).set(42);
        let h = reg.histogram("mm_us", Stability::Volatile, &[("k", "v")]);
        h.record(3);
        h.record(900);
        let one = reg.expose(false);
        let two = reg.expose(false);
        assert_eq!(one, two);
        let aa = one.find("# TYPE aa_bytes").unwrap();
        let mm = one.find("# TYPE mm_us").unwrap();
        let zz = one.find("# TYPE zz_total").unwrap();
        assert!(aa < mm && mm < zz, "families must sort by name");
        let stable = reg.expose(true);
        assert!(!stable.contains("mm_us"), "volatile family must be skipped");
        assert!(stable.contains("zz_total 7\n"));
    }
}
