//! The `Obs` runtime: a registry plus a span ring, entered per thread.
//!
//! Observability is off by default for the library: instrumented code calls
//! [`span`], which consults a thread-local stack of entered runtimes and
//! returns an inert guard when the stack is empty. A process that wants
//! telemetry (the serve loop, `rcdelay profile`, benches) builds an
//! `Arc<Obs>` and calls [`Obs::enter`] on each thread that should report into
//! it. Runtimes are per-instance, not process-global, so two servers in one
//! test process keep disjoint counters.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::registry::{Counter, Histogram, Registry, Stability};
use crate::trace::{AttrValue, SpanRecord, SpanRing};

/// Runtime knobs. The library default (no runtime entered) disables
/// everything; this struct only configures a runtime once one is built.
#[derive(Clone, Copy, Debug)]
pub struct ObsConfig {
    /// Capacity of the finished-span ring served by `TRACE`.
    pub trace_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            trace_capacity: 4096,
        }
    }
}

/// Cached handles for one span name, so finishing a span never re-enters the
/// registry lock.
struct PhaseMetrics {
    duration_us: Arc<Histogram>,
    total: Arc<Counter>,
    attrs: BTreeMap<&'static str, Arc<Histogram>>,
}

pub struct Obs {
    config: ObsConfig,
    registry: Registry,
    ring: SpanRing,
    epoch: Instant,
    next_span_id: AtomicU64,
    phases: Mutex<BTreeMap<&'static str, PhaseMetrics>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Obs {
    pub fn new(config: ObsConfig) -> Arc<Self> {
        Arc::new(Obs {
            registry: Registry::new(),
            ring: SpanRing::new(config.trace_capacity),
            epoch: Instant::now(),
            next_span_id: AtomicU64::new(0),
            phases: Mutex::new(BTreeMap::new()),
            config,
        })
    }

    pub fn config(&self) -> &ObsConfig {
        &self.config
    }

    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    pub fn ring(&self) -> &SpanRing {
        &self.ring
    }

    /// Enter this runtime on the calling thread. Spans and phase metrics
    /// opened while the guard lives report here. Guards nest: the innermost
    /// entered runtime wins.
    pub fn enter(self: &Arc<Self>) -> ObsGuard {
        SCOPES.with(|scopes| {
            scopes.borrow_mut().push(Frame {
                obs: Arc::clone(self),
                span_stack: Vec::new(),
            });
        });
        ObsGuard {
            _not_send: PhantomData,
        }
    }

    /// The runtime entered on the calling thread, if any.
    pub fn current() -> Option<Arc<Obs>> {
        SCOPES.with(|scopes| scopes.borrow().last().map(|f| Arc::clone(&f.obs)))
    }

    fn phase_finished(&self, name: &'static str, dur_ns: u64, attrs: &[(&'static str, AttrValue)]) {
        let mut phases = self.phases.lock().unwrap();
        let metrics = phases.entry(name).or_insert_with(|| PhaseMetrics {
            duration_us: self.registry.histogram(
                "rctree_phase_duration_us",
                Stability::Volatile,
                &[("phase", name)],
            ),
            total: self.registry.counter(
                "rctree_phase_total",
                Stability::Stable,
                &[("phase", name)],
            ),
            attrs: BTreeMap::new(),
        });
        metrics.total.bump();
        metrics.duration_us.record(dur_ns / 1_000);
        for (key, value) in attrs {
            if let AttrValue::U64(v) = value {
                let hist = metrics.attrs.entry(key).or_insert_with(|| {
                    self.registry.histogram(
                        "rctree_phase_attr",
                        Stability::Stable,
                        &[("phase", name), ("attr", key)],
                    )
                });
                hist.record(*v);
            }
        }
    }
}

struct Frame {
    obs: Arc<Obs>,
    /// Ids of spans currently open on this thread, innermost last.
    span_stack: Vec<u64>,
}

thread_local! {
    static SCOPES: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Guard returned by [`Obs::enter`]; leaving scope exits the runtime on this
/// thread. Intentionally `!Send`: it pairs with the entering thread's stack.
pub struct ObsGuard {
    _not_send: PhantomData<*const ()>,
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        SCOPES.with(|scopes| {
            scopes.borrow_mut().pop();
        });
    }
}

struct SpanInner {
    obs: Arc<Obs>,
    id: u64,
    parent: u64,
    name: &'static str,
    start: Instant,
    start_ns: u64,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// RAII span guard. Inert (a no-op on every method and on drop) unless a
/// runtime was entered on the creating thread.
pub struct Span {
    inner: Option<SpanInner>,
}

/// Open a span named `name` against the runtime entered on this thread.
/// When no runtime is entered the returned guard is inert; the cost is one
/// thread-local read.
pub fn span(name: &'static str) -> Span {
    let inner = SCOPES.with(|scopes| {
        let mut scopes = scopes.borrow_mut();
        let frame = scopes.last_mut()?;
        let obs = Arc::clone(&frame.obs);
        let id = obs.next_span_id.fetch_add(1, Ordering::Relaxed) + 1;
        let parent = frame.span_stack.last().copied().unwrap_or(0);
        frame.span_stack.push(id);
        let start = Instant::now();
        let start_ns = start.duration_since(obs.epoch).as_nanos() as u64;
        Some(SpanInner {
            obs,
            id,
            parent,
            name,
            start,
            start_ns,
            attrs: Vec::new(),
        })
    });
    Span { inner }
}

impl Span {
    /// An always-inert span, for initialising a variable that is
    /// conditionally replaced by a real [`span`] later.
    pub fn disabled() -> Span {
        Span { inner: None }
    }

    /// Whether this span is live (a runtime was entered). Lets callers skip
    /// attribute computation that is only needed for telemetry.
    pub fn is_live(&self) -> bool {
        self.inner.is_some()
    }

    pub fn attr_u64(&mut self, key: &'static str, value: u64) {
        if let Some(inner) = self.inner.as_mut() {
            inner.attrs.push((key, AttrValue::U64(value)));
        }
    }

    pub fn attr_str(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(inner) = self.inner.as_mut() {
            inner.attrs.push((key, AttrValue::Str(value.into())));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_ns = inner.start.elapsed().as_nanos() as u64;
        // Unwind this span from the thread's open-span stack. Normal RAII
        // nesting pops the top; out-of-order drops remove by id.
        SCOPES.with(|scopes| {
            let mut scopes = scopes.borrow_mut();
            if let Some(frame) = scopes.last_mut() {
                if let Some(pos) = frame.span_stack.iter().rposition(|&id| id == inner.id) {
                    frame.span_stack.remove(pos);
                }
            }
        });
        inner.obs.phase_finished(inner.name, dur_ns, &inner.attrs);
        inner.obs.ring().push(SpanRecord {
            seq: 0,
            id: inner.id,
            parent: inner.parent,
            name: inner.name,
            start_ns: inner.start_ns,
            dur_ns,
            attrs: inner.attrs,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_without_runtime_is_inert() {
        let mut s = span("noop");
        assert!(!s.is_live());
        s.attr_u64("k", 1);
        drop(s);
        assert!(Obs::current().is_none());
    }

    #[test]
    fn spans_record_parent_links_and_phase_metrics() {
        let obs = Obs::new(ObsConfig::default());
        let guard = obs.enter();
        {
            let mut outer = span("outer");
            outer.attr_u64("nets", 12);
            {
                let _inner = span("inner");
            }
        }
        drop(guard);
        let recent = obs.ring().recent(10);
        assert_eq!(recent.len(), 2);
        let inner = recent.iter().find(|r| r.name == "inner").unwrap();
        let outer = recent.iter().find(|r| r.name == "outer").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        // Inner finishes first, so it has the smaller seq.
        assert!(inner.seq < outer.seq);

        let text = obs.registry().expose(false);
        assert!(
            text.contains("rctree_phase_total{phase=\"inner\"} 1\n"),
            "{text}"
        );
        assert!(text.contains("rctree_phase_total{phase=\"outer\"} 1\n"));
        assert!(text.contains("rctree_phase_attr_count{attr=\"nets\",phase=\"outer\"} 1"));
        let stable = obs.registry().expose(true);
        assert!(!stable.contains("rctree_phase_duration_us"));
        assert!(stable.contains("rctree_phase_attr_sum{attr=\"nets\",phase=\"outer\"} 12"));
    }

    #[test]
    fn runtimes_nest_and_stay_isolated() {
        let a = Obs::new(ObsConfig::default());
        let b = Obs::new(ObsConfig::default());
        let _ga = a.enter();
        {
            let _gb = b.enter();
            let _s = span("into_b");
        }
        let _s = span("into_a");
        drop(_s);
        assert_eq!(b.ring().recent(10).len(), 1);
        assert_eq!(b.ring().recent(10)[0].name, "into_b");
        let a_spans = a.ring().recent(10);
        assert_eq!(a_spans.len(), 1);
        assert_eq!(a_spans[0].name, "into_a");
    }
}
