//! # rctree-obs
//!
//! Zero-dependency observability runtime for the rctree workspace: a sharded
//! metrics registry (counters, gauges, HDR-style log-linear histograms), RAII
//! span tracing into a fixed-capacity ring, and Prometheus-style text
//! exposition with a deterministic (`stable`) subset.
//!
//! Everything is runtime-gated: the library records nothing until a caller
//! builds an [`Obs`] runtime and [`Obs::enter`]s it on a thread. Instrumented
//! code in the rest of the workspace goes through [`span`], whose disabled
//! path is a single thread-local read.
//!
//! See `crates/obs/README.md` for the shard/aggregation design and the
//! rationale for not depending on `tracing`/`prometheus` in this offline
//! workspace.

#![forbid(unsafe_code)]

pub mod expose;
pub mod registry;
pub mod runtime;
pub mod trace;

pub use expose::{check_monotone, counter_deltas, parse_exposition, Exposition, SeriesKind};
pub use registry::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, MetricKind,
    Registry, Stability, HISTOGRAM_BUCKETS,
};
pub use runtime::{span, Obs, ObsConfig, ObsGuard, Span};
pub use trace::{AttrValue, SpanRecord, SpanRing};
