//! Parsing and validation of Prometheus-style exposition text.
//!
//! Used by the `rcdelay scrape` CI check (every line must parse, required
//! series present, counters monotone between scrapes) and by the bench
//! client to diff two scrapes into server-side counter deltas.

use std::collections::BTreeMap;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    Counter,
    Gauge,
    HistogramBucket,
    HistogramSum,
    HistogramCount,
}

impl SeriesKind {
    /// Whether samples of this kind may only grow on a live server.
    pub fn is_monotone(self) -> bool {
        !matches!(self, SeriesKind::Gauge)
    }
}

/// A parsed exposition: `name{labels}` → (kind, value), plus family names.
#[derive(Clone, Debug, Default)]
pub struct Exposition {
    pub series: BTreeMap<String, (SeriesKind, f64)>,
    pub families: BTreeMap<String, String>,
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Split a sample line into its series key (`name{labels}`) and value text,
/// validating label syntax along the way.
fn split_sample(line: &str) -> Result<(&str, &str, &str), String> {
    // `name{labels} value` or `name value`; the value is the text after the
    // last space outside braces. Label values may contain spaces, so find the
    // closing brace first.
    if let Some(open) = line.find('{') {
        let name = &line[..open];
        let close = line
            .rfind('}')
            .ok_or_else(|| format!("unclosed label set: `{line}`"))?;
        if close < open {
            return Err(format!("malformed label set: `{line}`"));
        }
        let rest = line[close + 1..].trim_start();
        Ok((name, &line[open..=close], rest))
    } else {
        let mut parts = line.splitn(2, ' ');
        let name = parts.next().unwrap_or("");
        let value = parts.next().unwrap_or("").trim();
        Ok((name, "", value))
    }
}

fn validate_labels(labels: &str) -> Result<(), String> {
    if labels.is_empty() {
        return Ok(());
    }
    let body = &labels[1..labels.len() - 1];
    // Split on `",` boundaries so escaped quotes inside values survive.
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without `=` in `{labels}`"))?;
        let key = &rest[..eq];
        if !valid_name(key) {
            return Err(format!("bad label key `{key}` in `{labels}`"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("unquoted label value in `{labels}`"));
        }
        let mut end = None;
        let bytes = after.as_bytes();
        let mut i = 1;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    end = Some(i);
                    break;
                }
                _ => i += 1,
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value in `{labels}`"))?;
        rest = &after[end + 1..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
        } else if !rest.is_empty() {
            return Err(format!("junk after label value in `{labels}`"));
        }
    }
    Ok(())
}

/// Parse exposition text, failing on any malformed line.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut out = Exposition::default();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("bad TYPE line: `{line}`"))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("bad TYPE line: `{line}`"))?;
            if !valid_name(name) || parts.next().is_some() {
                return Err(format!("bad TYPE line: `{line}`"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("unknown family kind in `{line}`"));
            }
            out.families.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (name, labels, value) = split_sample(line)?;
        if !valid_name(name) {
            return Err(format!("bad series name in `{line}`"));
        }
        validate_labels(labels)?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("bad sample value in `{line}`"))?;
        // Resolve the declaring family: exact for counters/gauges, suffixed
        // for histogram components.
        let kind = if let Some(kind) = out.families.get(name) {
            match kind.as_str() {
                "counter" => SeriesKind::Counter,
                "gauge" => SeriesKind::Gauge,
                _ => return Err(format!("histogram family sampled without suffix: `{line}`")),
            }
        } else if let Some(base) = name.strip_suffix("_bucket") {
            match out.families.get(base).map(String::as_str) {
                Some("histogram") => SeriesKind::HistogramBucket,
                _ => return Err(format!("sample without TYPE declaration: `{line}`")),
            }
        } else if let Some(base) = name.strip_suffix("_sum") {
            match out.families.get(base).map(String::as_str) {
                Some("histogram") => SeriesKind::HistogramSum,
                _ => return Err(format!("sample without TYPE declaration: `{line}`")),
            }
        } else if let Some(base) = name.strip_suffix("_count") {
            match out.families.get(base).map(String::as_str) {
                Some("histogram") => SeriesKind::HistogramCount,
                _ => return Err(format!("sample without TYPE declaration: `{line}`")),
            }
        } else {
            return Err(format!("sample without TYPE declaration: `{line}`"));
        };
        let key = format!("{name}{labels}");
        if out.series.insert(key.clone(), (kind, value)).is_some() {
            return Err(format!("duplicate series `{key}`"));
        }
    }
    Ok(out)
}

/// Check that every monotone series in `prev` is present in `cur` with a
/// value no smaller.
pub fn check_monotone(prev: &Exposition, cur: &Exposition) -> Result<(), String> {
    for (key, (kind, prev_value)) in &prev.series {
        if !kind.is_monotone() {
            continue;
        }
        match cur.series.get(key) {
            None => return Err(format!("series `{key}` disappeared between scrapes")),
            Some((_, cur_value)) if cur_value < prev_value => {
                return Err(format!(
                    "series `{key}` went backwards: {prev_value} -> {cur_value}"
                ));
            }
            Some(_) => {}
        }
    }
    Ok(())
}

/// Non-zero deltas of counter and histogram sum/count series between two
/// scrapes, sorted by series key. Buckets are skipped (count/sum carry the
/// cross-check signal); series new in `cur` count from zero.
pub fn counter_deltas(prev: &Exposition, cur: &Exposition) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (key, (kind, cur_value)) in &cur.series {
        let keep = matches!(
            kind,
            SeriesKind::Counter | SeriesKind::HistogramSum | SeriesKind::HistogramCount
        );
        if !keep {
            continue;
        }
        let prev_value = prev.series.get(key).map(|(_, v)| *v).unwrap_or(0.0);
        let delta = cur_value - prev_value;
        if delta != 0.0 {
            out.push((key.clone(), delta));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# TYPE rctree_requests_total counter
rctree_requests_total 5
rctree_requests_total{verb=\"QUERY\"} 3
# TYPE rctree_arena_base_bytes gauge
rctree_arena_base_bytes 1024
# TYPE rctree_phase_duration_us histogram
rctree_phase_duration_us_bucket{le=\"4\",phase=\"sta.publish\"} 2
rctree_phase_duration_us_bucket{le=\"+Inf\",phase=\"sta.publish\"} 2
rctree_phase_duration_us_sum{phase=\"sta.publish\"} 7
rctree_phase_duration_us_count{phase=\"sta.publish\"} 2
";

    #[test]
    fn parses_well_formed_text() {
        let exp = parse_exposition(SAMPLE).unwrap();
        assert_eq!(exp.families.len(), 3);
        assert_eq!(
            exp.series.get("rctree_requests_total{verb=\"QUERY\"}"),
            Some(&(SeriesKind::Counter, 3.0))
        );
        assert_eq!(
            exp.series
                .get("rctree_phase_duration_us_count{phase=\"sta.publish\"}"),
            Some(&(SeriesKind::HistogramCount, 2.0))
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_exposition("no_type_decl 1\n").is_err());
        assert!(parse_exposition("# TYPE x counter\nx{unclosed=\"v 1\n").is_err());
        assert!(parse_exposition("# TYPE x counter\nx not_a_number\n").is_err());
        assert!(parse_exposition("# TYPE x widget\n").is_err());
        assert!(parse_exposition("# TYPE x counter\nx 1\nx 2\n").is_err());
    }

    #[test]
    fn monotone_check_flags_regressions() {
        let prev = parse_exposition(SAMPLE).unwrap();
        let cur =
            parse_exposition(&SAMPLE.replace("rctree_requests_total 5", "rctree_requests_total 4"))
                .unwrap();
        assert!(check_monotone(&prev, &prev).is_ok());
        let err = check_monotone(&prev, &cur).unwrap_err();
        assert!(err.contains("went backwards"), "{err}");
        // Gauges may move either way.
        let cur = parse_exposition(
            &SAMPLE.replace("rctree_arena_base_bytes 1024", "rctree_arena_base_bytes 10"),
        )
        .unwrap();
        assert!(check_monotone(&prev, &cur).is_ok());
    }

    #[test]
    fn deltas_cover_counters_and_histogram_totals() {
        let prev = parse_exposition(SAMPLE).unwrap();
        let cur = parse_exposition(
            &SAMPLE
                .replace("rctree_requests_total 5", "rctree_requests_total 9")
                .replace(
                    "rctree_phase_duration_us_count{phase=\"sta.publish\"} 2",
                    "rctree_phase_duration_us_count{phase=\"sta.publish\"} 3",
                ),
        )
        .unwrap();
        let deltas = counter_deltas(&prev, &cur);
        assert_eq!(
            deltas,
            vec![
                (
                    "rctree_phase_duration_us_count{phase=\"sta.publish\"}".to_string(),
                    1.0
                ),
                ("rctree_requests_total".to_string(), 4.0),
            ]
        );
    }
}
