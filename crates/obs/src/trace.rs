//! Finished-span ring buffer.
//!
//! Writers are obstruction-free: a finished span claims a slot with a single
//! `fetch_add` and stores the record under a per-slot `try_lock`. A writer
//! that loses the (vanishingly rare) race for a slot drops the record and
//! counts the drop instead of blocking — the hot path never waits on a
//! reader. `TRACE n` snapshots the ring by locking each slot briefly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// An attribute attached to a span.
#[derive(Clone, Debug)]
pub enum AttrValue {
    U64(u64),
    Str(String),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// A finished span as stored in the ring.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Global finish order (1-based); later spans have larger `seq`.
    pub seq: u64,
    /// Span id, unique within one `Obs` runtime.
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 at top level.
    pub parent: u64,
    pub name: &'static str,
    /// Start offset in nanoseconds since the runtime epoch (monotonic clock).
    pub start_ns: u64,
    pub dur_ns: u64,
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// One-line wire rendering used by the `TRACE` verb.
    pub fn render(&self) -> String {
        let mut line = format!(
            "span seq={} id={} parent={} name={} start_ns={} dur_ns={}",
            self.seq, self.id, self.parent, self.name, self.start_ns, self.dur_ns
        );
        for (k, v) in &self.attrs {
            line.push_str(&format!(" {k}={v}"));
        }
        line
    }
}

pub struct SpanRing {
    slots: Box<[Mutex<Option<SpanRecord>>]>,
    head: AtomicU64,
    dropped: AtomicU64,
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.capacity())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl SpanRing {
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpanRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of records dropped because a writer lost a slot race.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub fn push(&self, mut record: SpanRecord) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed) + 1;
        record.seq = seq;
        let idx = ((seq - 1) % self.slots.len() as u64) as usize;
        match self.slots[idx].try_lock() {
            Ok(mut slot) => *slot = Some(record),
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The most recent `n` finished spans, oldest first.
    pub fn recent(&self, n: usize) -> Vec<SpanRecord> {
        let mut records: Vec<SpanRecord> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            if let Ok(guard) = slot.lock() {
                if let Some(rec) = guard.as_ref() {
                    records.push(rec.clone());
                }
            }
        }
        records.sort_by_key(|r| r.seq);
        let keep = n.min(records.len());
        records.split_off(records.len() - keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &'static str) -> SpanRecord {
        SpanRecord {
            seq: 0,
            id: 1,
            parent: 0,
            name,
            start_ns: 10,
            dur_ns: 5,
            attrs: vec![("nets", AttrValue::U64(3))],
        }
    }

    #[test]
    fn ring_keeps_most_recent_and_orders_by_seq() {
        let ring = SpanRing::new(4);
        for _ in 0..6 {
            ring.push(rec("a"));
        }
        let recent = ring.recent(10);
        assert_eq!(recent.len(), 4);
        let seqs: Vec<u64> = recent.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5, 6]);
        let last_two = ring.recent(2);
        assert_eq!(last_two.len(), 2);
        assert_eq!(last_two[0].seq, 5);
    }

    #[test]
    fn render_is_one_line_with_attrs() {
        let mut r = rec("sta.publish");
        r.seq = 9;
        let line = r.render();
        assert_eq!(
            line,
            "span seq=9 id=1 parent=0 name=sta.publish start_ns=10 dur_ns=5 nets=3"
        );
        assert!(!line.contains('\n'));
    }
}
