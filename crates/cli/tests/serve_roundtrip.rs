//! Binary-level round-trip: a `rcdelay serve` process's `REPORT` payload
//! must be byte-identical to offline `rcdelay report` output on the same
//! deck — the read-only server is just the offline report behind a socket.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

fn rcdelay() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rcdelay"))
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcdelay-serve-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("temp file");
    path
}

/// Kills the child on drop so a failing assertion can't leak a listener.
struct Reap(Child);

impl Drop for Reap {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn server_report_is_bit_identical_to_offline_report() {
    // A reproducible deck from the binary itself.
    let gen = rcdelay()
        .args(["gen-deck", "--nets", "10", "--seed", "5"])
        .output()
        .expect("gen-deck runs");
    assert!(gen.status.success(), "{gen:?}");
    let deck = write_temp("deck.spef", &String::from_utf8(gen.stdout).expect("utf8"));
    let deck = deck.to_str().unwrap();

    // The offline report.
    let offline = rcdelay()
        .args(["report", "--budget", "2e-7", deck])
        .output()
        .expect("report runs");
    assert!(offline.status.success(), "{offline:?}");
    let offline_text = String::from_utf8(offline.stdout).expect("utf8");
    assert!(offline_text.contains("timing report"), "{offline_text}");

    // A server on the same deck, ephemeral port scraped from its
    // handshake line.
    let child = rcdelay()
        .args(["serve", "--budget", "2e-7", "--port", "0", deck])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    let mut child = Reap(child);
    let mut server_out = BufReader::new(child.0.stdout.take().expect("piped stdout"));
    let mut handshake = String::new();
    server_out.read_line(&mut handshake).expect("handshake");
    assert!(
        handshake.contains("listening on "),
        "unexpected handshake: {handshake}"
    );
    let addr = handshake
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("address in handshake")
        .to_string();

    // REPORT over the wire; the payload is everything before the final
    // `OK rev 0` line.
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    writeln!(writer, "REPORT").expect("send");
    writer.flush().expect("flush");
    let mut payload = String::new();
    loop {
        let mut line = String::new();
        assert_ne!(reader.read_line(&mut line).expect("read"), 0, "early EOF");
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.starts_with("OK ") || trimmed.starts_with("ERR ") {
            assert_eq!(trimmed, "OK rev 0");
            break;
        }
        payload.push_str(trimmed);
        payload.push('\n');
    }
    assert_eq!(
        payload, offline_text,
        "server REPORT payload differs from offline `rcdelay report`"
    );

    // Stop the server through the protocol and let it exit cleanly.
    writeln!(writer, "SHUTDOWN").expect("send");
    writer.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("ok");
    assert_eq!(line.trim_end(), "OK rev 0");
    let status = child.0.wait().expect("server exits");
    assert!(status.success(), "server exit: {status:?}");
    let mut rest = String::new();
    server_out.read_to_string(&mut rest).expect("drain stdout");
    assert!(
        rest.contains("stopped"),
        "server did not log shutdown: {rest}"
    );
}

#[test]
fn corner_report_over_the_wire_matches_offline_corner_report() {
    let gen = rcdelay()
        .args(["gen-deck", "--nets", "8", "--seed", "11"])
        .output()
        .expect("gen-deck runs");
    assert!(gen.status.success(), "{gen:?}");
    let deck = write_temp(
        "corner-deck.spef",
        &String::from_utf8(gen.stdout).expect("utf8"),
    );
    let deck = deck.to_str().unwrap();
    let spec = write_temp(
        "corners.spec",
        "# three extra corners on top of nominal\nfast=0.82,0.88,0.9\nslow=1.3,1.2,1.1\nhot=1.05,1.12\n",
    );
    let spec = spec.to_str().unwrap();

    // Offline: lane 2 (`slow`) of the multi-corner sweep.
    let offline = rcdelay()
        .args([
            "report",
            "--budget",
            "2e-7",
            "--corners",
            spec,
            "--corner",
            "2",
            deck,
        ])
        .output()
        .expect("report runs");
    let offline_text = String::from_utf8(offline.stdout).expect("utf8");
    assert!(offline_text.contains("timing report"), "{offline_text}");

    // A server on the same deck with the same corner set.
    let child = rcdelay()
        .args([
            "serve",
            "--budget",
            "2e-7",
            "--corners",
            spec,
            "--port",
            "0",
            deck,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    let mut child = Reap(child);
    let mut server_out = BufReader::new(child.0.stdout.take().expect("piped stdout"));
    let mut handshake = String::new();
    server_out.read_line(&mut handshake).expect("handshake");
    let addr = handshake
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("address in handshake")
        .to_string();

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    writeln!(writer, "REPORT --corner 2").expect("send");
    writer.flush().expect("flush");
    let mut payload = String::new();
    loop {
        let mut line = String::new();
        assert_ne!(reader.read_line(&mut line).expect("read"), 0, "early EOF");
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.starts_with("OK ") || trimmed.starts_with("ERR ") {
            // Multi-corner final line: explicit selection echoed, then the
            // corner vector in lane order.
            assert_eq!(
                trimmed,
                "OK rev 0 corner 2 slow corners nominal,fast,slow,hot"
            );
            break;
        }
        payload.push_str(trimmed);
        payload.push('\n');
    }
    assert_eq!(
        payload, offline_text,
        "server `REPORT --corner 2` payload differs from offline \
         `rcdelay report --corners … --corner 2`"
    );

    writeln!(writer, "SHUTDOWN").expect("send");
    writer.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("ok");
    assert_eq!(line.trim_end(), "OK rev 0");
    let status = child.0.wait().expect("server exits");
    assert!(status.success(), "server exit: {status:?}");
}
