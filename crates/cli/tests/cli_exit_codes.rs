//! Exit-code regression tests for the `rcdelay` binary: a failing
//! certification and a bad edit script must be visible to shells and CI
//! through the process status, not only through stdout text.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

const FIG7_DECK: &str =
    "R1 in n1 15\nC1 n1 0 2\nRB n1 ns 8\nCB ns 0 7\nU1 n1 n2 3 4\nC2 n2 0 9\n.output n2\n";

const ECO_DECK: &str = "\
*D_NET slow 0.3\n*CONN\n*I drv I\n*P y O\n*CAP\n1 y 0.3\n*RES\n1 drv y 800\n*END\n";

fn rcdelay() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rcdelay"))
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcdelay-exit-codes-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("temp file");
    path
}

fn run(args: &[&str]) -> Output {
    rcdelay().args(args).output().expect("rcdelay runs")
}

#[test]
fn passing_certification_exits_zero() {
    let deck = write_temp("fig7.sp", FIG7_DECK);
    let out = run(&["--budget", "1000", deck.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("pass"));
}

#[test]
fn indeterminate_certification_exits_two() {
    // Bounds straddling the budget cannot prove timing either way; the
    // gate must not go green (exit 0), but the distinct status 2 lets
    // callers tell "unproven" from "proven violation".
    let deck = write_temp("fig7_indet.sp", FIG7_DECK);
    let out = run(&[
        "--threshold",
        "0.9",
        "--budget",
        "900",
        deck.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("indeterminate"));
}

#[test]
fn failing_certification_exits_nonzero() {
    let deck = write_temp("fig7_fail.sp", FIG7_DECK);
    let out = run(&["--budget", "1e-3", deck.to_str().unwrap()]);
    assert!(!out.status.success(), "{out:?}");
    // The report itself still prints; the failure is in the status.
    assert!(String::from_utf8_lossy(&out.stdout).contains("fail"));
}

#[test]
fn eco_session_exit_codes_follow_the_final_verdict() {
    let deck = write_temp("eco.spef", ECO_DECK);
    let script = write_temp("edits.eco", "setcap slow y 0.6e-12\n");
    let pass = run(&[
        "eco",
        "--budget",
        "100e-9",
        deck.to_str().unwrap(),
        script.to_str().unwrap(),
    ]);
    assert!(pass.status.success(), "{pass:?}");
    assert!(String::from_utf8_lossy(&pass.stdout).contains("final certification: pass"));

    let fail = run(&[
        "eco",
        "--budget",
        "1e-12",
        deck.to_str().unwrap(),
        script.to_str().unwrap(),
    ]);
    assert!(!fail.status.success(), "{fail:?}");
    assert!(String::from_utf8_lossy(&fail.stdout).contains("final certification: fail"));
}

#[test]
fn eco_unknown_node_exits_nonzero_with_the_offending_token() {
    let deck = write_temp("eco_unknown.spef", ECO_DECK);
    let script = write_temp("bad.eco", "setcap slow ghost 1e-15\n");
    let out = run(&[
        "eco",
        "--budget",
        "100e-9",
        deck.to_str().unwrap(),
        script.to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("line 1") && stderr.contains("`ghost`"),
        "{stderr}"
    );
}

#[test]
fn eco_multi_edit_line_errors_carry_the_edit_index() {
    // A failing edit inside a `;`-separated multi-edit line must name both
    // the script line and the 1-based edit within it; this pins the
    // `line N, edit K` format.
    let deck = write_temp("eco_multi.spef", ECO_DECK);
    let script = write_temp(
        "multi.eco",
        "setcap slow y 0.6e-12; setcap slow ghost 1e-15\n",
    );
    let out = run(&[
        "eco",
        "--budget",
        "100e-9",
        deck.to_str().unwrap(),
        script.to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("line 1, edit 2") && stderr.contains("`ghost`"),
        "{stderr}"
    );
    // Single-edit lines keep the bare `line N` form.
    let script = write_temp("single.eco", "setcap slow ghost 1e-15\n");
    let out = run(&[
        "eco",
        "--budget",
        "100e-9",
        deck.to_str().unwrap(),
        script.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("line 1:") && !stderr.contains("edit 1"),
        "{stderr}"
    );
}

#[test]
fn eco_watch_streams_edits_from_stdin() {
    // The sizing-loop server mode: pipe a 3-edit script over stdin and
    // collect one output line per edit plus the final verdict, with the
    // exit status still reflecting the certification.
    let deck = write_temp("eco_watch.spef", ECO_DECK);
    let mut child = rcdelay()
        .args([
            "eco",
            "--watch",
            "--budget",
            "100e-9",
            deck.to_str().unwrap(),
            "-",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("rcdelay spawns");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(
            b"setcap slow y 0.6e-12\n# a comment\nsetcap slow y 0.4e-12; setcap slow y 0.5e-12\n",
        )
        .expect("script piped");
    let out = child.wait_with_output().expect("rcdelay runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["baseline:", "edit    1", "edit    2", "edit    3"] {
        assert!(stdout.contains(needle), "missing `{needle}` in: {stdout}");
    }
    assert!(stdout.contains("final certification: pass"), "{stdout}");

    // A failing edit is reported (with its location) and skipped; the
    // session keeps serving and still exits on the final verdict.
    let mut child = rcdelay()
        .args([
            "eco",
            "--watch",
            "--budget",
            "100e-9",
            deck.to_str().unwrap(),
            "-",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("rcdelay spawns");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(b"setcap slow ghost 1e-15\nsetcap slow y 0.6e-12\nquit\n")
        .expect("script piped");
    let out = child.wait_with_output().expect("rcdelay runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("line 1") && stderr.contains("`ghost`"),
        "{stderr}"
    );
    assert!(stdout.contains("edit    1"), "{stdout}");
}

#[test]
fn eco_watch_tail_handles_a_missing_final_newline() {
    // A tailed script whose last line lacks a trailing newline (editors and
    // `echo -n` both produce these) must still be processed after the
    // writer goes quiet — the session used to hang forever on the partial
    // `quit`.
    let deck = write_temp("eco_tail_nonl.spef", ECO_DECK);
    let script = write_temp("tail_nonl.eco", "setcap slow y 0.6e-12\nquit");
    let out = run(&[
        "eco",
        "--watch",
        "--budget",
        "100e-9",
        deck.to_str().unwrap(),
        script.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("edit    1"), "{stdout}");
    assert!(stdout.contains("final certification: pass"), "{stdout}");
}

#[test]
fn eco_watch_tails_a_script_file_until_quit() {
    let deck = write_temp("eco_tail.spef", ECO_DECK);
    let script = write_temp("tail.eco", "setcap slow y 0.6e-12\nquit\n");
    let out = run(&[
        "eco",
        "--watch",
        "--budget",
        "100e-9",
        deck.to_str().unwrap(),
        script.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("edit    1"), "{stdout}");
    assert!(stdout.contains("final certification: pass"), "{stdout}");
}

#[test]
fn eco_without_budget_is_a_usage_error() {
    let deck = write_temp("eco_nobudget.spef", ECO_DECK);
    let script = write_temp("nobudget.eco", "setcap slow y 1e-15\n");
    let out = run(&["eco", deck.to_str().unwrap(), script.to_str().unwrap()]);
    assert!(!out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--budget"));
}
