//! Exit-code regression tests for the `rcdelay` binary: a failing
//! certification and a bad edit script must be visible to shells and CI
//! through the process status, not only through stdout text.

use std::path::PathBuf;
use std::process::{Command, Output};

const FIG7_DECK: &str =
    "R1 in n1 15\nC1 n1 0 2\nRB n1 ns 8\nCB ns 0 7\nU1 n1 n2 3 4\nC2 n2 0 9\n.output n2\n";

const ECO_DECK: &str = "\
*D_NET slow 0.3\n*CONN\n*I drv I\n*P y O\n*CAP\n1 y 0.3\n*RES\n1 drv y 800\n*END\n";

fn rcdelay() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rcdelay"))
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcdelay-exit-codes-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("temp file");
    path
}

fn run(args: &[&str]) -> Output {
    rcdelay().args(args).output().expect("rcdelay runs")
}

#[test]
fn passing_certification_exits_zero() {
    let deck = write_temp("fig7.sp", FIG7_DECK);
    let out = run(&["--budget", "1000", deck.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("pass"));
}

#[test]
fn indeterminate_certification_exits_two() {
    // Bounds straddling the budget cannot prove timing either way; the
    // gate must not go green (exit 0), but the distinct status 2 lets
    // callers tell "unproven" from "proven violation".
    let deck = write_temp("fig7_indet.sp", FIG7_DECK);
    let out = run(&[
        "--threshold",
        "0.9",
        "--budget",
        "900",
        deck.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("indeterminate"));
}

#[test]
fn failing_certification_exits_nonzero() {
    let deck = write_temp("fig7_fail.sp", FIG7_DECK);
    let out = run(&["--budget", "1e-3", deck.to_str().unwrap()]);
    assert!(!out.status.success(), "{out:?}");
    // The report itself still prints; the failure is in the status.
    assert!(String::from_utf8_lossy(&out.stdout).contains("fail"));
}

#[test]
fn eco_session_exit_codes_follow_the_final_verdict() {
    let deck = write_temp("eco.spef", ECO_DECK);
    let script = write_temp("edits.eco", "setcap slow y 0.6e-12\n");
    let pass = run(&[
        "eco",
        "--budget",
        "100e-9",
        deck.to_str().unwrap(),
        script.to_str().unwrap(),
    ]);
    assert!(pass.status.success(), "{pass:?}");
    assert!(String::from_utf8_lossy(&pass.stdout).contains("final certification: pass"));

    let fail = run(&[
        "eco",
        "--budget",
        "1e-12",
        deck.to_str().unwrap(),
        script.to_str().unwrap(),
    ]);
    assert!(!fail.status.success(), "{fail:?}");
    assert!(String::from_utf8_lossy(&fail.stdout).contains("final certification: fail"));
}

#[test]
fn eco_unknown_node_exits_nonzero_with_the_offending_token() {
    let deck = write_temp("eco_unknown.spef", ECO_DECK);
    let script = write_temp("bad.eco", "setcap slow ghost 1e-15\n");
    let out = run(&[
        "eco",
        "--budget",
        "100e-9",
        deck.to_str().unwrap(),
        script.to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("line 1") && stderr.contains("`ghost`"),
        "{stderr}"
    );
}

#[test]
fn eco_without_budget_is_a_usage_error() {
    let deck = write_temp("eco_nobudget.spef", ECO_DECK);
    let script = write_temp("nobudget.eco", "setcap slow y 1e-15\n");
    let out = run(&["eco", deck.to_str().unwrap(), script.to_str().unwrap()]);
    assert!(!out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--budget"));
}
