//! `rcdelay` — Penfield–Rubinstein delay bounds from the command line.
//!
//! See [`rctree_cli::USAGE`] or run `rcdelay --help`.
//!
//! Exit status: `0` when every requested certification passes (or none
//! was requested), `1` on any error **and** whenever a certification
//! (`--budget`, or the final verdict of an `rcdelay eco` session) fails,
//! `2` when the bounds cannot decide (`indeterminate`) — so a CI gate on
//! "exit 0" only goes green for *proven* timing.

use std::io::Read;
use std::process::ExitCode;

use rctree_cli::{load_tree, parse_args, report, run_eco, CliError, Command, USAGE};
use rctree_core::cert::Certification;

fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("cannot read standard input: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
    }
}

/// Maps an optional certification verdict to the process exit status.
fn verdict_exit(verdict: Option<Certification>) -> ExitCode {
    match verdict {
        Some(Certification::Fail) => ExitCode::FAILURE,
        Some(Certification::Indeterminate) => ExitCode::from(2),
        Some(Certification::Pass) | None => ExitCode::SUCCESS,
    }
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(CliError::Usage(message)) => {
            if message == USAGE {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
        Err(other) => {
            eprintln!("error: {other}");
            return ExitCode::FAILURE;
        }
    };

    let text = match read_input(&opts.path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    match &opts.command {
        Command::Report => match load_tree(&text, &opts).and_then(|tree| report(&tree, &opts)) {
            Ok(report) => {
                print!("{report}");
                // The verdict must be visible to scripts and CI, not just
                // humans reading stdout: fail → 1, unproven → 2.
                verdict_exit(report.certification)
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Command::Eco { script, .. } => {
            let script_text = match read_input(script) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match run_eco(&text, &script_text, &opts) {
                Ok(outcome) => {
                    print!("{}", outcome.text);
                    verdict_exit(Some(outcome.certification))
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
    }
}
