//! `rcdelay` — Penfield–Rubinstein delay bounds from the command line.
//!
//! See [`rctree_cli::USAGE`] or run `rcdelay --help`.
//!
//! Exit status: `0` when every requested certification passes (or none
//! was requested), `1` on any error **and** whenever a certification
//! (`--budget`, or the final verdict of an `rcdelay eco` session) fails,
//! `2` when the bounds cannot decide (`indeterminate`) — so a CI gate on
//! "exit 0" only goes green for *proven* timing.

use std::io::{BufRead, Read, Write};
use std::process::ExitCode;

use rctree_cli::{
    certify_over_from_paths, deck_design_from_paths, deck_report_from_paths, load_corner_set,
    load_tree, parse_args, parse_eco_script_line, profile_from_paths, read_deck_nets,
    render_profile_json, render_profile_table, report, run_eco_path, CliError, Command, EcoSession,
    Options, ScriptLine, USAGE,
};
use rctree_core::cert::Certification;
use rctree_core::units::Seconds;

fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("cannot read standard input: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
    }
}

/// Maps an optional certification verdict to the process exit status.
fn verdict_exit(verdict: Option<Certification>) -> ExitCode {
    match verdict {
        Some(Certification::Fail) => ExitCode::FAILURE,
        Some(Certification::Indeterminate) => ExitCode::from(2),
        Some(Certification::Pass) | None => ExitCode::SUCCESS,
    }
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(CliError::Usage(message)) => {
            if message == USAGE {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
        Err(other) => {
            eprintln!("error: {other}");
            return ExitCode::FAILURE;
        }
    };

    match &opts.command {
        Command::Report => {
            let text = match read_input(&opts.path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match load_tree(&text, &opts).and_then(|tree| report(&tree, &opts)) {
                Ok(report) => {
                    print!("{report}");
                    // The verdict must be visible to scripts and CI, not
                    // just humans reading stdout: fail → 1, unproven → 2.
                    verdict_exit(report.certification)
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Command::Eco { script, watch, .. } => {
            // The deck streams from its path through the chunked SPEF
            // reader inside the session/run helpers — it is never read
            // into one string here.
            if *watch {
                return run_watch(script, &opts);
            }
            let script_text = match read_input(script) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match run_eco_path(&opts.path, &script_text, &opts) {
                Ok(outcome) => {
                    print!("{}", outcome.text);
                    verdict_exit(Some(outcome.certification))
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Command::DeckReport { decks, driver } => {
            let budget = opts.budget.expect("report mode requires --budget");
            let jobs = opts.jobs.unwrap_or_else(rctree_par::default_jobs);
            let corners = match opts.corners.as_deref().map(load_corner_set).transpose() {
                Ok(corners) => corners,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match deck_report_from_paths(
                decks,
                driver,
                opts.threshold,
                budget,
                jobs,
                corners.as_ref(),
                opts.corner.as_deref(),
            ) {
                Ok(report) => {
                    print!("{}", report.text);
                    verdict_exit(report.certification)
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Command::CertifyOver {
            decks,
            driver,
            over_r,
            over_c,
        } => {
            let budget = opts.budget.expect("certify-over mode requires --budget");
            let jobs = opts.jobs.unwrap_or_else(rctree_par::default_jobs);
            match certify_over_from_paths(
                decks,
                driver,
                opts.threshold,
                budget,
                jobs,
                *over_r,
                *over_c,
            ) {
                Ok(report) => {
                    print!("{}", report.text);
                    verdict_exit(report.certification)
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Command::Serve {
            decks,
            driver,
            port,
            shards,
            poll_us,
            slow_us,
        } => run_serve(&opts, decks, driver, *port, *shards, *poll_us, *slow_us),
        Command::Profile {
            decks,
            driver,
            json,
        } => {
            let budget = opts.budget.expect("profile mode requires --budget");
            let jobs = opts.jobs.unwrap_or_else(rctree_par::default_jobs);
            match profile_from_paths(decks, driver, opts.threshold, budget, jobs) {
                Ok((rows, certification)) => {
                    if *json {
                        print!("{}", render_profile_json(&rows));
                    } else {
                        print!("{}", render_profile_table(&rows));
                    }
                    verdict_exit(Some(certification))
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Command::Scrape {
            addr,
            stable,
            out,
            prev,
        } => run_scrape(addr, *stable, out.as_deref(), prev.as_deref()),
        Command::BenchClient {
            addr,
            deck,
            connections,
            requests,
            seed,
            eco_fraction,
            shards,
            out,
            shutdown,
        } => run_bench_client(
            &opts,
            addr,
            deck,
            *connections,
            *requests,
            *seed,
            *eco_fraction,
            *shards,
            out,
            *shutdown,
        ),
        Command::GenDeck { nets, seed } => {
            let params = rctree_workloads::SpefDeckParams {
                nets: *nets,
                ..rctree_workloads::SpefDeckParams::default()
            };
            // Stream net by net: a million-net fixture deck writes in
            // constant memory instead of materialising gigabytes first.
            let stdout = std::io::stdout();
            let mut out = std::io::BufWriter::new(stdout.lock());
            let written = rctree_workloads::render_spef_deck(&params, *seed, &mut out)
                .and_then(|()| out.flush());
            if let Err(e) = written {
                eprintln!("error: cannot write deck: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
    }
}

/// `rcdelay serve`: build the deck design, start the server, and block
/// until a client sends `SHUTDOWN`.
fn run_serve(
    opts: &Options,
    decks: &[String],
    driver: &str,
    port: u16,
    shards: usize,
    poll_us: Option<u64>,
    slow_us: Option<u64>,
) -> ExitCode {
    let budget = opts.budget.expect("serve mode requires --budget");
    let jobs = opts.jobs.unwrap_or_else(rctree_par::default_jobs);
    let mut design = match deck_design_from_paths(decks, driver, jobs) {
        Ok(design) => design,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(spec) = opts.corners.as_deref() {
        match load_corner_set(spec) {
            Ok(set) => design.set_corners(set),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut config = rctree_serve::ServeConfig::new(opts.threshold, Seconds::new(budget), jobs);
    config.shards = shards;
    if let Some(us) = poll_us {
        config.poll_floor = std::time::Duration::from_micros(us);
    }
    config.slow_us = slow_us;
    let server = match rctree_serve::Server::start(design, &config, ("127.0.0.1", port)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The listening line is the machine-readable handshake: scripts (and
    // the CI smoke step) scrape the bound address from it.
    emit(&format!(
        "rctree-serve listening on {} ({} nets, threshold {}, budget {budget:e} s, {jobs} jobs, \
         {} shards)",
        server.local_addr(),
        server.net_count(),
        opts.threshold,
        server.shard_count()
    ));
    server.join();
    emit("rctree-serve stopped");
    ExitCode::SUCCESS
}

/// `rcdelay bench-client`: drive a running server with a seeded request
/// mix and write the JSON summary.
#[allow(clippy::too_many_arguments)]
fn run_bench_client(
    opts: &Options,
    addr: &str,
    deck: &str,
    connections: usize,
    requests: usize,
    seed: u64,
    eco_fraction: f64,
    shards: usize,
    out: &str,
    shutdown: bool,
) -> ExitCode {
    use std::net::ToSocketAddrs;

    let jobs = opts.jobs.unwrap_or_else(rctree_par::default_jobs);
    let nets = match read_deck_nets(deck, jobs) {
        Ok(nets) => nets
            .into_iter()
            .map(|n| (n.name, n.tree))
            .collect::<Vec<_>>(),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let params = rctree_workloads::RequestMixParams {
        requests_per_connection: requests,
        eco_fraction,
        certify_budget: opts.budget.unwrap_or(100e-9),
    };
    let scripts = if shards > 1 {
        rctree_workloads::shard_crossing_mix(&nets, connections, &params, shards, seed)
    } else {
        rctree_workloads::request_mix(&nets, connections, &params, seed)
    };
    let socket = match addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(socket) => socket,
        None => {
            eprintln!("error: cannot resolve `{addr}`");
            return ExitCode::FAILURE;
        }
    };
    // Server-side counters bracket the run: the stable (deterministic)
    // METRICS subset scraped before and after, diffed into the JSON
    // summary so a benchmark record says what the *server* did, not just
    // what the client observed.  Best-effort — a scrape failure degrades
    // to an empty delta map, it never fails the bench.
    let before = match rctree_serve::fetch_metrics(socket, true) {
        Ok(text) => Some(text),
        Err(e) => {
            eprintln!("warning: METRICS scrape before load failed: {e}");
            None
        }
    };
    let mut report = match rctree_serve::run_load(socket, &scripts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: load run against {addr} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(before) = before {
        match rctree_serve::fetch_metrics(socket, true) {
            Ok(after) => {
                let parsed = rctree_obs::parse_exposition(&before)
                    .and_then(|b| rctree_obs::parse_exposition(&after).map(|a| (b, a)));
                match parsed {
                    Ok((b, a)) => report.server_deltas = rctree_obs::counter_deltas(&b, &a),
                    Err(e) => eprintln!("warning: METRICS exposition failed to parse: {e}"),
                }
            }
            Err(e) => eprintln!("warning: METRICS scrape after load failed: {e}"),
        }
    }
    for (key, delta) in &report.server_deltas {
        if key.starts_with("rctree_requests_total")
            || key.starts_with("rctree_protocol_errors_total")
            || key.starts_with("rctree_report_cache_hits_total")
        {
            emit(&format!("bench-client: server {key} +{delta:.0}"));
        }
    }
    emit(&format!(
        "bench-client: {} connections x {} requests -> {:.0} queries/s \
         (p50 {:.0} us, p90 {:.0} us, p99 {:.0} us, {} protocol errors)",
        report.connections,
        requests,
        report.queries_per_s,
        report.p50_us,
        report.p90_us,
        report.p99_us,
        report.protocol_errors
    ));
    for v in &report.per_verb {
        emit(&format!(
            "bench-client: {:>6}: {} requests, p50 {:.0} us, p90 {:.0} us, p99 {:.0} us",
            v.verb, v.requests, v.p50_us, v.p90_us, v.p99_us
        ));
    }
    if let Some(parent) = std::path::Path::new(out).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    if let Err(e) = std::fs::write(out, report.to_json()) {
        eprintln!("error: cannot write `{out}`: {e}");
        return ExitCode::FAILURE;
    }
    emit(&format!("summary written to {out}"));
    if shutdown {
        if let Err(e) = send_shutdown(socket) {
            eprintln!("error: SHUTDOWN failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `rcdelay scrape`: fetch a running server's `METRICS` exposition, check
/// it is well-formed and carries the core server series, optionally check
/// counter monotonicity against a previous scrape, and write it out.
fn run_scrape(addr: &str, stable: bool, out: Option<&str>, prev: Option<&str>) -> ExitCode {
    use std::net::ToSocketAddrs;

    let socket = match addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(socket) => socket,
        None => {
            eprintln!("error: cannot resolve `{addr}`");
            return ExitCode::FAILURE;
        }
    };
    let text = match rctree_serve::fetch_metrics(socket, stable) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: METRICS scrape of {addr} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let exposition = match rctree_obs::parse_exposition(&text) {
        Ok(exposition) => exposition,
        Err(e) => {
            eprintln!("error: exposition is malformed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The server registers its core families eagerly, so their absence
    // means the scrape did not hit an rctree server (or hit a bug).
    for family in ["rctree_connections_total", "rctree_requests_total"] {
        if !exposition.families.contains_key(family) {
            eprintln!("error: exposition is missing required family `{family}`");
            return ExitCode::FAILURE;
        }
    }
    if let Some(prev_path) = prev {
        let prev_text = match std::fs::read_to_string(prev_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read `{prev_path}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        let prev_exposition = match rctree_obs::parse_exposition(&prev_text) {
            Ok(exposition) => exposition,
            Err(e) => {
                eprintln!("error: previous exposition is malformed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = rctree_obs::check_monotone(&prev_exposition, &exposition) {
            eprintln!("error: counter went backwards against `{prev_path}`: {e}");
            return ExitCode::FAILURE;
        }
        emit(&format!(
            "scrape: {} series, monotone against {prev_path}",
            exposition.series.len()
        ));
    } else {
        emit(&format!("scrape: {} series", exposition.series.len()));
    }
    match out {
        Some(path) => {
            if let Some(parent) = std::path::Path::new(path).parent() {
                if !parent.as_os_str().is_empty() {
                    let _ = std::fs::create_dir_all(parent);
                }
            }
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("error: cannot write `{path}`: {e}");
                return ExitCode::FAILURE;
            }
            emit(&format!("exposition written to {path}"));
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

/// Sends `SHUTDOWN` on a fresh connection and waits for its `OK`.
fn send_shutdown(addr: std::net::SocketAddr) -> std::io::Result<()> {
    let stream = std::net::TcpStream::connect(addr)?;
    let mut reader = std::io::BufReader::new(stream.try_clone()?);
    let mut writer = std::io::BufWriter::new(stream);
    writeln!(writer, "SHUTDOWN")?;
    writer.flush()?;
    let mut line = String::new();
    reader.read_line(&mut line)?;
    Ok(())
}

/// Prints a session line immediately (stdout is block-buffered when piped,
/// and a sizing loop wants each slack delta as it lands).
fn emit(line: &str) {
    let mut stdout = std::io::stdout();
    let _ = writeln!(stdout, "{line}");
    let _ = stdout.flush();
}

/// One streamed script line: parse, apply each edit, report.  Bad lines
/// and failing edits are reported on stderr and skipped — the engine is
/// transactional, so the session keeps serving.  Returns `true` on `quit`.
fn watch_line(session: &mut EcoSession, line_no: usize, raw: &str) -> bool {
    match parse_eco_script_line(line_no, raw) {
        Ok(ScriptLine::Empty) => false,
        Ok(ScriptLine::Quit) => true,
        Ok(ScriptLine::Edits(edits)) => {
            for se in &edits {
                match session.apply(se) {
                    Ok(out) => emit(&out),
                    Err(e) => eprintln!("error: {e}"),
                }
            }
            false
        }
        Err(e) => {
            eprintln!("error: {e}");
            false
        }
    }
}

/// `rcdelay eco --watch`: stream the edit script line by line — from
/// standard input when the script argument is `-`, or by tailing the
/// script file (polled; a `quit` line ends the session) — printing each
/// edit's slack delta as it lands.  The exit status reflects the final
/// certification, exactly like batch mode.  The deck itself streams from
/// `opts.path` through the chunked SPEF reader.
fn run_watch(script: &str, opts: &Options) -> ExitCode {
    let (mut session, header) = match EcoSession::open(&opts.path, opts, None) {
        Ok(started) => started,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{header}");
    let _ = std::io::stdout().flush();

    let mut line_no = 0usize;
    if script == "-" {
        let stdin = std::io::stdin();
        for raw in stdin.lock().lines() {
            let raw = match raw {
                Ok(raw) => raw,
                Err(e) => {
                    eprintln!("error: cannot read standard input: {e}");
                    break;
                }
            };
            line_no += 1;
            if watch_line(&mut session, line_no, &raw) {
                break;
            }
        }
    } else {
        let file = match std::fs::File::open(script) {
            Ok(file) => file,
            Err(e) => {
                eprintln!("error: cannot read `{script}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut reader = std::io::BufReader::new(file);
        let mut buf = String::new();
        // Polls with no new data while a partial line is pending; after two
        // quiet polls the pending text is treated as a complete final line,
        // so a script whose last line (e.g. `quit`) lacks a trailing
        // newline cannot hang the session.  The poll interval rides the
        // server's idle-backoff ramp (1 ms floor, 25 ms cap, reset on new
        // data), so a bursty writer is tailed at the floor and an idle
        // script costs a wake-up per cap interval.
        let mut quiet_polls = 0u32;
        let mut idle = rctree_serve::Backoff::server_default();
        loop {
            match reader.read_line(&mut buf) {
                Err(e) => {
                    eprintln!("error: cannot read `{script}`: {e}");
                    break;
                }
                // No new data yet: poll until the writer appends or quits.
                Ok(0) => {
                    if !buf.is_empty() {
                        quiet_polls += 1;
                        if quiet_polls >= 2 {
                            line_no += 1;
                            let quit = watch_line(
                                &mut session,
                                line_no,
                                buf.trim_end_matches(['\n', '\r']),
                            );
                            buf.clear();
                            quiet_polls = 0;
                            if quit {
                                break;
                            }
                            continue;
                        }
                    }
                    std::thread::sleep(idle.current());
                    idle.backoff();
                }
                Ok(_) => {
                    quiet_polls = 0;
                    idle.reset();
                    if buf.ends_with('\n') {
                        line_no += 1;
                        let quit =
                            watch_line(&mut session, line_no, buf.trim_end_matches(['\n', '\r']));
                        buf.clear();
                        if quit {
                            break;
                        }
                    }
                    // else: a partially written line — keep accumulating.
                }
            }
        }
    }
    emit(&session.footer());
    verdict_exit(Some(session.certification()))
}
