//! `rcdelay` — Penfield–Rubinstein delay bounds from the command line.
//!
//! See [`rctree_cli::USAGE`] or run `rcdelay --help`.

use std::io::Read;
use std::process::ExitCode;

use rctree_cli::{load_tree, parse_args, report, CliError, USAGE};

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(CliError::Usage(message)) => {
            if message == USAGE {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
        Err(other) => {
            eprintln!("error: {other}");
            return ExitCode::FAILURE;
        }
    };

    let text = if opts.path == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("error: cannot read standard input: {e}");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&opts.path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read `{}`: {e}", opts.path);
                return ExitCode::FAILURE;
            }
        }
    };

    match load_tree(&text, &opts).and_then(|tree| report(&tree, &opts)) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
