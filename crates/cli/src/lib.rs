//! # rctree-cli
//!
//! The `rcdelay` command-line tool: Penfield–Rubinstein delay-bound analysis
//! for RC-tree netlists from the shell.
//!
//! ```text
//! rcdelay [OPTIONS] <netlist-file>
//! rcdelay eco [OPTIONS] --budget <seconds> <deck.spef> <edit-script>
//! rcdelay report --budget <seconds> <deck.spef>...
//! rcdelay serve --budget <seconds> [--port N] <deck.spef>...
//! rcdelay bench-client [OPTIONS] <host:port> <deck.spef>
//! rcdelay gen-deck [--nets N] [--seed N]
//!
//!   --format <spice|spef|expr>   input format          (default: spice; eco: spef)
//!   --net <name>                 SPEF net to analyse   (default: first net)
//!   --threshold <v>              switching threshold   (default: 0.5)
//!   --budget <seconds>           certify against a delay budget
//!   --voltage-at <seconds>       also report voltage bounds at this time
//!   --jobs <n>                   worker threads        (default: available parallelism)
//!   --driver <cell>              eco mode driver cell  (default: inv_4x)
//!   --watch                      eco mode: stream the script line by line
//!   --corners <spec>             report/serve/eco: multi-corner PVT set
//!   --corner <k|name|worst>      report mode: select the printed corner
//!   --help                       print usage
//! ```
//!
//! `rcdelay report` prints the deck-level design timing report —
//! byte-identical to the `REPORT` payload of a server on the same decks;
//! `rcdelay serve` starts the `rctree-serve` timing/ECO server and
//! `rcdelay bench-client` load-tests one (emitting
//! `target/BENCH_serve.json`); `rcdelay gen-deck` prints a reproducible
//! multi-net SPEF deck for smoke tests.
//!
//! `rcdelay eco` turns the deck into a per-net timing design, applies an
//! edit script one edit at a time through the incremental ECO engine, and
//! prints the slack delta after every edit.  Several directives may share
//! a line separated by `;` — errors then report the 1-based edit index
//! within the line next to the line number.  The process exits nonzero
//! when the final certification fails or when the script references an
//! unknown net or node (reported with the offending token and location).
//!
//! # Watch mode
//!
//! With `--watch` the script is consumed **line by line** instead of up
//! front — from standard input when the script argument is `-`, or by
//! tailing the script file (polled every 40 ms) otherwise — and each
//! edit's slack delta is printed (and flushed) as it lands.  That turns
//! the command into a sizing-loop server: a synthesis or optimisation
//! process pipes one edit batch per line and reads one slack line back
//! per edit.  Failing edits are reported on stderr and *skipped* (the
//! incremental engine is transactional, so the session state stays
//! valid); a `quit` line — or end of input — ends the session, and the
//! exit status reflects the final certification exactly like batch mode.
//!
//! The library half of the crate (this module) contains the argument parser
//! and the report generation so that both are unit-testable without spawning
//! a process; `main.rs` is a thin wrapper that reads the file and prints the
//! report.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;

use rctree_core::analysis::TreeAnalysis;
use rctree_core::cert::Certification;
use rctree_core::corner::CornerSet;
use rctree_core::tree::RcTree;
use rctree_core::units::Seconds;
use rctree_netlist::{parse_expr, parse_spef_deck, parse_spef_read, parse_spice, SpefNet};
use rctree_sta::{CellLibrary, Design};
pub use rctree_sta::{ScriptEdit, ScriptLine};

/// Input netlist formats understood by the tool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputFormat {
    /// SPICE-subset deck (R/C/U cards).
    Spice,
    /// SPEF-lite parasitic file.
    Spef,
    /// The paper's `URC`/`WB`/`WC` wiring-algebra expression.
    Expr,
}

/// The tool's operating mode.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// One-shot delay-bound report of a single tree (the default).
    Report,
    /// Incremental ECO session: apply an edit script to a SPEF deck and
    /// print per-edit slack deltas.
    Eco {
        /// Path of the edit-script file (`-` for standard input).
        script: String,
        /// Driver cell prepended to every extracted net.
        driver: String,
        /// Stream the script line by line (stdin or a file tail), printing
        /// each edit's slack delta as it lands, instead of reading the
        /// whole script up front.
        watch: bool,
    },
    /// Deck-level design report (`rcdelay report`): every net of one or
    /// more SPEF decks as a timed stage, the full arrival-propagated
    /// timing report printed — byte-identical to the payload of the
    /// server's `REPORT` verb on the same decks.
    DeckReport {
        /// SPEF deck paths (`-` for standard input).
        decks: Vec<String>,
        /// Driver cell prepended to every extracted net.
        driver: String,
    },
    /// Continuum certification over a box of global wire scales
    /// (`rcdelay certify-over`): one symbolic polynomial analysis
    /// certifies every `(r_scale, c_scale)` in the box and prints the
    /// exact worst point — byte-identical to the payload of the server's
    /// `CERTIFY --over` verb on the same decks.
    CertifyOver {
        /// SPEF deck paths (`-` for standard input).
        decks: Vec<String>,
        /// Driver cell prepended to every extracted net.
        driver: String,
        /// `r_scale` range (`--over-r`).
        over_r: (f64, f64),
        /// `c_scale` range (`--over-c`; nominal `(1, 1)` when omitted).
        over_c: (f64, f64),
    },
    /// Long-running timing server (`rcdelay serve`): load the decks into
    /// a shared design and serve the `rctree-serve` wire protocol.
    Serve {
        /// SPEF deck paths.
        decks: Vec<String>,
        /// Driver cell prepended to every extracted net.
        driver: String,
        /// TCP port to bind on 127.0.0.1 (0 picks an ephemeral port,
        /// printed on startup).
        port: u16,
        /// Writer shards the design is partitioned into (1 = the
        /// unsharded single-writer protocol).
        shards: usize,
        /// Idle-poll backoff floor in microseconds (`None` = the server
        /// default).
        poll_us: Option<u64>,
        /// Slow-request log threshold in microseconds (`--slow-us`;
        /// `None` disables the stderr slow log).
        slow_us: Option<u64>,
    },
    /// Per-phase pipeline profile (`rcdelay profile`): run the deck
    /// pipeline (ingest, net build, baseline analysis) under the
    /// observability runtime and print the per-phase duration breakdown.
    Profile {
        /// SPEF deck paths (`-` for standard input).
        decks: Vec<String>,
        /// Driver cell prepended to every extracted net.
        driver: String,
        /// Emit the machine-readable JSON document instead of the table.
        json: bool,
    },
    /// Scrape and validate a running server's `METRICS` exposition
    /// (`rcdelay scrape`): every line must parse, the required series must
    /// be present; optionally diff against a previous scrape for counter
    /// monotonicity.
    Scrape {
        /// Server address (`host:port`, as printed by `rcdelay serve`).
        addr: String,
        /// Scrape only the deterministic subset (`METRICS stable`).
        stable: bool,
        /// Write the scraped text here (`None`: stdout).
        out: Option<String>,
        /// Path of a previous scrape to check counter monotonicity
        /// against.
        prev: Option<String>,
    },
    /// Load generator (`rcdelay bench-client`): drive a running server
    /// with a seeded request mix and emit `BENCH_serve.json`.
    BenchClient {
        /// Server address (`host:port`, as printed by `rcdelay serve`).
        addr: String,
        /// The deck the server was started with (source of net/node names
        /// for the request mix).
        deck: String,
        /// Concurrent connections.
        connections: usize,
        /// Requests per connection.
        requests: usize,
        /// Mix seed.
        seed: u64,
        /// Fraction of requests that are ECO edits (0.0 = read-only).
        eco_fraction: f64,
        /// Writer shards of the target server (>1 switches to the
        /// shard-crossing mix so every connection hops shards).
        shards: usize,
        /// Output path of the JSON summary.
        out: String,
        /// Send `SHUTDOWN` to the server after the run.
        shutdown: bool,
    },
    /// Deterministic SPEF deck generator (`rcdelay gen-deck`), printed to
    /// standard output.
    GenDeck {
        /// Number of `*D_NET` sections.
        nets: usize,
        /// Generator seed.
        seed: u64,
    },
}

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Operating mode (`rcdelay` vs `rcdelay eco`).
    pub command: Command,
    /// Path of the netlist file (`-` for standard input).
    pub path: String,
    /// Input format.
    pub format: InputFormat,
    /// SPEF net name to analyse (first net when `None`).
    pub net: Option<String>,
    /// Switching threshold as a fraction of the swing.
    pub threshold: f64,
    /// Optional delay budget for certification, in seconds.
    pub budget: Option<f64>,
    /// Optional time at which to report voltage bounds, in seconds.
    pub voltage_at: Option<f64>,
    /// Worker threads for deck-scale work (`None`: `RCTREE_JOBS` or the
    /// available hardware parallelism, per [`rctree_par::default_jobs`]).
    pub jobs: Option<usize>,
    /// Multi-corner spec for the deck modes (`--corners`): a spec file
    /// path, or an inline spec when the value contains `=` (the
    /// `CornerSet::parse` grammar; separate inline lines with `;`).
    pub corners: Option<String>,
    /// Corner selector for `rcdelay report` (`--corner`): a lane index, a
    /// corner name, or `worst`.
    pub corner: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            command: Command::Report,
            path: String::new(),
            format: InputFormat::Spice,
            net: None,
            threshold: 0.5,
            budget: None,
            voltage_at: None,
            jobs: None,
            corners: None,
            corner: None,
        }
    }
}

/// Usage text printed for `--help` and argument errors.
pub const USAGE: &str = "\
rcdelay: Penfield-Rubinstein delay bounds for RC tree netlists

usage: rcdelay [OPTIONS] <netlist-file>
       rcdelay eco [OPTIONS] --budget <seconds> <deck.spef> <edit-script>
       rcdelay report --budget <seconds> <deck.spef>...
       rcdelay certify-over --budget <seconds> --over-r <lo..hi>
                            [--over-c <lo..hi>] <deck.spef>...
       rcdelay serve --budget <seconds> [--port <n>] [--shards <n>] <deck.spef>...
       rcdelay bench-client [OPTIONS] <host:port> <deck.spef>
       rcdelay profile --budget <seconds> [--json] <deck.spef>...
       rcdelay scrape [--stable] [--prev <file>] [--out <file>] <host:port>
       rcdelay gen-deck [--nets <n>] [--seed <n>]

`report` prints the deck-level design timing report (byte-identical to the
server's REPORT payload on the same decks); `certify-over` certifies the
budget over a whole continuum box of wire scales through the symbolic
polynomial lane and prints the exact worst point (byte-identical to the
server's `CERTIFY --over` payload); `serve` starts the rctree-serve
timing/ECO server (see crates/serve/README.md for the wire protocol);
`bench-client` drives a running server with a seeded request mix and writes
queries/s + latency percentiles (plus server-side METRICS counter deltas)
to target/BENCH_serve.json; `profile` runs the full deck pipeline under the
observability runtime and prints a per-phase time breakdown; `scrape`
fetches a running server's METRICS exposition, checks it is well-formed,
and optionally diffs it against a previous scrape; `gen-deck` prints a
reproducible multi-net SPEF deck.

options:
  --format <spice|spef|expr>   input format (default: spice; eco mode: spef)
  --net <name>                 SPEF net to analyse (default: first)
  --threshold <v>              switching threshold in (0,1) (default: 0.5)
  --budget <seconds>           certify every output against this budget
                               (required in eco mode; exit status 1 on a
                               failing certification, 2 on indeterminate)
  --voltage-at <seconds>       also report voltage bounds at this time
  --jobs <n>                   worker threads for deck parsing and design
                               analysis (default: RCTREE_JOBS, else
                               available parallelism)
  --driver <cell>              eco mode: driver cell for every extracted
                               net (default: inv_4x)
  --watch                      eco mode: stream the edit script line by
                               line (stdin when <edit-script> is `-`, a
                               polled file tail otherwise), printing each
                               edit's slack delta immediately; bad edits
                               are reported and skipped instead of ending
                               the session
  --corners <spec>             report/serve/eco: install a multi-corner
                               PVT set — a spec file path, or an inline
                               spec when the value contains `=` (lines
                               `<name>=<r>,<c>[,<d>]` and
                               `override <net> <corner> <r> <c>`,
                               `;`-separated inline); all corners are
                               timed in one traversal per net
  --corner <k|name|worst>      report mode: print this corner's report
                               instead of nominal (`worst` picks the
                               smallest-slack corner against --budget);
                               byte-identical to the server's
                               `REPORT --corner` payload
  --over-r <lo..hi>            certify-over: the r_scale range of the
                               certification box (both ends positive and
                               finite, lo <= hi; required)
  --over-c <lo..hi>            certify-over: the c_scale range of the box
                               (default 1..1, the nominal c line)
  --port <n>                   serve mode: TCP port on 127.0.0.1
                               (default 0 = ephemeral, printed on start)
  --shards <n>                 serve: partition the design into n writer
                               shards (net-range split; independent ECOs
                               commit concurrently; default 1 = the
                               unsharded single-writer protocol);
                               bench-client: generate the shard-crossing
                               mix for an n-shard server (default 1)
  --poll-us <n>                serve: idle-poll backoff floor in
                               microseconds (default 1000; ramps up to
                               25 ms while a connection stays idle)
  --slow-us <n>                serve: log requests slower than n
                               microseconds to stderr (default: off)
  --connections <n>            bench-client: concurrent connections (4)
  --requests <n>               bench-client: requests per connection (100)
  --eco-fraction <v>           bench-client: fraction of requests that are
                               ECO edits, in [0,1] (default 0 = read-only)
  --out <path>                 bench-client: JSON summary path
                               (default target/BENCH_serve.json);
                               scrape: write the exposition here instead
                               of stdout
  --shutdown                   bench-client: send SHUTDOWN when done
  --json                       profile: emit the breakdown as JSON
  --stable                     scrape: request only the deterministic
                               (cross-RCTREE_JOBS stable) metric subset
  --prev <file>                scrape: check counter monotonicity against
                               a previously scraped exposition file
  --nets <n>                   gen-deck: number of *D_NET sections (64)
  --seed <n>                   bench-client/gen-deck: generator seed (1)
  --help                       print this message

edit-script directives (`#` comments; several directives may share a line,
separated by `;` — errors then name the 1-based edit within the line):
  setcap  <net> <node> <farads>          replace a node's load capacitance
  setres  <net> <node> <ohms>            replace a branch with a resistor
  setline <net> <node> <ohms> <farads>   replace a branch with an RC line
  graft   <net> <parent> <name> <ohms> <farads>
                                         attach a new load node via a
                                         resistor (adds load to existing
                                         endpoints; not itself timed)
  prune   <net> <node>                   remove a node and its subtree
  quit                                   end the session (ends a --watch
                                         file tail cleanly)
";

/// Errors produced by argument parsing or analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// Bad or missing command-line arguments; the string is a message for
    /// the user.
    Usage(String),
    /// The netlist failed to parse.
    Netlist(String),
    /// The analysis failed (e.g. no outputs marked).
    Analysis(String),
    /// An ECO edit script failed to parse or apply; the message carries
    /// the 1-based script line and, where one can be singled out, the
    /// offending token in backticks (the same structured shape as the
    /// netlist parse errors).
    Script(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Netlist(m) => write!(f, "netlist error: {m}"),
            CliError::Analysis(m) => write!(f, "analysis error: {m}"),
            CliError::Script(m) => write!(f, "edit script error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parses command-line arguments (excluding the program name).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown flags, missing values, malformed
/// numbers, or a missing input path.  `--help` is reported as a usage error
/// carrying the usage text so the caller can print it and exit successfully.
pub fn parse_args<I, S>(args: I) -> Result<Options, CliError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Mode {
        Tree,
        Eco,
        DeckReport,
        CertifyOver,
        Serve,
        BenchClient,
        GenDeck,
        Profile,
        Scrape,
    }

    let mut opts = Options::default();
    let mut iter = args.into_iter();
    let mut positionals: Vec<String> = Vec::new();
    let mut mode = Mode::Tree;
    let mut watch = false;
    let mut driver = "inv_4x".to_string();
    let mut driver_given = false;
    let mut format_given = false;
    let mut first = true;
    let mut port: Option<u16> = None;
    let mut connections: Option<usize> = None;
    let mut requests: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut eco_fraction: Option<f64> = None;
    let mut out: Option<String> = None;
    let mut nets: Option<usize> = None;
    let mut shutdown = false;
    let mut shards: Option<usize> = None;
    let mut poll_us: Option<u64> = None;
    let mut slow_us: Option<u64> = None;
    let mut over_r: Option<(f64, f64)> = None;
    let mut over_c: Option<(f64, f64)> = None;
    let mut json = false;
    let mut stable = false;
    let mut prev: Option<String> = None;

    while let Some(arg) = iter.next() {
        let arg = arg.as_ref();
        if first {
            first = false;
            mode = match arg {
                "eco" => Mode::Eco,
                "report" => Mode::DeckReport,
                "certify-over" => Mode::CertifyOver,
                "serve" => Mode::Serve,
                "bench-client" => Mode::BenchClient,
                "gen-deck" => Mode::GenDeck,
                "profile" => Mode::Profile,
                "scrape" => Mode::Scrape,
                _ => Mode::Tree,
            };
            if mode != Mode::Tree {
                continue;
            }
        }
        let mut value_of = |name: &str| -> Result<String, CliError> {
            iter.next()
                .map(|v| v.as_ref().to_string())
                .ok_or_else(|| CliError::Usage(format!("{name} requires a value")))
        };
        let positive = |flag: &str, text: &str| -> Result<usize, CliError> {
            text.parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| {
                    CliError::Usage(format!("{flag}: `{text}` is not a positive integer"))
                })
        };
        match arg {
            "--help" | "-h" => return Err(CliError::Usage(USAGE.to_string())),
            "--driver" => {
                driver_given = true;
                driver = value_of("--driver")?;
            }
            "--watch" => watch = true,
            "--shutdown" => shutdown = true,
            "--format" => {
                format_given = true;
                opts.format = match value_of("--format")?.as_str() {
                    "spice" => InputFormat::Spice,
                    "spef" => InputFormat::Spef,
                    "expr" => InputFormat::Expr,
                    other => {
                        return Err(CliError::Usage(format!("unknown format `{other}`")));
                    }
                };
            }
            "--net" => opts.net = Some(value_of("--net")?),
            "--threshold" => {
                opts.threshold = parse_number(&value_of("--threshold")?, "--threshold")?;
            }
            "--budget" => {
                opts.budget = Some(parse_number(&value_of("--budget")?, "--budget")?);
            }
            "--voltage-at" => {
                opts.voltage_at = Some(parse_number(&value_of("--voltage-at")?, "--voltage-at")?);
            }
            "--jobs" => {
                let text = value_of("--jobs")?;
                opts.jobs = Some(positive("--jobs", &text)?);
            }
            "--port" => {
                let text = value_of("--port")?;
                port = Some(text.parse::<u16>().map_err(|_| {
                    CliError::Usage(format!("--port: `{text}` is not a port number"))
                })?);
            }
            "--connections" => {
                let text = value_of("--connections")?;
                connections = Some(positive("--connections", &text)?);
            }
            "--requests" => {
                let text = value_of("--requests")?;
                requests = Some(positive("--requests", &text)?);
            }
            "--seed" => {
                let text = value_of("--seed")?;
                seed = Some(text.parse::<u64>().map_err(|_| {
                    CliError::Usage(format!("--seed: `{text}` is not an unsigned integer"))
                })?);
            }
            "--eco-fraction" => {
                let value = parse_number(&value_of("--eco-fraction")?, "--eco-fraction")?;
                if !(0.0..=1.0).contains(&value) {
                    return Err(CliError::Usage(format!(
                        "--eco-fraction {value} must lie in [0, 1]"
                    )));
                }
                eco_fraction = Some(value);
            }
            "--corners" => opts.corners = Some(value_of("--corners")?),
            "--corner" => opts.corner = Some(value_of("--corner")?),
            "--shards" => {
                let text = value_of("--shards")?;
                shards = Some(positive("--shards", &text)?);
            }
            "--poll-us" => {
                let text = value_of("--poll-us")?;
                poll_us = Some(
                    text.parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| {
                            CliError::Usage(format!(
                                "--poll-us: `{text}` is not a positive integer"
                            ))
                        })?,
                );
            }
            "--slow-us" => {
                let text = value_of("--slow-us")?;
                slow_us = Some(
                    text.parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| {
                            CliError::Usage(format!(
                                "--slow-us: `{text}` is not a positive integer"
                            ))
                        })?,
                );
            }
            "--json" => json = true,
            "--stable" => stable = true,
            "--prev" => prev = Some(value_of("--prev")?),
            "--over-r" => {
                let text = value_of("--over-r")?;
                over_r = Some(
                    rctree_core::algebra::parse_scale_range(&text)
                        .map_err(|e| CliError::Usage(format!("--over-r: {e}")))?,
                );
            }
            "--over-c" => {
                let text = value_of("--over-c")?;
                over_c = Some(
                    rctree_core::algebra::parse_scale_range(&text)
                        .map_err(|e| CliError::Usage(format!("--over-c: {e}")))?,
                );
            }
            "--out" => out = Some(value_of("--out")?),
            "--nets" => {
                let text = value_of("--nets")?;
                nets = Some(positive("--nets", &text)?);
            }
            other if other.starts_with('-') && other != "-" => {
                return Err(CliError::Usage(format!("unknown option `{other}`")));
            }
            positional => positionals.push(positional.to_string()),
        }
    }

    // Flags that belong to one mode are refused elsewhere rather than
    // silently ignored.
    let refuse = |given: bool, message: &str| -> Result<(), CliError> {
        if given {
            Err(CliError::Usage(message.into()))
        } else {
            Ok(())
        }
    };
    if mode != Mode::Serve {
        refuse(port.is_some(), "--port only applies to `rcdelay serve`")?;
        refuse(
            poll_us.is_some(),
            "--poll-us only applies to `rcdelay serve`",
        )?;
        refuse(
            slow_us.is_some(),
            "--slow-us only applies to `rcdelay serve`",
        )?;
    }
    if mode != Mode::Profile {
        refuse(json, "--json only applies to `rcdelay profile`")?;
    }
    if mode != Mode::Scrape {
        refuse(stable, "--stable only applies to `rcdelay scrape`")?;
        refuse(prev.is_some(), "--prev only applies to `rcdelay scrape`")?;
    }
    if !matches!(mode, Mode::Serve | Mode::BenchClient) {
        refuse(
            shards.is_some(),
            "--shards only applies to `rcdelay serve` and `rcdelay bench-client`",
        )?;
    }
    if mode != Mode::BenchClient {
        refuse(
            connections.is_some() || requests.is_some() || eco_fraction.is_some(),
            "--connections/--requests/--eco-fraction only apply to `rcdelay bench-client`",
        )?;
        refuse(
            shutdown,
            "--shutdown only applies to `rcdelay bench-client`",
        )?;
    }
    if !matches!(mode, Mode::BenchClient | Mode::Scrape) {
        refuse(
            out.is_some(),
            "--out only applies to `rcdelay bench-client` and `rcdelay scrape`",
        )?;
    }
    if mode != Mode::GenDeck {
        refuse(nets.is_some(), "--nets only applies to `rcdelay gen-deck`")?;
    }
    if mode != Mode::CertifyOver {
        refuse(
            over_r.is_some() || over_c.is_some(),
            "--over-r/--over-c only apply to `rcdelay certify-over`",
        )?;
    }
    if !matches!(mode, Mode::BenchClient | Mode::GenDeck) {
        refuse(
            seed.is_some(),
            "--seed only applies to `rcdelay bench-client` and `rcdelay gen-deck`",
        )?;
    }
    if mode != Mode::Eco {
        refuse(watch, "--watch only applies to `rcdelay eco`")?;
    }
    if !matches!(mode, Mode::Eco | Mode::DeckReport | Mode::Serve) {
        refuse(
            opts.corners.is_some(),
            "--corners only applies to `rcdelay report`, `rcdelay serve` and `rcdelay eco`",
        )?;
    }
    if mode == Mode::CertifyOver {
        refuse(
            over_r.is_none(),
            "certify-over mode requires --over-r <lo..hi> (the certification box)",
        )?;
    }
    if mode != Mode::DeckReport {
        refuse(
            opts.corner.is_some(),
            "--corner only applies to `rcdelay report`",
        )?;
    }

    // The deck-design modes share the eco-mode flag surface.
    let deck_mode_checks = |opts: &Options, what: &str| -> Result<(), CliError> {
        if format_given && opts.format != InputFormat::Spef {
            return Err(CliError::Usage(format!(
                "{what} mode only supports --format spef"
            )));
        }
        if opts.budget.is_none() {
            return Err(CliError::Usage(format!(
                "{what} mode requires --budget (slack needs a required time)"
            )));
        }
        if opts.net.is_some() {
            return Err(CliError::Usage(format!(
                "--net does not apply to {what} mode"
            )));
        }
        if opts.voltage_at.is_some() {
            return Err(CliError::Usage(format!(
                "--voltage-at does not apply to {what} mode"
            )));
        }
        Ok(())
    };

    match mode {
        Mode::Eco => {
            if positionals.len() != 2 {
                return Err(CliError::Usage(
                    "eco mode requires exactly <deck.spef> and <edit-script>".into(),
                ));
            }
            deck_mode_checks(&opts, "eco")?;
            opts.format = InputFormat::Spef;
            let script = positionals.pop().expect("two positionals");
            opts.path = positionals.pop().expect("two positionals");
            opts.command = Command::Eco {
                script,
                driver,
                watch,
            };
        }
        Mode::DeckReport | Mode::Serve => {
            let what = if mode == Mode::Serve {
                "serve"
            } else {
                "report"
            };
            if positionals.is_empty() {
                return Err(CliError::Usage(format!(
                    "{what} mode requires at least one <deck.spef>"
                )));
            }
            deck_mode_checks(&opts, what)?;
            opts.format = InputFormat::Spef;
            opts.path = positionals[0].clone();
            opts.command = if mode == Mode::Serve {
                Command::Serve {
                    decks: positionals,
                    driver,
                    port: port.unwrap_or(0),
                    shards: shards.unwrap_or(1),
                    poll_us,
                    slow_us,
                }
            } else {
                Command::DeckReport {
                    decks: positionals,
                    driver,
                }
            };
        }
        Mode::CertifyOver => {
            if positionals.is_empty() {
                return Err(CliError::Usage(
                    "certify-over mode requires at least one <deck.spef>".into(),
                ));
            }
            deck_mode_checks(&opts, "certify-over")?;
            opts.format = InputFormat::Spef;
            opts.path = positionals[0].clone();
            opts.command = Command::CertifyOver {
                decks: positionals,
                driver,
                over_r: over_r.expect("checked above"),
                over_c: over_c.unwrap_or((1.0, 1.0)),
            };
        }
        Mode::BenchClient => {
            if positionals.len() != 2 {
                return Err(CliError::Usage(
                    "bench-client mode requires <host:port> and <deck.spef>".into(),
                ));
            }
            refuse(
                driver_given,
                "--driver does not apply to `rcdelay bench-client`",
            )?;
            refuse(
                format_given && opts.format != InputFormat::Spef,
                "bench-client mode only supports --format spef",
            )?;
            refuse(
                opts.net.is_some() || opts.voltage_at.is_some(),
                "--net/--voltage-at do not apply to `rcdelay bench-client`",
            )?;
            opts.format = InputFormat::Spef;
            let deck = positionals.pop().expect("two positionals");
            let addr = positionals.pop().expect("two positionals");
            opts.path = deck.clone();
            opts.command = Command::BenchClient {
                addr,
                deck,
                connections: connections.unwrap_or(4),
                requests: requests.unwrap_or(100),
                seed: seed.unwrap_or(1),
                eco_fraction: eco_fraction.unwrap_or(0.0),
                shards: shards.unwrap_or(1),
                out: out.unwrap_or_else(|| "target/BENCH_serve.json".into()),
                shutdown,
            };
        }
        Mode::Profile => {
            if positionals.is_empty() {
                return Err(CliError::Usage(
                    "profile mode requires at least one <deck.spef>".into(),
                ));
            }
            deck_mode_checks(&opts, "profile")?;
            opts.format = InputFormat::Spef;
            opts.path = positionals[0].clone();
            opts.command = Command::Profile {
                decks: positionals,
                driver,
                json,
            };
        }
        Mode::Scrape => {
            if positionals.len() != 1 {
                return Err(CliError::Usage(
                    "scrape mode requires exactly one <host:port>".into(),
                ));
            }
            refuse(
                driver_given || format_given,
                "--driver/--format do not apply to `rcdelay scrape`",
            )?;
            refuse(
                opts.budget.is_some()
                    || opts.jobs.is_some()
                    || opts.net.is_some()
                    || opts.voltage_at.is_some(),
                "scrape mode only accepts --stable, --prev and --out",
            )?;
            let addr = positionals.pop().expect("one positional");
            opts.command = Command::Scrape {
                addr,
                stable,
                out,
                prev,
            };
        }
        Mode::GenDeck => {
            if !positionals.is_empty() {
                return Err(CliError::Usage(
                    "gen-deck takes no positional arguments (the deck prints to stdout)".into(),
                ));
            }
            refuse(
                driver_given || format_given || opts.net.is_some() || opts.voltage_at.is_some(),
                "gen-deck only accepts --nets and --seed",
            )?;
            refuse(
                opts.budget.is_some() || opts.jobs.is_some(),
                "gen-deck only accepts --nets and --seed",
            )?;
            opts.command = Command::GenDeck {
                nets: nets.unwrap_or(64),
                seed: seed.unwrap_or(1),
            };
        }
        Mode::Tree => {
            refuse(driver_given, "--driver only applies to `rcdelay eco`")?;
            if positionals.len() > 1 {
                return Err(CliError::Usage("more than one input file given".into()));
            }
            opts.path = positionals
                .pop()
                .ok_or_else(|| CliError::Usage("missing input netlist file".into()))?;
        }
    }
    if !(opts.threshold > 0.0 && opts.threshold < 1.0) {
        return Err(CliError::Usage(format!(
            "threshold {} must lie strictly between 0 and 1",
            opts.threshold
        )));
    }
    Ok(opts)
}

fn parse_number(text: &str, flag: &str) -> Result<f64, CliError> {
    text.parse::<f64>()
        .map_err(|_| CliError::Usage(format!("{flag}: `{text}` is not a number")))
}

/// Parses the netlist text according to the selected format.
///
/// # Errors
///
/// Returns [`CliError::Netlist`] when the input cannot be parsed or the
/// requested SPEF net does not exist.
pub fn load_tree(text: &str, opts: &Options) -> Result<RcTree, CliError> {
    match opts.format {
        InputFormat::Spice => parse_spice(text).map_err(|e| CliError::Netlist(e.to_string())),
        InputFormat::Spef => {
            // Deck-level parallel ingestion: `*D_NET` sections are parsed
            // across the worker pool, with results in document order.
            let jobs = opts.jobs.unwrap_or_else(rctree_par::default_jobs);
            let nets = parse_spef_deck(text, jobs).map_err(|e| CliError::Netlist(e.to_string()))?;
            let net = match &opts.net {
                Some(name) => nets
                    .into_iter()
                    .find(|n| &n.name == name)
                    .ok_or_else(|| CliError::Netlist(format!("no net named `{name}`")))?,
                None => nets
                    .into_iter()
                    .next()
                    .expect("parse_spef never returns an empty list"),
            };
            Ok(net.tree)
        }
        InputFormat::Expr => {
            let expr = parse_expr(text).map_err(|e| CliError::Netlist(e.to_string()))?;
            expr.to_tree().map_err(|e| CliError::Netlist(e.to_string()))
        }
    }
}

/// Resolves a `--corners` value into a [`CornerSet`]: an **inline** spec
/// when the value contains `=` (corner definitions are `name=r,c[,d]`, so
/// any spec text has one; separate lines with `;`), otherwise the path of
/// a spec file in the same grammar.
///
/// # Errors
///
/// Returns [`CliError::Usage`] when the file cannot be read or the spec
/// fails to parse.
pub fn load_corner_set(value: &str) -> Result<CornerSet, CliError> {
    let spec = if value.contains('=') {
        value.to_string()
    } else {
        std::fs::read_to_string(value)
            .map_err(|e| CliError::Usage(format!("--corners: cannot read `{value}`: {e}")))?
    };
    CornerSet::parse(&spec).map_err(|e| CliError::Usage(format!("--corners: {e}")))
}

/// Resolves a `--corner` selector against the corner names of an
/// analysis: a lane index, a corner name, or `worst` (whose lane the
/// caller computes against the budget).
fn resolve_corner_selector(names: &[String], token: &str, worst: usize) -> Result<usize, CliError> {
    if token == "worst" {
        return Ok(worst);
    }
    if let Ok(k) = token.parse::<usize>() {
        return if k < names.len() {
            Ok(k)
        } else {
            Err(CliError::Usage(format!(
                "--corner: index {k} out of range (deck has {} corner(s))",
                names.len()
            )))
        };
    }
    names
        .iter()
        .position(|n| n == token)
        .ok_or_else(|| CliError::Usage(format!("--corner: unknown corner `{token}`")))
}

/// A rendered report plus the machine-readable verdict that decides the
/// process exit code.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The human-readable report text.
    pub text: String,
    /// The certification verdict when a `--budget` was given
    /// (`None` otherwise).  [`Certification::Fail`] makes `rcdelay` exit
    /// nonzero.
    pub certification: Option<Certification>,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Runs the analysis and renders the human-readable report.
///
/// # Errors
///
/// Returns [`CliError::Analysis`] when the tree cannot be analysed (no
/// outputs, no capacitance, invalid threshold).
pub fn report(tree: &RcTree, opts: &Options) -> Result<Report, CliError> {
    let analysis = TreeAnalysis::of(tree).map_err(|e| CliError::Analysis(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} nodes, {} branches, C_total = {}, {} output(s), threshold {}",
        tree.node_count(),
        tree.branch_count(),
        tree.total_capacitance(),
        analysis.len(),
        opts.threshold
    );
    let _ = writeln!(
        out,
        "{:<16} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "output", "T_P (s)", "T_D (s)", "T_R (s)", "t_min (s)", "t_max (s)"
    );
    for o in analysis.outputs() {
        let b = o
            .times
            .delay_bounds(opts.threshold)
            .map_err(|e| CliError::Analysis(e.to_string()))?;
        let _ = writeln!(
            out,
            "{:<16} {:>14.6e} {:>14.6e} {:>14.6e} {:>14.6e} {:>14.6e}",
            o.name,
            o.times.t_p.value(),
            o.times.t_d.value(),
            o.times.t_r.value(),
            b.lower.value(),
            b.upper.value()
        );
    }

    if let Some(t) = opts.voltage_at {
        let _ = writeln!(out, "\nvoltage bounds at t = {t:.6e} s:");
        for o in analysis.outputs() {
            let vb = o
                .times
                .voltage_bounds(Seconds::new(t))
                .map_err(|e| CliError::Analysis(e.to_string()))?;
            let _ = writeln!(out, "  {:<16} [{:.5}, {:.5}]", o.name, vb.lower, vb.upper);
        }
    }

    let mut certification = None;
    if let Some(budget) = opts.budget {
        let verdict = analysis
            .certify_all(opts.threshold, Seconds::new(budget))
            .map_err(|e| CliError::Analysis(e.to_string()))?;
        let _ = writeln!(
            out,
            "\ncertification against a {budget:.6e} s budget: {verdict}"
        );
        certification = Some(verdict);
    }
    Ok(Report {
        text: out,
        certification,
    })
}

/// Builds the per-net timing design of one or more SPEF decks: every
/// extracted net becomes one driven stage with its leaves as primary
/// outputs, exactly as in eco mode ([`Design::from_extracted`]).  Deck
/// boundaries are invisible to the design — net names must be unique
/// across all decks (duplicates are rejected).
///
/// # Errors
///
/// * [`CliError::Netlist`] if a deck fails to parse;
/// * [`CliError::Analysis`] if the design cannot be built (unknown driver
///   cell, duplicate net names across decks).
pub fn deck_design(deck_texts: &[String], driver: &str, jobs: usize) -> Result<Design, CliError> {
    let mut all: Vec<(String, RcTree)> = Vec::new();
    for text in deck_texts {
        let nets = parse_spef_deck(text, jobs).map_err(|e| CliError::Netlist(e.to_string()))?;
        all.extend(nets.into_iter().map(|n| (n.name, n.tree)));
    }
    Design::from_extracted(CellLibrary::nmos_1981(), driver, all)
        .map_err(|e| CliError::Analysis(e.to_string()))
}

/// Streams one deck input — a file path, or standard input for `-` —
/// through the chunked SPEF reader ([`parse_spef_read`]), so the document
/// text never has to fit in memory.  Results (nets and errors) are
/// byte-identical to reading the whole file and calling
/// [`parse_spef_deck`].
///
/// # Errors
///
/// Returns [`CliError::Netlist`] when the input cannot be opened or
/// parsed.
pub fn read_deck_nets(path: &str, jobs: usize) -> Result<Vec<SpefNet>, CliError> {
    let parsed = if path == "-" {
        parse_spef_read(std::io::stdin().lock(), jobs)
    } else {
        let file = std::fs::File::open(path)
            .map_err(|e| CliError::Netlist(format!("cannot read `{path}`: {e}")))?;
        parse_spef_read(file, jobs)
    };
    parsed.map_err(|e| CliError::Netlist(e.to_string()))
}

/// [`deck_design`] over deck **paths** instead of in-memory texts: each
/// deck streams through [`read_deck_nets`], which is what keeps
/// million-net ingestion within a bounded text footprint.
///
/// # Errors
///
/// As for [`deck_design`], plus open/read failures as
/// [`CliError::Netlist`].
pub fn deck_design_from_paths(
    paths: &[String],
    driver: &str,
    jobs: usize,
) -> Result<Design, CliError> {
    let mut all: Vec<(String, RcTree)> = Vec::new();
    for path in paths {
        let nets = read_deck_nets(path, jobs)?;
        all.extend(nets.into_iter().map(|n| (n.name, n.tree)));
    }
    Design::from_extracted(CellLibrary::nmos_1981(), driver, all)
        .map_err(|e| CliError::Analysis(e.to_string()))
}

/// Runs the deck-level design report (`rcdelay report`): the full
/// arrival-propagated [`rctree_sta::TimingReport`], rendered through its
/// `Display` — **byte-identical** to the payload of the server's `REPORT`
/// verb on the same decks (the server's snapshot path is pinned
/// bit-identical to `analyze`).
///
/// # Errors
///
/// As for [`deck_design`], plus analysis errors.
pub fn deck_report(
    deck_texts: &[String],
    driver: &str,
    threshold: f64,
    budget: f64,
    jobs: usize,
    corners: Option<&CornerSet>,
    corner: Option<&str>,
) -> Result<Report, CliError> {
    render_deck_report(
        deck_design(deck_texts, driver, jobs)?,
        threshold,
        budget,
        jobs,
        corners,
        corner,
    )
}

/// [`deck_report`] over deck **paths**: streams each deck through
/// [`read_deck_nets`] instead of requiring the texts in memory.
///
/// # Errors
///
/// As for [`deck_report`], plus open/read failures as
/// [`CliError::Netlist`].
pub fn deck_report_from_paths(
    paths: &[String],
    driver: &str,
    threshold: f64,
    budget: f64,
    jobs: usize,
    corners: Option<&CornerSet>,
    corner: Option<&str>,
) -> Result<Report, CliError> {
    render_deck_report(
        deck_design_from_paths(paths, driver, jobs)?,
        threshold,
        budget,
        jobs,
        corners,
        corner,
    )
}

/// Runs the continuum certification (`rcdelay certify-over`): the decks
/// stream through [`read_deck_nets`], one symbolic polynomial analysis of
/// the published design snapshot certifies the whole `(r_scale, c_scale)`
/// box, and the exact worst point is reported.  The payload line is
/// rendered by the serve crate's shared formatter
/// ([`rctree_serve::protocol::certify_over_line`]), so it is
/// byte-identical to the server's `CERTIFY --over` response payload on
/// the same decks.  The returned verdict (the certification at the worst
/// point — `Pass` there proves the whole box) drives the exit status
/// exactly like `--budget` elsewhere.
///
/// # Errors
///
/// As for [`deck_design_from_paths`], plus analysis errors.
pub fn certify_over_from_paths(
    paths: &[String],
    driver: &str,
    threshold: f64,
    budget: f64,
    jobs: usize,
    over_r: (f64, f64),
    over_c: (f64, f64),
) -> Result<Report, CliError> {
    let design = deck_design_from_paths(paths, driver, jobs)?;
    let executor = rctree_serve::EcoExecutor::new(design, threshold, Seconds::new(budget), jobs)
        .map_err(|e| CliError::Analysis(e.to_string()))?;
    let snapshot = executor.snapshot();
    let over = rctree_serve::ScaleBox {
        r: over_r,
        c: over_c,
    };
    let text = rctree_serve::protocol::certify_over_line(&snapshot, budget, &over)
        .map_err(CliError::Analysis)?;
    let verdict = snapshot
        .symbolic()
        .map_err(|e| CliError::Analysis(e.to_string()))?
        .certify_over(Seconds::new(budget), over.r, over.c)
        .verdict;
    Ok(Report {
        text: format!("{text}\n"),
        certification: Some(verdict),
    })
}

/// One row of the `rcdelay profile` per-phase breakdown, aggregated from
/// the observability registry's `rctree_phase_duration_us` histogram.
///
/// `p50_us`/`max_us` are bucket upper bounds of the log-linear histogram
/// (≤ ~12.5% relative error by construction), hence the `~` in the table
/// rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseProfile {
    /// Span name of the phase (e.g. `sta.propagate_full`).
    pub phase: String,
    /// Finished spans recorded for the phase.
    pub count: u64,
    /// Summed duration over all spans, microseconds (exact).
    pub total_us: u64,
    /// `total_us / count`.
    pub mean_us: f64,
    /// Median span duration, microseconds (bucket upper bound).
    pub p50_us: u64,
    /// Largest span duration, microseconds (bucket upper bound).
    pub max_us: u64,
}

/// Runs the full deck pipeline — streamed SPEF ingest, design build, one
/// baseline analysis — under a private observability runtime
/// ([`rctree_obs::Obs`]) and returns the per-phase duration breakdown
/// (`rcdelay profile`).  The phases are the pipeline's built-in span
/// sites (`spef.chunk`, `spef.parse_batch`, `sta.net_build`,
/// `sta.propagate_full`, `sta.stage_sweep`, …); rows sort by phase name.
///
/// The certification verdict of the baseline analysis rides along so the
/// exit status behaves exactly like `rcdelay report` on the same decks.
///
/// # Errors
///
/// As for [`deck_design_from_paths`], plus analysis errors.
pub fn profile_from_paths(
    paths: &[String],
    driver: &str,
    threshold: f64,
    budget: f64,
    jobs: usize,
) -> Result<(Vec<PhaseProfile>, Certification), CliError> {
    let obs = rctree_obs::Obs::new(rctree_obs::ObsConfig::default());
    let certification = {
        let _scope = obs.enter();
        let design = deck_design_from_paths(paths, driver, jobs)?;
        let report = design
            .analyze_with_jobs(threshold, Seconds::new(budget), jobs)
            .map_err(|e| CliError::Analysis(e.to_string()))?;
        report.certification()
    };

    let mut rows: Vec<PhaseProfile> = obs
        .registry()
        .histogram_series("rctree_phase_duration_us")
        .into_iter()
        .filter(|(_, snap)| snap.count > 0)
        .map(|(labels, snap)| {
            // Labels render as `{phase="<name>"}` (a single label by
            // construction of the span auto-metrics).
            let phase = labels
                .strip_prefix("{phase=\"")
                .and_then(|rest| rest.strip_suffix("\"}"))
                .unwrap_or(&labels)
                .to_string();
            let mut p50_us = 0;
            let mut max_us = 0;
            let mut seen = 0u64;
            let half = snap.count.div_ceil(2);
            for (idx, &n) in snap.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if seen < half {
                    p50_us = rctree_obs::bucket_upper_bound(idx);
                }
                seen += n;
                max_us = rctree_obs::bucket_upper_bound(idx);
            }
            PhaseProfile {
                phase,
                count: snap.count,
                total_us: snap.sum,
                mean_us: snap.sum as f64 / snap.count as f64,
                p50_us,
                max_us,
            }
        })
        .collect();
    rows.sort_by(|a, b| a.phase.cmp(&b.phase));
    Ok((rows, certification))
}

/// Renders a [`profile_from_paths`] breakdown as the human-readable table
/// (`rcdelay profile`) — fixed columns, rows sorted by phase name.
#[must_use]
pub fn render_profile_table(rows: &[PhaseProfile]) -> String {
    let mut out = String::new();
    let width = rows
        .iter()
        .map(|r| r.phase.len())
        .chain(std::iter::once("phase".len()))
        .max()
        .unwrap_or(5);
    let _ = writeln!(
        out,
        "{:width$}  {:>8}  {:>12}  {:>12}  {:>10}  {:>10}",
        "phase", "count", "total_us", "mean_us", "~p50_us", "~max_us"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:width$}  {:>8}  {:>12}  {:>12.1}  {:>10}  {:>10}",
            r.phase, r.count, r.total_us, r.mean_us, r.p50_us, r.max_us
        );
    }
    out
}

/// Renders a [`profile_from_paths`] breakdown as the machine-readable
/// JSON document (`rcdelay profile --json`).
#[must_use]
pub fn render_profile_json(rows: &[PhaseProfile]) -> String {
    let mut out = String::from("{\n  \"phases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{ \"phase\": \"{}\", \"count\": {}, \"total_us\": {}, \"mean_us\": {:.1}, \"p50_us\": {}, \"max_us\": {} }}{comma}",
            r.phase, r.count, r.total_us, r.mean_us, r.p50_us, r.max_us
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn render_deck_report(
    mut design: Design,
    threshold: f64,
    budget: f64,
    jobs: usize,
    corners: Option<&CornerSet>,
    corner: Option<&str>,
) -> Result<Report, CliError> {
    if corners.is_none() && corner.is_none() {
        // The single-corner path: exactly the pre-corner float sequence
        // (which `analyze_corners` lane 0 is pinned bit-identical to).
        let report = design
            .analyze_with_jobs(threshold, Seconds::new(budget), jobs)
            .map_err(|e| CliError::Analysis(e.to_string()))?;
        return Ok(Report {
            text: report.to_string(),
            certification: Some(report.certification()),
        });
    }
    if let Some(set) = corners {
        design.set_corners(set.clone());
    }
    let required = Seconds::new(budget);
    let analysis = design
        .analyze_corners(threshold, required, jobs)
        .map_err(|e| CliError::Analysis(e.to_string()))?;
    let k = match corner {
        None => 0,
        Some(token) => {
            resolve_corner_selector(analysis.names(), token, analysis.worst_against(required))?
        }
    };
    let report = analysis
        .report(k)
        .expect("resolved corner index is in range");
    Ok(Report {
        text: report.to_string(),
        certification: Some(report.certification()),
    })
}

/// Parses one script line (1-based `line` number for error reporting).
/// Several directives may share a line, separated by `;`.
///
/// The grammar lives in [`rctree_sta::script`] (shared with the
/// `rctree-serve` wire protocol); this wrapper maps its errors into
/// [`CliError::Script`].
///
/// # Errors
///
/// Returns [`CliError::Script`] with the location (line, and 1-based edit
/// index within multi-edit lines) and the offending token for unknown
/// directives, missing fields and malformed numbers.
pub fn parse_eco_script_line(line: usize, raw: &str) -> Result<ScriptLine, CliError> {
    rctree_sta::script::parse_eco_script_line(line, raw)
        .map_err(|e| CliError::Script(e.message().to_string()))
}

/// Parses a whole ECO edit script (see [`USAGE`] for the grammar).  A
/// `quit` directive ends the script early.
///
/// # Errors
///
/// As for [`parse_eco_script_line`].
pub fn parse_eco_script(text: &str) -> Result<Vec<ScriptEdit>, CliError> {
    rctree_sta::script::parse_eco_script(text)
        .map_err(|e| CliError::Script(e.message().to_string()))
}

/// The result of an ECO session: the rendered per-edit log and the final
/// verdict (which decides the exit code).
#[derive(Debug, Clone, PartialEq)]
pub struct EcoOutcome {
    /// Human-readable per-edit slack log.
    pub text: String,
    /// Certification of the design after the last edit.
    pub certification: Certification,
}

/// A live ECO session over a parsed deck: the incremental design plus the
/// rolling slack/certification state.  Both the batch [`run_eco`] and the
/// `--watch` streaming loop in `main` drive one of these, so the per-edit
/// output is identical whether the script arrives up front or line by
/// line.
#[derive(Debug)]
pub struct EcoSession {
    design: Design,
    threshold: f64,
    required: Seconds,
    jobs: usize,
    slack: Seconds,
    certification: Certification,
    edits_applied: usize,
}

impl EcoSession {
    /// Parses the deck, builds the per-net design, runs the cache-warming
    /// baseline analysis, and returns the session plus its header text
    /// (the `eco session:` / `baseline:` lines).
    ///
    /// `script_edits` is the edit count shown in the header; streaming
    /// callers that cannot know it pass `None`.
    ///
    /// # Errors
    ///
    /// * [`CliError::Usage`] outside eco mode or without a budget;
    /// * [`CliError::Netlist`] if the deck fails to parse;
    /// * [`CliError::Analysis`] if the design cannot be built or analysed.
    pub fn new(
        deck: &str,
        opts: &Options,
        script_edits: Option<usize>,
    ) -> Result<(EcoSession, String), CliError> {
        let jobs = opts.jobs.unwrap_or_else(rctree_par::default_jobs);
        let nets = parse_spef_deck(deck, jobs).map_err(|e| CliError::Netlist(e.to_string()))?;
        Self::from_nets(nets, opts, script_edits)
    }

    /// [`EcoSession::new`] over a deck **path** (or `-` for standard
    /// input): the deck streams through [`read_deck_nets`] instead of
    /// being read into one string first.
    ///
    /// # Errors
    ///
    /// As for [`EcoSession::new`], plus open/read failures as
    /// [`CliError::Netlist`].
    pub fn open(
        path: &str,
        opts: &Options,
        script_edits: Option<usize>,
    ) -> Result<(EcoSession, String), CliError> {
        let jobs = opts.jobs.unwrap_or_else(rctree_par::default_jobs);
        let nets = read_deck_nets(path, jobs)?;
        Self::from_nets(nets, opts, script_edits)
    }

    fn from_nets(
        nets: Vec<SpefNet>,
        opts: &Options,
        script_edits: Option<usize>,
    ) -> Result<(EcoSession, String), CliError> {
        let Command::Eco { driver, .. } = &opts.command else {
            return Err(CliError::Usage("run_eco requires eco mode".into()));
        };
        let budget = opts
            .budget
            .ok_or_else(|| CliError::Usage("eco mode requires --budget".into()))?;
        let jobs = opts.jobs.unwrap_or_else(rctree_par::default_jobs);
        let net_count = nets.len();
        let mut design = Design::from_extracted(
            CellLibrary::nmos_1981(),
            driver,
            nets.into_iter().map(|n| (n.name, n.tree)),
        )
        .map_err(|e| CliError::Analysis(e.to_string()))?;
        let corner_names = match &opts.corners {
            Some(value) => {
                let set = load_corner_set(value)?;
                let names = (!set.is_nominal_only()).then(|| set.names_csv());
                design.set_corners(set);
                names
            }
            None => None,
        };

        let required = Seconds::new(budget);
        let baseline = design
            .apply_eco_with_jobs(&[], opts.threshold, required, jobs)
            .map_err(|e| CliError::Analysis(e.to_string()))?;

        let mut out = String::new();
        let edits_text = match script_edits {
            Some(n) => format!("{n} edits, "),
            None => "streaming edits, ".to_string(),
        };
        let _ = writeln!(
            out,
            "eco session: {net_count} nets, {edits_text}threshold {}, budget {budget:.6e} s, driver {driver}",
            opts.threshold
        );
        if let Some(names) = corner_names {
            let _ = writeln!(out, "corners: {names} (every lane re-timed per edit)");
        }
        let slack = baseline.worst_slack();
        let certification = baseline.certification();
        let _ = writeln!(
            out,
            "baseline: worst slack {:+.6e} s, certification {certification}",
            slack.value()
        );
        Ok((
            EcoSession {
                design,
                threshold: opts.threshold,
                required,
                jobs,
                slack,
                certification,
                edits_applied: 0,
            },
            out,
        ))
    }

    /// Certification of the design after the last applied edit.
    pub fn certification(&self) -> Certification {
        self.certification
    }

    /// Applies one script edit through the incremental engine and returns
    /// its log line.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Script`] carrying the edit's location (line,
    /// and 1-based edit index within multi-edit lines) when the edit
    /// references an unknown net/node or fails validation; the design is
    /// left exactly as it was (the engine is transactional), so a
    /// streaming caller may keep the session running.
    pub fn apply(&mut self, se: &ScriptEdit) -> Result<String, CliError> {
        let report = self
            .design
            .apply_eco_with_jobs(
                std::slice::from_ref(&se.edit),
                self.threshold,
                self.required,
                self.jobs,
            )
            .map_err(|e| CliError::Script(format!("{}: {e}", se.location())))?;
        let new_slack = report.worst_slack();
        self.certification = report.certification();
        self.edits_applied += 1;
        let line = format!(
            "edit {:>4} (line {:>3}) {:<44} slack {:+.6e} s (delta {:+.3e} s) {}",
            self.edits_applied,
            se.line,
            se.summary,
            new_slack.value(),
            (new_slack - self.slack).value(),
            self.certification
        );
        self.slack = new_slack;
        Ok(line)
    }

    /// The closing `final certification:` line.
    pub fn footer(&self) -> String {
        format!("final certification: {}", self.certification)
    }
}

/// Runs a full ECO session: parse the deck, build the per-net design,
/// apply the script one edit at a time, and log the slack delta after
/// each.
///
/// # Errors
///
/// * [`CliError::Netlist`] if the deck fails to parse;
/// * [`CliError::Script`] if the script fails to parse, or an edit
///   references an unknown net/node (reported with its script location and
///   the offending token) or fails validation;
/// * [`CliError::Analysis`] if the design cannot be built or analysed.
pub fn run_eco(deck: &str, script: &str, opts: &Options) -> Result<EcoOutcome, CliError> {
    let edits = parse_eco_script(script)?;
    let session = EcoSession::new(deck, opts, Some(edits.len()))?;
    drive_eco(session, &edits)
}

/// [`run_eco`] over a deck **path** (or `-` for standard input): the deck
/// streams through [`read_deck_nets`].
///
/// # Errors
///
/// As for [`run_eco`], plus open/read failures as [`CliError::Netlist`].
pub fn run_eco_path(path: &str, script: &str, opts: &Options) -> Result<EcoOutcome, CliError> {
    let edits = parse_eco_script(script)?;
    let session = EcoSession::open(path, opts, Some(edits.len()))?;
    drive_eco(session, &edits)
}

fn drive_eco(
    (mut session, mut out): (EcoSession, String),
    edits: &[ScriptEdit],
) -> Result<EcoOutcome, CliError> {
    for se in edits {
        let line = session.apply(se)?;
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(out, "{}", session.footer());
    Ok(EcoOutcome {
        text: out,
        certification: session.certification(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rctree_sta::EcoEditKind;

    const FIG7_DECK: &str = "\
R1 in n1 15\nC1 n1 0 2\nRB n1 ns 8\nCB ns 0 7\nU1 n1 n2 3 4\nC2 n2 0 9\n.output n2\n";

    #[test]
    fn parses_full_argument_set() {
        let opts = parse_args([
            "--format",
            "spef",
            "--net",
            "clk",
            "--threshold",
            "0.9",
            "--budget",
            "1e-9",
            "--voltage-at",
            "5e-10",
            "--jobs",
            "3",
            "deck.spef",
        ])
        .unwrap();
        assert_eq!(opts.format, InputFormat::Spef);
        assert_eq!(opts.net.as_deref(), Some("clk"));
        assert_eq!(opts.threshold, 0.9);
        assert_eq!(opts.budget, Some(1e-9));
        assert_eq!(opts.voltage_at, Some(5e-10));
        assert_eq!(opts.jobs, Some(3));
        assert_eq!(opts.path, "deck.spef");
    }

    #[test]
    fn defaults_are_sensible() {
        let opts = parse_args(["file.sp"]).unwrap();
        assert_eq!(opts.format, InputFormat::Spice);
        assert_eq!(opts.threshold, 0.5);
        assert!(opts.budget.is_none());
        assert!(opts.jobs.is_none());
    }

    #[test]
    fn usage_errors_are_reported() {
        assert!(matches!(parse_args::<_, &str>([]), Err(CliError::Usage(_))));
        assert!(matches!(parse_args(["--help"]), Err(CliError::Usage(_))));
        assert!(matches!(
            parse_args(["--format", "verilog", "x"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--threshold", "1.5", "x"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--threshold", "abc", "x"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(parse_args(["--budget"]), Err(CliError::Usage(_))));
        assert!(matches!(
            parse_args(["--jobs", "0", "x"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--jobs", "two", "x"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["a.sp", "b.sp"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--bogus", "x"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn spice_report_contains_figure10_numbers() {
        let opts = Options {
            path: "-".into(),
            threshold: 0.9,
            budget: Some(1000.0),
            voltage_at: Some(100.0),
            ..Options::default()
        };
        let tree = load_tree(FIG7_DECK, &opts).unwrap();
        let report = report(&tree, &opts).unwrap();
        let text = &report.text;
        assert!(text.contains("n2"));
        assert!(text.contains("7.23664"), "{text}");
        assert!(text.contains("pass"));
        assert!(text.contains("[0.16644, 0.35714]"));
        assert_eq!(report.certification, Some(Certification::Pass));
    }

    #[test]
    fn expr_format_loads_the_paper_notation() {
        let opts = Options {
            path: "-".into(),
            format: InputFormat::Expr,
            ..Options::default()
        };
        let tree = load_tree(
            "(URC 15 0) WC (URC 0 2) WC (WB ((URC 8 0) WC (URC 0 7))) WC (URC 3 4) WC (URC 0 9)",
            &opts,
        )
        .unwrap();
        assert_eq!(tree.outputs().count(), 1);
        let report = report(&tree, &opts).unwrap();
        assert!(report.text.contains("threshold 0.5"));
        // No budget given: no verdict, so the exit code cannot be failure.
        assert_eq!(report.certification, None);
    }

    #[test]
    fn spef_format_selects_nets() {
        let spef = "\
*D_NET a 1\n*CONN\n*I drv I\n*P x O\n*CAP\n1 x 1\n*RES\n1 drv x 5\n*END\n\
*D_NET b 1\n*CONN\n*I drv I\n*P y O\n*CAP\n1 y 2\n*RES\n1 drv y 7\n*END\n";
        let mut opts = Options {
            path: "-".into(),
            format: InputFormat::Spef,
            ..Options::default()
        };
        let first = load_tree(spef, &opts).unwrap();
        assert!(first.node_by_name("x").is_ok());
        opts.net = Some("b".into());
        let second = load_tree(spef, &opts).unwrap();
        assert!(second.node_by_name("y").is_ok());
        opts.net = Some("zzz".into());
        assert!(matches!(load_tree(spef, &opts), Err(CliError::Netlist(_))));
    }

    #[test]
    fn bad_netlists_are_reported() {
        let opts = Options {
            path: "-".into(),
            ..Options::default()
        };
        assert!(matches!(
            load_tree("garbage line\n", &opts),
            Err(CliError::Netlist(_))
        ));
        // A tree with no outputs fails at analysis time.
        let tree = load_tree("R1 in a 5\nC1 a 0 1\n.output a\n", &opts).unwrap();
        assert!(report(&tree, &opts).is_ok());
    }

    #[test]
    fn error_display_is_prefixed() {
        assert!(CliError::Usage("x".into()).to_string().contains("usage"));
        assert!(CliError::Netlist("x".into())
            .to_string()
            .contains("netlist"));
        assert!(CliError::Analysis("x".into())
            .to_string()
            .contains("analysis"));
        assert!(CliError::Script("x".into())
            .to_string()
            .contains("edit script"));
    }

    /// A two-net SPEF deck for the eco tests: one fast wire, one slow.
    const ECO_DECK: &str = "\
*D_NET fast 0.001
*CONN
*I drv I
*P x O
*CAP
1 x 0.001
*RES
1 drv x 5
*END
\
*D_NET slow 0.3
*CONN
*I drv I
*P y O
*CAP
1 y 0.3
*RES
1 drv y 800
*END
";

    fn eco_opts(budget: f64) -> Options {
        Options {
            command: Command::Eco {
                script: "edits.eco".into(),
                driver: "inv_4x".into(),
                watch: false,
            },
            path: "deck.spef".into(),
            format: InputFormat::Spef,
            budget: Some(budget),
            ..Options::default()
        }
    }

    #[test]
    fn eco_arguments_parse_and_validate() {
        let opts = parse_args([
            "eco",
            "--budget",
            "5e-9",
            "--driver",
            "buf_8x",
            "--jobs",
            "2",
            "deck.spef",
            "edits.eco",
        ])
        .unwrap();
        assert_eq!(opts.path, "deck.spef");
        assert_eq!(opts.format, InputFormat::Spef);
        assert_eq!(
            opts.command,
            Command::Eco {
                script: "edits.eco".into(),
                driver: "buf_8x".into(),
                watch: false,
            }
        );
        // `--watch` rides along in eco mode and is refused elsewhere.
        let watch = parse_args(["eco", "--watch", "--budget", "1e-9", "deck.spef", "-"]).unwrap();
        assert!(matches!(watch.command, Command::Eco { watch: true, .. }));
        assert!(matches!(
            parse_args(["--watch", "deck.sp"]),
            Err(CliError::Usage(_))
        ));

        // Missing budget, missing script, or a non-SPEF format are refused.
        assert!(matches!(
            parse_args(["eco", "deck.spef", "edits.eco"]),
            Err(CliError::Usage(_))
        ));
        // Mode-mismatched flags are refused rather than silently ignored.
        assert!(matches!(
            parse_args(["--driver", "buf_8x", "deck.sp"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args([
                "eco",
                "--budget",
                "1e-9",
                "--net",
                "n1",
                "deck.spef",
                "edits.eco"
            ]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args([
                "eco",
                "--budget",
                "1e-9",
                "--voltage-at",
                "1e-9",
                "deck.spef",
                "edits.eco"
            ]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["eco", "--budget", "1e-9", "deck.spef"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args([
                "eco",
                "--budget",
                "1e-9",
                "--format",
                "spice",
                "deck.spef",
                "edits.eco"
            ]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn serve_and_report_arguments_parse_and_validate() {
        let opts = parse_args([
            "serve", "--budget", "1e-7", "--port", "7411", "--driver", "buf_8x", "a.spef", "b.spef",
        ])
        .unwrap();
        assert_eq!(
            opts.command,
            Command::Serve {
                decks: vec!["a.spef".into(), "b.spef".into()],
                driver: "buf_8x".into(),
                port: 7411,
                shards: 1,
                poll_us: None,
                slow_us: None,
            }
        );
        assert_eq!(opts.format, InputFormat::Spef);

        let opts = parse_args([
            "serve",
            "--budget",
            "1e-7",
            "--shards",
            "4",
            "--poll-us",
            "250",
            "--slow-us",
            "5000",
            "a.spef",
        ])
        .unwrap();
        assert_eq!(
            opts.command,
            Command::Serve {
                decks: vec!["a.spef".into()],
                driver: "inv_4x".into(),
                port: 0,
                shards: 4,
                poll_us: Some(250),
                slow_us: Some(5000),
            }
        );

        let opts = parse_args(["report", "--budget", "1e-7", "deck.spef"]).unwrap();
        assert_eq!(
            opts.command,
            Command::DeckReport {
                decks: vec!["deck.spef".into()],
                driver: "inv_4x".into(),
            }
        );

        // Budget is mandatory, decks are mandatory, port is serve-only.
        assert!(matches!(
            parse_args(["serve", "deck.spef"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["report", "--budget", "1e-7"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["report", "--budget", "1e-7", "--port", "7411", "d.spef"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["serve", "--budget", "1e-7", "--port", "worst", "d.spef"]),
            Err(CliError::Usage(_))
        ));

        // --shards is serve/bench-client-only and must be positive;
        // --poll-us is serve-only.
        assert!(matches!(
            parse_args(["report", "--budget", "1e-7", "--shards", "4", "d.spef"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["serve", "--budget", "1e-7", "--shards", "0", "d.spef"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["report", "--budget", "1e-7", "--poll-us", "500", "d.spef"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["serve", "--budget", "1e-7", "--poll-us", "0", "d.spef"]),
            Err(CliError::Usage(_))
        ));

        // --slow-us is serve-only and must be positive.
        assert!(matches!(
            parse_args(["report", "--budget", "1e-7", "--slow-us", "500", "d.spef"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["serve", "--budget", "1e-7", "--slow-us", "0", "d.spef"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn profile_and_scrape_arguments_parse_and_validate() {
        let opts =
            parse_args(["profile", "--budget", "1e-7", "--json", "a.spef", "b.spef"]).unwrap();
        assert_eq!(
            opts.command,
            Command::Profile {
                decks: vec!["a.spef".into(), "b.spef".into()],
                driver: "inv_4x".into(),
                json: true,
            }
        );
        assert_eq!(opts.format, InputFormat::Spef);

        let opts = parse_args([
            "scrape",
            "--stable",
            "--prev",
            "prev.prom",
            "--out",
            "cur.prom",
            "127.0.0.1:7411",
        ])
        .unwrap();
        assert_eq!(
            opts.command,
            Command::Scrape {
                addr: "127.0.0.1:7411".into(),
                stable: true,
                out: Some("cur.prom".into()),
                prev: Some("prev.prom".into()),
            }
        );

        // Profile shares the deck-mode surface: budget mandatory, decks
        // mandatory, --json profile-only.
        assert!(matches!(
            parse_args(["profile", "a.spef"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["profile", "--budget", "1e-7"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["report", "--budget", "1e-7", "--json", "d.spef"]),
            Err(CliError::Usage(_))
        ));

        // Scrape takes exactly one address and only its own flags;
        // --stable/--prev are scrape-only.
        assert!(matches!(parse_args(["scrape"]), Err(CliError::Usage(_))));
        assert!(matches!(
            parse_args(["scrape", "127.0.0.1:1", "127.0.0.1:2"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["scrape", "--budget", "1e-7", "127.0.0.1:1"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["report", "--budget", "1e-7", "--stable", "d.spef"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["report", "--budget", "1e-7", "--prev", "p", "d.spef"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn corner_flags_parse_and_validate() {
        let opts = parse_args([
            "report",
            "--budget",
            "1e-7",
            "--corners",
            "fast=0.8,0.85,0.9",
            "--corner",
            "fast",
            "d.spef",
        ])
        .unwrap();
        assert_eq!(opts.corners.as_deref(), Some("fast=0.8,0.85,0.9"));
        assert_eq!(opts.corner.as_deref(), Some("fast"));

        // serve and eco accept --corners; --corner is report-only; the
        // single-tree mode refuses both.
        assert!(parse_args(["serve", "--budget", "1e-7", "--corners", "c.spec", "d.spef"]).is_ok());
        assert!(parse_args([
            "eco",
            "--budget",
            "1e-7",
            "--corners",
            "c.spec",
            "d.spef",
            "e.eco"
        ])
        .is_ok());
        assert!(matches!(
            parse_args(["--corners", "c.spec", "tree.sp"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["serve", "--budget", "1e-7", "--corner", "1", "d.spef"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["gen-deck", "--corners", "x=1,1"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn certify_over_arguments_parse_and_validate() {
        let opts = parse_args([
            "certify-over",
            "--budget",
            "1.2e-7",
            "--over-r",
            "0.8..1.4",
            "--over-c",
            "0.9..1.2",
            "a.spef",
            "b.spef",
        ])
        .unwrap();
        assert_eq!(
            opts.command,
            Command::CertifyOver {
                decks: vec!["a.spef".into(), "b.spef".into()],
                driver: "inv_4x".into(),
                over_r: (0.8, 1.4),
                over_c: (0.9, 1.2),
            }
        );

        // `--over-c` defaults to the degenerate nominal interval.
        let opts = parse_args([
            "certify-over",
            "--budget",
            "1.2e-7",
            "--over-r",
            "0.8..1.4",
            "deck.spef",
        ])
        .unwrap();
        assert!(matches!(
            opts.command,
            Command::CertifyOver {
                over_c: (c0, c1),
                ..
            } if c0 == 1.0 && c1 == 1.0
        ));

        // The box is mandatory in certify-over mode and refused elsewhere;
        // ranges must be finite, positive, and ordered; budget is mandatory.
        assert!(matches!(
            parse_args(["certify-over", "--budget", "1e-7", "d.spef"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["report", "--budget", "1e-7", "--over-r", "0.8..1.4", "d.spef"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args([
                "certify-over",
                "--budget",
                "1e-7",
                "--over-r",
                "1.4..0.8",
                "d.spef"
            ]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args([
                "certify-over",
                "--budget",
                "1e-7",
                "--over-r",
                "nope",
                "d.spef"
            ]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["certify-over", "--over-r", "0.8..1.4", "d.spef"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn corner_reports_select_lanes_and_keep_nominal_bytes() {
        let set = load_corner_set("fast=0.8,0.85,0.9;slow=1.3,1.2").unwrap();
        assert_eq!(set.len(), 3);
        assert!(matches!(
            load_corner_set("fast=0,1"),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            load_corner_set("/no/such/spec.corners"),
            Err(CliError::Usage(_))
        ));

        let texts = vec![ECO_DECK.to_string()];
        let nominal = deck_report(&texts, "inv_4x", 0.5, 60e-9, 1, None, None).unwrap();
        // Installing corners leaves the default (lane-0) report
        // byte-identical to the single-corner rendering.
        let with = deck_report(&texts, "inv_4x", 0.5, 60e-9, 1, Some(&set), None).unwrap();
        assert_eq!(nominal.text, with.text);
        let slow = deck_report(&texts, "inv_4x", 0.5, 60e-9, 1, Some(&set), Some("slow")).unwrap();
        assert_ne!(slow.text, nominal.text);
        let by_index = deck_report(&texts, "inv_4x", 0.5, 60e-9, 1, Some(&set), Some("2")).unwrap();
        assert_eq!(by_index.text, slow.text);
        // Every scale of `slow` exceeds 1, so it is the worst corner.
        let worst =
            deck_report(&texts, "inv_4x", 0.5, 60e-9, 1, Some(&set), Some("worst")).unwrap();
        assert_eq!(worst.text, slow.text);
        assert!(matches!(
            deck_report(&texts, "inv_4x", 0.5, 60e-9, 1, Some(&set), Some("bogus")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            deck_report(&texts, "inv_4x", 0.5, 60e-9, 1, Some(&set), Some("9")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn eco_sessions_install_corners_and_keep_applying_edits() {
        let mut opts = eco_opts(60e-9);
        opts.corners = Some("fast=0.8,0.85,0.9;slow=1.3,1.2,1.1".into());
        let (mut session, header) = EcoSession::new(ECO_DECK, &opts, None).unwrap();
        assert!(header.contains("corners: nominal,fast,slow"), "{header}");
        let ScriptLine::Edits(edits) = parse_eco_script_line(1, "setcap slow y 1.2e-12").unwrap()
        else {
            panic!("expected edits");
        };
        assert!(session.apply(&edits[0]).unwrap().contains("edit    1"));
        assert!(session.footer().contains("final certification"));
    }

    #[test]
    fn bench_client_and_gen_deck_arguments_parse_and_validate() {
        let opts = parse_args([
            "bench-client",
            "--connections",
            "8",
            "--requests",
            "250",
            "--seed",
            "42",
            "--eco-fraction",
            "0.25",
            "--shards",
            "4",
            "--out",
            "/tmp/bench.json",
            "--shutdown",
            "127.0.0.1:7411",
            "deck.spef",
        ])
        .unwrap();
        assert_eq!(
            opts.command,
            Command::BenchClient {
                addr: "127.0.0.1:7411".into(),
                deck: "deck.spef".into(),
                connections: 8,
                requests: 250,
                seed: 42,
                eco_fraction: 0.25,
                shards: 4,
                out: "/tmp/bench.json".into(),
                shutdown: true,
            }
        );

        // Defaults.
        let opts = parse_args(["bench-client", "127.0.0.1:7411", "deck.spef"]).unwrap();
        assert_eq!(
            opts.command,
            Command::BenchClient {
                addr: "127.0.0.1:7411".into(),
                deck: "deck.spef".into(),
                connections: 4,
                requests: 100,
                seed: 1,
                eco_fraction: 0.0,
                shards: 1,
                out: "target/BENCH_serve.json".into(),
                shutdown: false,
            }
        );

        let opts = parse_args(["gen-deck", "--nets", "9", "--seed", "3"]).unwrap();
        assert_eq!(opts.command, Command::GenDeck { nets: 9, seed: 3 });
        assert_eq!(
            parse_args(["gen-deck"]).unwrap().command,
            Command::GenDeck { nets: 64, seed: 1 }
        );

        // Mode-mismatched flags are refused rather than ignored.
        assert!(matches!(
            parse_args(["bench-client", "127.0.0.1:1", "d.spef", "--nets", "4"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["gen-deck", "--connections", "4"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["bench-client", "--eco-fraction", "1.5", "a", "b"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--seed", "3", "tree.sp"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["bench-client", "only-addr"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn deck_report_renders_the_design_report() {
        let texts = vec![ECO_DECK.to_string()];
        let report = deck_report(&texts, "inv_4x", 0.5, 60e-9, 1, None, None).unwrap();
        assert_eq!(report.certification, Some(Certification::Pass));
        assert!(report.text.contains("timing report"), "{}", report.text);
        assert!(report.text.contains("worst slack"), "{}", report.text);
        // Both deck nets produced endpoints.
        assert!(report.text.contains("fast/x") && report.text.contains("slow/y"));

        // Duplicate net names across decks are rejected (the nets collide).
        let err = deck_report(
            &[ECO_DECK.to_string(), ECO_DECK.to_string()],
            "inv_4x",
            0.5,
            60e-9,
            1,
            None,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Analysis(_)), "{err:?}");

        // A bad driver cell is an analysis error.
        let err = deck_report(&texts, "nand_999x", 0.5, 60e-9, 1, None, None).unwrap_err();
        assert!(matches!(err, CliError::Analysis(_)), "{err:?}");
    }

    #[test]
    fn eco_script_parses_every_directive_and_flags_bad_tokens() {
        let script = "\
# a comment line
setcap fast x 2e-15
setres fast x 120 # trailing comment
setline slow y 90 3e-14
graft slow y tap1 50 1e-14
prune slow tap1
";
        let edits = parse_eco_script(script).unwrap();
        assert_eq!(edits.len(), 5);
        assert_eq!(edits[0].line, 2);
        assert_eq!(edits[0].edit.net, "fast");
        assert!(matches!(edits[4].edit.kind, EcoEditKind::Prune { .. }));

        for (bad, needle) in [
            (
                "resize fast x 1
",
                "`resize`",
            ),
            (
                "setcap fast x nope
",
                "`nope`",
            ),
            (
                "setcap fast x
",
                "takes 3 fields",
            ),
            (
                "graft slow y tap 50
",
                "takes 5 fields",
            ),
        ] {
            let err = parse_eco_script(bad).unwrap_err();
            let CliError::Script(message) = &err else {
                panic!("expected script error, got {err:?}");
            };
            assert!(
                message.contains("line 1") && message.contains(needle),
                "{message}"
            );
        }
    }

    #[test]
    fn multi_edit_lines_split_on_semicolons_and_number_their_edits() {
        let script = "setcap fast x 2e-15; setres fast x 120; setcap slow y 1e-13\nprune slow y\n";
        let edits = parse_eco_script(script).unwrap();
        assert_eq!(edits.len(), 4);
        assert_eq!(
            edits
                .iter()
                .map(|e| (e.line, e.index, e.count))
                .collect::<Vec<_>>(),
            vec![(1, 1, 3), (1, 2, 3), (1, 3, 3), (2, 1, 1)]
        );
        assert_eq!(edits[1].location(), "line 1, edit 2");
        assert_eq!(edits[3].location(), "line 2");

        // Parse errors inside a multi-edit line carry the edit index.
        let err = parse_eco_script("setcap fast x 1e-15; resize fast x 2\n").unwrap_err();
        let CliError::Script(message) = &err else {
            panic!("expected script error, got {err:?}");
        };
        assert!(
            message.contains("line 1, edit 2") && message.contains("`resize`"),
            "{message}"
        );
        // Trailing/doubled separators are harmless.
        assert_eq!(
            parse_eco_script("setcap fast x 1e-15;;\n").unwrap().len(),
            1
        );
    }

    #[test]
    fn quit_directive_ends_the_script() {
        let edits = parse_eco_script("setcap fast x 1e-15\nquit\nsetcap fast x 2e-15\n").unwrap();
        assert_eq!(edits.len(), 1);
        assert!(matches!(
            parse_eco_script_line(3, "  quit  # done"),
            Ok(ScriptLine::Quit)
        ));
        assert!(matches!(
            parse_eco_script_line(1, "# note"),
            Ok(ScriptLine::Empty)
        ));
        // `quit` may not share a line with edits, and stray tokens are
        // rejected.
        assert!(parse_eco_script("setcap fast x 1e-15; quit\n").is_err());
        assert!(parse_eco_script("quit now\n").is_err());
    }

    #[test]
    fn session_applies_multi_edit_lines_atomically_per_edit() {
        // The failing middle edit of a multi-edit line is reported with
        // its index while the edits around it land (the engine is
        // transactional per apply).
        let opts = eco_opts(60e-9);
        let (mut session, header) = EcoSession::new(ECO_DECK, &opts, None).unwrap();
        assert!(header.contains("streaming edits"), "{header}");
        let ScriptLine::Edits(edits) = parse_eco_script_line(
            7,
            "setcap slow y 1.2e-12; setcap slow ghost 1e-15; setcap fast x 2e-15",
        )
        .unwrap() else {
            panic!("expected edits");
        };
        assert!(session.apply(&edits[0]).unwrap().contains("edit    1"));
        let err = session.apply(&edits[1]).unwrap_err();
        let CliError::Script(message) = &err else {
            panic!("expected script error, got {err:?}");
        };
        assert!(
            message.contains("line 7, edit 2") && message.contains("`ghost`"),
            "{message}"
        );
        // The session keeps serving after the failure.
        assert!(session.apply(&edits[2]).unwrap().contains("edit    2"));
        assert!(session.footer().contains("final certification"));
    }

    #[test]
    fn eco_session_reports_slack_deltas_and_verdicts() {
        let opts = eco_opts(60e-9);
        let script = "setcap slow y 1.2e-12\nsetcap slow y 0.3e-12\n";
        let outcome = run_eco(ECO_DECK, script, &opts).unwrap();
        assert_eq!(outcome.certification, Certification::Pass);
        assert!(outcome.text.contains("baseline"), "{}", outcome.text);
        assert!(outcome.text.contains("edit    1"), "{}", outcome.text);
        assert!(outcome.text.contains("delta"), "{}", outcome.text);
        assert!(outcome.text.contains("final certification: pass"));

        // An impossible budget fails certification.
        let fail = run_eco(ECO_DECK, script, &eco_opts(1e-12)).unwrap();
        assert_eq!(fail.certification, Certification::Fail);
    }

    #[test]
    fn eco_unknown_references_carry_line_and_token() {
        let opts = eco_opts(60e-9);
        let err = run_eco(
            ECO_DECK,
            "setcap ghost x 1e-15
",
            &opts,
        )
        .unwrap_err();
        let CliError::Script(message) = &err else {
            panic!("expected script error, got {err:?}");
        };
        assert!(
            message.contains("line 1") && message.contains("`ghost`"),
            "{message}"
        );

        let err = run_eco(
            ECO_DECK,
            "setcap fast x 1e-15
prune fast nope
",
            &opts,
        )
        .unwrap_err();
        let CliError::Script(message) = &err else {
            panic!("expected script error, got {err:?}");
        };
        assert!(
            message.contains("line 2") && message.contains("`nope`"),
            "{message}"
        );
    }
}
