//! # rctree-cli
//!
//! The `rcdelay` command-line tool: Penfield–Rubinstein delay-bound analysis
//! for RC-tree netlists from the shell.
//!
//! ```text
//! rcdelay [OPTIONS] <netlist-file>
//! rcdelay eco [OPTIONS] --budget <seconds> <deck.spef> <edit-script>
//!
//!   --format <spice|spef|expr>   input format          (default: spice; eco: spef)
//!   --net <name>                 SPEF net to analyse   (default: first net)
//!   --threshold <v>              switching threshold   (default: 0.5)
//!   --budget <seconds>           certify against a delay budget
//!   --voltage-at <seconds>       also report voltage bounds at this time
//!   --jobs <n>                   worker threads        (default: available parallelism)
//!   --driver <cell>              eco mode driver cell  (default: inv_4x)
//!   --help                       print usage
//! ```
//!
//! `rcdelay eco` turns the deck into a per-net timing design, applies an
//! edit script one line at a time through the incremental ECO engine, and
//! prints the slack delta after every edit.  The process exits nonzero
//! when the final certification fails or when the script references an
//! unknown net or node (reported with the offending token and line).
//!
//! The library half of the crate (this module) contains the argument parser
//! and the report generation so that both are unit-testable without spawning
//! a process; `main.rs` is a thin wrapper that reads the file and prints the
//! report.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;

use rctree_core::analysis::TreeAnalysis;
use rctree_core::cert::Certification;
use rctree_core::element::Branch;
use rctree_core::tree::RcTree;
use rctree_core::units::{Farads, Ohms, Seconds};
use rctree_netlist::{parse_expr, parse_spef_deck, parse_spice};
use rctree_sta::{CellLibrary, Design, EcoEdit, EcoEditKind};

/// Input netlist formats understood by the tool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputFormat {
    /// SPICE-subset deck (R/C/U cards).
    Spice,
    /// SPEF-lite parasitic file.
    Spef,
    /// The paper's `URC`/`WB`/`WC` wiring-algebra expression.
    Expr,
}

/// The tool's operating mode.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// One-shot delay-bound report of a single tree (the default).
    Report,
    /// Incremental ECO session: apply an edit script to a SPEF deck and
    /// print per-edit slack deltas.
    Eco {
        /// Path of the edit-script file.
        script: String,
        /// Driver cell prepended to every extracted net.
        driver: String,
    },
}

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Operating mode (`rcdelay` vs `rcdelay eco`).
    pub command: Command,
    /// Path of the netlist file (`-` for standard input).
    pub path: String,
    /// Input format.
    pub format: InputFormat,
    /// SPEF net name to analyse (first net when `None`).
    pub net: Option<String>,
    /// Switching threshold as a fraction of the swing.
    pub threshold: f64,
    /// Optional delay budget for certification, in seconds.
    pub budget: Option<f64>,
    /// Optional time at which to report voltage bounds, in seconds.
    pub voltage_at: Option<f64>,
    /// Worker threads for deck-scale work (`None`: `RCTREE_JOBS` or the
    /// available hardware parallelism, per [`rctree_par::default_jobs`]).
    pub jobs: Option<usize>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            command: Command::Report,
            path: String::new(),
            format: InputFormat::Spice,
            net: None,
            threshold: 0.5,
            budget: None,
            voltage_at: None,
            jobs: None,
        }
    }
}

/// Usage text printed for `--help` and argument errors.
pub const USAGE: &str = "\
rcdelay: Penfield-Rubinstein delay bounds for RC tree netlists

usage: rcdelay [OPTIONS] <netlist-file>
       rcdelay eco [OPTIONS] --budget <seconds> <deck.spef> <edit-script>

options:
  --format <spice|spef|expr>   input format (default: spice; eco mode: spef)
  --net <name>                 SPEF net to analyse (default: first)
  --threshold <v>              switching threshold in (0,1) (default: 0.5)
  --budget <seconds>           certify every output against this budget
                               (required in eco mode; exit status 1 on a
                               failing certification, 2 on indeterminate)
  --voltage-at <seconds>       also report voltage bounds at this time
  --jobs <n>                   worker threads for deck parsing and design
                               analysis (default: RCTREE_JOBS, else
                               available parallelism)
  --driver <cell>              eco mode: driver cell for every extracted
                               net (default: inv_4x)
  --help                       print this message

edit-script directives (one per line, `#` comments):
  setcap  <net> <node> <farads>          replace a node's load capacitance
  setres  <net> <node> <ohms>            replace a branch with a resistor
  setline <net> <node> <ohms> <farads>   replace a branch with an RC line
  graft   <net> <parent> <name> <ohms> <farads>
                                         attach a new load node via a
                                         resistor (adds load to existing
                                         endpoints; not itself timed)
  prune   <net> <node>                   remove a node and its subtree
";

/// Errors produced by argument parsing or analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// Bad or missing command-line arguments; the string is a message for
    /// the user.
    Usage(String),
    /// The netlist failed to parse.
    Netlist(String),
    /// The analysis failed (e.g. no outputs marked).
    Analysis(String),
    /// An ECO edit script failed to parse or apply; the message carries
    /// the 1-based script line and, where one can be singled out, the
    /// offending token in backticks (the same structured shape as the
    /// netlist parse errors).
    Script(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Netlist(m) => write!(f, "netlist error: {m}"),
            CliError::Analysis(m) => write!(f, "analysis error: {m}"),
            CliError::Script(m) => write!(f, "edit script error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parses command-line arguments (excluding the program name).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown flags, missing values, malformed
/// numbers, or a missing input path.  `--help` is reported as a usage error
/// carrying the usage text so the caller can print it and exit successfully.
pub fn parse_args<I, S>(args: I) -> Result<Options, CliError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut opts = Options::default();
    let mut iter = args.into_iter();
    let mut positionals: Vec<String> = Vec::new();
    let mut eco = false;
    let mut driver = "inv_4x".to_string();
    let mut driver_given = false;
    let mut format_given = false;
    let mut first = true;

    while let Some(arg) = iter.next() {
        let arg = arg.as_ref();
        if first {
            first = false;
            if arg == "eco" {
                eco = true;
                continue;
            }
        }
        let mut value_of = |name: &str| -> Result<String, CliError> {
            iter.next()
                .map(|v| v.as_ref().to_string())
                .ok_or_else(|| CliError::Usage(format!("{name} requires a value")))
        };
        match arg {
            "--help" | "-h" => return Err(CliError::Usage(USAGE.to_string())),
            "--driver" => {
                driver_given = true;
                driver = value_of("--driver")?;
            }
            "--format" => {
                format_given = true;
                opts.format = match value_of("--format")?.as_str() {
                    "spice" => InputFormat::Spice,
                    "spef" => InputFormat::Spef,
                    "expr" => InputFormat::Expr,
                    other => {
                        return Err(CliError::Usage(format!("unknown format `{other}`")));
                    }
                };
            }
            "--net" => opts.net = Some(value_of("--net")?),
            "--threshold" => {
                opts.threshold = parse_number(&value_of("--threshold")?, "--threshold")?;
            }
            "--budget" => {
                opts.budget = Some(parse_number(&value_of("--budget")?, "--budget")?);
            }
            "--voltage-at" => {
                opts.voltage_at = Some(parse_number(&value_of("--voltage-at")?, "--voltage-at")?);
            }
            "--jobs" => {
                let text = value_of("--jobs")?;
                let jobs = text
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| {
                        CliError::Usage(format!("--jobs: `{text}` is not a positive integer"))
                    })?;
                opts.jobs = Some(jobs);
            }
            other if other.starts_with('-') && other != "-" => {
                return Err(CliError::Usage(format!("unknown option `{other}`")));
            }
            positional => positionals.push(positional.to_string()),
        }
    }

    if eco {
        if positionals.len() != 2 {
            return Err(CliError::Usage(
                "eco mode requires exactly <deck.spef> and <edit-script>".into(),
            ));
        }
        if format_given && opts.format != InputFormat::Spef {
            return Err(CliError::Usage(
                "eco mode only supports --format spef".into(),
            ));
        }
        opts.format = InputFormat::Spef;
        if opts.budget.is_none() {
            return Err(CliError::Usage(
                "eco mode requires --budget (slack needs a required time)".into(),
            ));
        }
        if opts.net.is_some() {
            return Err(CliError::Usage(
                "--net does not apply to eco mode (edits name their nets)".into(),
            ));
        }
        if opts.voltage_at.is_some() {
            return Err(CliError::Usage(
                "--voltage-at does not apply to eco mode".into(),
            ));
        }
        let script = positionals.pop().expect("two positionals");
        opts.path = positionals.pop().expect("two positionals");
        opts.command = Command::Eco { script, driver };
    } else {
        if driver_given {
            return Err(CliError::Usage(
                "--driver only applies to `rcdelay eco`".into(),
            ));
        }
        if positionals.len() > 1 {
            return Err(CliError::Usage("more than one input file given".into()));
        }
        opts.path = positionals
            .pop()
            .ok_or_else(|| CliError::Usage("missing input netlist file".into()))?;
    }
    if !(opts.threshold > 0.0 && opts.threshold < 1.0) {
        return Err(CliError::Usage(format!(
            "threshold {} must lie strictly between 0 and 1",
            opts.threshold
        )));
    }
    Ok(opts)
}

fn parse_number(text: &str, flag: &str) -> Result<f64, CliError> {
    text.parse::<f64>()
        .map_err(|_| CliError::Usage(format!("{flag}: `{text}` is not a number")))
}

/// Parses the netlist text according to the selected format.
///
/// # Errors
///
/// Returns [`CliError::Netlist`] when the input cannot be parsed or the
/// requested SPEF net does not exist.
pub fn load_tree(text: &str, opts: &Options) -> Result<RcTree, CliError> {
    match opts.format {
        InputFormat::Spice => parse_spice(text).map_err(|e| CliError::Netlist(e.to_string())),
        InputFormat::Spef => {
            // Deck-level parallel ingestion: `*D_NET` sections are parsed
            // across the worker pool, with results in document order.
            let jobs = opts.jobs.unwrap_or_else(rctree_par::default_jobs);
            let nets = parse_spef_deck(text, jobs).map_err(|e| CliError::Netlist(e.to_string()))?;
            let net = match &opts.net {
                Some(name) => nets
                    .into_iter()
                    .find(|n| &n.name == name)
                    .ok_or_else(|| CliError::Netlist(format!("no net named `{name}`")))?,
                None => nets
                    .into_iter()
                    .next()
                    .expect("parse_spef never returns an empty list"),
            };
            Ok(net.tree)
        }
        InputFormat::Expr => {
            let expr = parse_expr(text).map_err(|e| CliError::Netlist(e.to_string()))?;
            expr.to_tree().map_err(|e| CliError::Netlist(e.to_string()))
        }
    }
}

/// A rendered report plus the machine-readable verdict that decides the
/// process exit code.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The human-readable report text.
    pub text: String,
    /// The certification verdict when a `--budget` was given
    /// (`None` otherwise).  [`Certification::Fail`] makes `rcdelay` exit
    /// nonzero.
    pub certification: Option<Certification>,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Runs the analysis and renders the human-readable report.
///
/// # Errors
///
/// Returns [`CliError::Analysis`] when the tree cannot be analysed (no
/// outputs, no capacitance, invalid threshold).
pub fn report(tree: &RcTree, opts: &Options) -> Result<Report, CliError> {
    let analysis = TreeAnalysis::of(tree).map_err(|e| CliError::Analysis(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} nodes, {} branches, C_total = {}, {} output(s), threshold {}",
        tree.node_count(),
        tree.branch_count(),
        tree.total_capacitance(),
        analysis.len(),
        opts.threshold
    );
    let _ = writeln!(
        out,
        "{:<16} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "output", "T_P (s)", "T_D (s)", "T_R (s)", "t_min (s)", "t_max (s)"
    );
    for o in analysis.outputs() {
        let b = o
            .times
            .delay_bounds(opts.threshold)
            .map_err(|e| CliError::Analysis(e.to_string()))?;
        let _ = writeln!(
            out,
            "{:<16} {:>14.6e} {:>14.6e} {:>14.6e} {:>14.6e} {:>14.6e}",
            o.name,
            o.times.t_p.value(),
            o.times.t_d.value(),
            o.times.t_r.value(),
            b.lower.value(),
            b.upper.value()
        );
    }

    if let Some(t) = opts.voltage_at {
        let _ = writeln!(out, "\nvoltage bounds at t = {t:.6e} s:");
        for o in analysis.outputs() {
            let vb = o
                .times
                .voltage_bounds(Seconds::new(t))
                .map_err(|e| CliError::Analysis(e.to_string()))?;
            let _ = writeln!(out, "  {:<16} [{:.5}, {:.5}]", o.name, vb.lower, vb.upper);
        }
    }

    let mut certification = None;
    if let Some(budget) = opts.budget {
        let verdict = analysis
            .certify_all(opts.threshold, Seconds::new(budget))
            .map_err(|e| CliError::Analysis(e.to_string()))?;
        let _ = writeln!(
            out,
            "\ncertification against a {budget:.6e} s budget: {verdict}"
        );
        certification = Some(verdict);
    }
    Ok(Report {
        text: out,
        certification,
    })
}

/// One parsed edit-script line: the source line number (for error
/// reporting) plus the resolved design-level edit.
#[derive(Debug, Clone)]
pub struct ScriptEdit {
    /// 1-based line number in the script file.
    pub line: usize,
    /// Short human-readable rendering of the directive.
    pub summary: String,
    /// The design-level edit.
    pub edit: EcoEdit,
}

/// Parses an ECO edit script (see [`USAGE`] for the grammar).
///
/// # Errors
///
/// Returns [`CliError::Script`] with the 1-based line number and the
/// offending token for unknown directives, missing fields and malformed
/// numbers.
pub fn parse_eco_script(text: &str) -> Result<Vec<ScriptEdit>, CliError> {
    let mut edits = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let body = raw.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = body.split_whitespace().collect();
        let expect = |count: usize| -> Result<(), CliError> {
            if tokens.len() == count {
                Ok(())
            } else {
                Err(CliError::Script(format!(
                    "line {line}: `{}` takes {} fields, found {} (near `{body}`)",
                    tokens[0],
                    count - 1,
                    tokens.len() - 1
                )))
            }
        };
        let number = |token: &str, what: &str| -> Result<f64, CliError> {
            token
                .parse::<f64>()
                .ok()
                .filter(|v| v.is_finite())
                .ok_or_else(|| {
                    CliError::Script(format!(
                        "line {line}: {what} is not a finite number (near `{token}`)"
                    ))
                })
        };
        let kind = match tokens[0] {
            "setcap" => {
                expect(4)?;
                EcoEditKind::SetCap {
                    node: tokens[2].to_string(),
                    cap: Farads::new(number(tokens[3], "capacitance")?),
                }
            }
            "setres" => {
                expect(4)?;
                EcoEditKind::SetBranch {
                    node: tokens[2].to_string(),
                    branch: Branch::resistor(Ohms::new(number(tokens[3], "resistance")?)),
                }
            }
            "setline" => {
                expect(5)?;
                EcoEditKind::SetBranch {
                    node: tokens[2].to_string(),
                    branch: Branch::line(
                        Ohms::new(number(tokens[3], "resistance")?),
                        Farads::new(number(tokens[4], "line capacitance")?),
                    ),
                }
            }
            "graft" => {
                expect(6)?;
                // The graft adds *load* only: net sinks are frozen when the
                // design is built, so the new node is never a timed endpoint.
                let mut b = rctree_core::builder::RcTreeBuilder::with_input_name(tokens[3]);
                b.add_capacitance(b.input(), Farads::new(number(tokens[5], "capacitance")?))
                    .map_err(|e| CliError::Script(format!("line {line}: {e}")))?;
                EcoEditKind::Graft {
                    parent: tokens[2].to_string(),
                    via: Branch::resistor(Ohms::new(number(tokens[4], "resistance")?)),
                    subtree: Box::new(
                        b.build()
                            .map_err(|e| CliError::Script(format!("line {line}: {e}")))?,
                    ),
                }
            }
            "prune" => {
                expect(3)?;
                EcoEditKind::Prune {
                    node: tokens[2].to_string(),
                }
            }
            other => {
                return Err(CliError::Script(format!(
                    "line {line}: unknown directive (near `{other}`)"
                )));
            }
        };
        edits.push(ScriptEdit {
            line,
            summary: body.to_string(),
            edit: EcoEdit {
                net: tokens[1].to_string(),
                kind,
            },
        });
    }
    Ok(edits)
}

/// The result of an ECO session: the rendered per-edit log and the final
/// verdict (which decides the exit code).
#[derive(Debug, Clone, PartialEq)]
pub struct EcoOutcome {
    /// Human-readable per-edit slack log.
    pub text: String,
    /// Certification of the design after the last edit.
    pub certification: Certification,
}

/// Runs a full ECO session: parse the deck, build the per-net design,
/// apply the script one edit at a time, and log the slack delta after
/// each.
///
/// # Errors
///
/// * [`CliError::Netlist`] if the deck fails to parse;
/// * [`CliError::Script`] if the script fails to parse, or an edit
///   references an unknown net/node (reported with its script line and the
///   offending token) or fails validation;
/// * [`CliError::Analysis`] if the design cannot be built or analysed.
pub fn run_eco(deck: &str, script: &str, opts: &Options) -> Result<EcoOutcome, CliError> {
    let Command::Eco { driver, .. } = &opts.command else {
        return Err(CliError::Usage("run_eco requires eco mode".into()));
    };
    let budget = opts
        .budget
        .ok_or_else(|| CliError::Usage("eco mode requires --budget".into()))?;
    let jobs = opts.jobs.unwrap_or_else(rctree_par::default_jobs);
    let edits = parse_eco_script(script)?;

    let nets = parse_spef_deck(deck, jobs).map_err(|e| CliError::Netlist(e.to_string()))?;
    let net_count = nets.len();
    let mut design = Design::from_extracted(
        CellLibrary::nmos_1981(),
        driver,
        nets.into_iter().map(|n| (n.name, n.tree)),
    )
    .map_err(|e| CliError::Analysis(e.to_string()))?;

    let required = Seconds::new(budget);
    let baseline = design
        .apply_eco_with_jobs(&[], opts.threshold, required, jobs)
        .map_err(|e| CliError::Analysis(e.to_string()))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "eco session: {net_count} nets, {} edits, threshold {}, budget {budget:.6e} s, driver {driver}",
        edits.len(),
        opts.threshold
    );
    let mut slack = baseline.worst_slack();
    let mut certification = baseline.certification();
    let _ = writeln!(
        out,
        "baseline: worst slack {:+.6e} s, certification {certification}",
        slack.value()
    );
    for (k, se) in edits.iter().enumerate() {
        let report = design
            .apply_eco_with_jobs(
                std::slice::from_ref(&se.edit),
                opts.threshold,
                required,
                jobs,
            )
            .map_err(|e| CliError::Script(format!("line {}: {e}", se.line)))?;
        let new_slack = report.worst_slack();
        certification = report.certification();
        let _ = writeln!(
            out,
            "edit {:>4} (line {:>3}) {:<44} slack {:+.6e} s (delta {:+.3e} s) {certification}",
            k + 1,
            se.line,
            se.summary,
            new_slack.value(),
            (new_slack - slack).value()
        );
        slack = new_slack;
    }
    let _ = writeln!(out, "final certification: {certification}");
    Ok(EcoOutcome {
        text: out,
        certification,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG7_DECK: &str = "\
R1 in n1 15\nC1 n1 0 2\nRB n1 ns 8\nCB ns 0 7\nU1 n1 n2 3 4\nC2 n2 0 9\n.output n2\n";

    #[test]
    fn parses_full_argument_set() {
        let opts = parse_args([
            "--format",
            "spef",
            "--net",
            "clk",
            "--threshold",
            "0.9",
            "--budget",
            "1e-9",
            "--voltage-at",
            "5e-10",
            "--jobs",
            "3",
            "deck.spef",
        ])
        .unwrap();
        assert_eq!(opts.format, InputFormat::Spef);
        assert_eq!(opts.net.as_deref(), Some("clk"));
        assert_eq!(opts.threshold, 0.9);
        assert_eq!(opts.budget, Some(1e-9));
        assert_eq!(opts.voltage_at, Some(5e-10));
        assert_eq!(opts.jobs, Some(3));
        assert_eq!(opts.path, "deck.spef");
    }

    #[test]
    fn defaults_are_sensible() {
        let opts = parse_args(["file.sp"]).unwrap();
        assert_eq!(opts.format, InputFormat::Spice);
        assert_eq!(opts.threshold, 0.5);
        assert!(opts.budget.is_none());
        assert!(opts.jobs.is_none());
    }

    #[test]
    fn usage_errors_are_reported() {
        assert!(matches!(parse_args::<_, &str>([]), Err(CliError::Usage(_))));
        assert!(matches!(parse_args(["--help"]), Err(CliError::Usage(_))));
        assert!(matches!(
            parse_args(["--format", "verilog", "x"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--threshold", "1.5", "x"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--threshold", "abc", "x"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(parse_args(["--budget"]), Err(CliError::Usage(_))));
        assert!(matches!(
            parse_args(["--jobs", "0", "x"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--jobs", "two", "x"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["a.sp", "b.sp"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--bogus", "x"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn spice_report_contains_figure10_numbers() {
        let opts = Options {
            path: "-".into(),
            threshold: 0.9,
            budget: Some(1000.0),
            voltage_at: Some(100.0),
            ..Options::default()
        };
        let tree = load_tree(FIG7_DECK, &opts).unwrap();
        let report = report(&tree, &opts).unwrap();
        let text = &report.text;
        assert!(text.contains("n2"));
        assert!(text.contains("7.23664"), "{text}");
        assert!(text.contains("pass"));
        assert!(text.contains("[0.16644, 0.35714]"));
        assert_eq!(report.certification, Some(Certification::Pass));
    }

    #[test]
    fn expr_format_loads_the_paper_notation() {
        let opts = Options {
            path: "-".into(),
            format: InputFormat::Expr,
            ..Options::default()
        };
        let tree = load_tree(
            "(URC 15 0) WC (URC 0 2) WC (WB ((URC 8 0) WC (URC 0 7))) WC (URC 3 4) WC (URC 0 9)",
            &opts,
        )
        .unwrap();
        assert_eq!(tree.outputs().count(), 1);
        let report = report(&tree, &opts).unwrap();
        assert!(report.text.contains("threshold 0.5"));
        // No budget given: no verdict, so the exit code cannot be failure.
        assert_eq!(report.certification, None);
    }

    #[test]
    fn spef_format_selects_nets() {
        let spef = "\
*D_NET a 1\n*CONN\n*I drv I\n*P x O\n*CAP\n1 x 1\n*RES\n1 drv x 5\n*END\n\
*D_NET b 1\n*CONN\n*I drv I\n*P y O\n*CAP\n1 y 2\n*RES\n1 drv y 7\n*END\n";
        let mut opts = Options {
            path: "-".into(),
            format: InputFormat::Spef,
            ..Options::default()
        };
        let first = load_tree(spef, &opts).unwrap();
        assert!(first.node_by_name("x").is_ok());
        opts.net = Some("b".into());
        let second = load_tree(spef, &opts).unwrap();
        assert!(second.node_by_name("y").is_ok());
        opts.net = Some("zzz".into());
        assert!(matches!(load_tree(spef, &opts), Err(CliError::Netlist(_))));
    }

    #[test]
    fn bad_netlists_are_reported() {
        let opts = Options {
            path: "-".into(),
            ..Options::default()
        };
        assert!(matches!(
            load_tree("garbage line\n", &opts),
            Err(CliError::Netlist(_))
        ));
        // A tree with no outputs fails at analysis time.
        let tree = load_tree("R1 in a 5\nC1 a 0 1\n.output a\n", &opts).unwrap();
        assert!(report(&tree, &opts).is_ok());
    }

    #[test]
    fn error_display_is_prefixed() {
        assert!(CliError::Usage("x".into()).to_string().contains("usage"));
        assert!(CliError::Netlist("x".into())
            .to_string()
            .contains("netlist"));
        assert!(CliError::Analysis("x".into())
            .to_string()
            .contains("analysis"));
        assert!(CliError::Script("x".into())
            .to_string()
            .contains("edit script"));
    }

    /// A two-net SPEF deck for the eco tests: one fast wire, one slow.
    const ECO_DECK: &str = "\
*D_NET fast 0.001
*CONN
*I drv I
*P x O
*CAP
1 x 0.001
*RES
1 drv x 5
*END
\
*D_NET slow 0.3
*CONN
*I drv I
*P y O
*CAP
1 y 0.3
*RES
1 drv y 800
*END
";

    fn eco_opts(budget: f64) -> Options {
        Options {
            command: Command::Eco {
                script: "edits.eco".into(),
                driver: "inv_4x".into(),
            },
            path: "deck.spef".into(),
            format: InputFormat::Spef,
            budget: Some(budget),
            ..Options::default()
        }
    }

    #[test]
    fn eco_arguments_parse_and_validate() {
        let opts = parse_args([
            "eco",
            "--budget",
            "5e-9",
            "--driver",
            "buf_8x",
            "--jobs",
            "2",
            "deck.spef",
            "edits.eco",
        ])
        .unwrap();
        assert_eq!(opts.path, "deck.spef");
        assert_eq!(opts.format, InputFormat::Spef);
        assert_eq!(
            opts.command,
            Command::Eco {
                script: "edits.eco".into(),
                driver: "buf_8x".into(),
            }
        );

        // Missing budget, missing script, or a non-SPEF format are refused.
        assert!(matches!(
            parse_args(["eco", "deck.spef", "edits.eco"]),
            Err(CliError::Usage(_))
        ));
        // Mode-mismatched flags are refused rather than silently ignored.
        assert!(matches!(
            parse_args(["--driver", "buf_8x", "deck.sp"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args([
                "eco",
                "--budget",
                "1e-9",
                "--net",
                "n1",
                "deck.spef",
                "edits.eco"
            ]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args([
                "eco",
                "--budget",
                "1e-9",
                "--voltage-at",
                "1e-9",
                "deck.spef",
                "edits.eco"
            ]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["eco", "--budget", "1e-9", "deck.spef"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args([
                "eco",
                "--budget",
                "1e-9",
                "--format",
                "spice",
                "deck.spef",
                "edits.eco"
            ]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn eco_script_parses_every_directive_and_flags_bad_tokens() {
        let script = "\
# a comment line
setcap fast x 2e-15
setres fast x 120 # trailing comment
setline slow y 90 3e-14
graft slow y tap1 50 1e-14
prune slow tap1
";
        let edits = parse_eco_script(script).unwrap();
        assert_eq!(edits.len(), 5);
        assert_eq!(edits[0].line, 2);
        assert_eq!(edits[0].edit.net, "fast");
        assert!(matches!(edits[4].edit.kind, EcoEditKind::Prune { .. }));

        for (bad, needle) in [
            (
                "resize fast x 1
",
                "`resize`",
            ),
            (
                "setcap fast x nope
",
                "`nope`",
            ),
            (
                "setcap fast x
",
                "takes 3 fields",
            ),
            (
                "graft slow y tap 50
",
                "takes 5 fields",
            ),
        ] {
            let err = parse_eco_script(bad).unwrap_err();
            let CliError::Script(message) = &err else {
                panic!("expected script error, got {err:?}");
            };
            assert!(
                message.contains("line 1") && message.contains(needle),
                "{message}"
            );
        }
    }

    #[test]
    fn eco_session_reports_slack_deltas_and_verdicts() {
        let opts = eco_opts(60e-9);
        let script = "setcap slow y 1.2e-12\nsetcap slow y 0.3e-12\n";
        let outcome = run_eco(ECO_DECK, script, &opts).unwrap();
        assert_eq!(outcome.certification, Certification::Pass);
        assert!(outcome.text.contains("baseline"), "{}", outcome.text);
        assert!(outcome.text.contains("edit    1"), "{}", outcome.text);
        assert!(outcome.text.contains("delta"), "{}", outcome.text);
        assert!(outcome.text.contains("final certification: pass"));

        // An impossible budget fails certification.
        let fail = run_eco(ECO_DECK, script, &eco_opts(1e-12)).unwrap();
        assert_eq!(fail.certification, Certification::Fail);
    }

    #[test]
    fn eco_unknown_references_carry_line_and_token() {
        let opts = eco_opts(60e-9);
        let err = run_eco(
            ECO_DECK,
            "setcap ghost x 1e-15
",
            &opts,
        )
        .unwrap_err();
        let CliError::Script(message) = &err else {
            panic!("expected script error, got {err:?}");
        };
        assert!(
            message.contains("line 1") && message.contains("`ghost`"),
            "{message}"
        );

        let err = run_eco(
            ECO_DECK,
            "setcap fast x 1e-15
prune fast nope
",
            &opts,
        )
        .unwrap_err();
        let CliError::Script(message) = &err else {
            panic!("expected script error, got {err:?}");
        };
        assert!(
            message.contains("line 2") && message.contains("`nope`"),
            "{message}"
        );
    }
}
