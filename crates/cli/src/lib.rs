//! # rctree-cli
//!
//! The `rcdelay` command-line tool: Penfield–Rubinstein delay-bound analysis
//! for RC-tree netlists from the shell.
//!
//! ```text
//! rcdelay [OPTIONS] <netlist-file>
//!
//!   --format <spice|spef|expr>   input format          (default: spice)
//!   --net <name>                 SPEF net to analyse   (default: first net)
//!   --threshold <v>              switching threshold   (default: 0.5)
//!   --budget <seconds>           certify against a delay budget
//!   --voltage-at <seconds>       also report voltage bounds at this time
//!   --jobs <n>                   worker threads        (default: available parallelism)
//!   --help                       print usage
//! ```
//!
//! The library half of the crate (this module) contains the argument parser
//! and the report generation so that both are unit-testable without spawning
//! a process; `main.rs` is a thin wrapper that reads the file and prints the
//! report.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;

use rctree_core::analysis::TreeAnalysis;
use rctree_core::tree::RcTree;
use rctree_core::units::Seconds;
use rctree_netlist::{parse_expr, parse_spef_deck, parse_spice};

/// Input netlist formats understood by the tool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputFormat {
    /// SPICE-subset deck (R/C/U cards).
    Spice,
    /// SPEF-lite parasitic file.
    Spef,
    /// The paper's `URC`/`WB`/`WC` wiring-algebra expression.
    Expr,
}

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Path of the netlist file (`-` for standard input).
    pub path: String,
    /// Input format.
    pub format: InputFormat,
    /// SPEF net name to analyse (first net when `None`).
    pub net: Option<String>,
    /// Switching threshold as a fraction of the swing.
    pub threshold: f64,
    /// Optional delay budget for certification, in seconds.
    pub budget: Option<f64>,
    /// Optional time at which to report voltage bounds, in seconds.
    pub voltage_at: Option<f64>,
    /// Worker threads for deck-scale work (`None`: `RCTREE_JOBS` or the
    /// available hardware parallelism, per [`rctree_par::default_jobs`]).
    pub jobs: Option<usize>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            path: String::new(),
            format: InputFormat::Spice,
            net: None,
            threshold: 0.5,
            budget: None,
            voltage_at: None,
            jobs: None,
        }
    }
}

/// Usage text printed for `--help` and argument errors.
pub const USAGE: &str = "\
rcdelay: Penfield-Rubinstein delay bounds for RC tree netlists

usage: rcdelay [OPTIONS] <netlist-file>

options:
  --format <spice|spef|expr>   input format (default: spice)
  --net <name>                 SPEF net to analyse (default: first)
  --threshold <v>              switching threshold in (0,1) (default: 0.5)
  --budget <seconds>           certify every output against this budget
  --voltage-at <seconds>       also report voltage bounds at this time
  --jobs <n>                   worker threads for SPEF deck parsing
                               (default: RCTREE_JOBS, else available
                               parallelism)
  --help                       print this message
";

/// Errors produced by argument parsing or analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// Bad or missing command-line arguments; the string is a message for
    /// the user.
    Usage(String),
    /// The netlist failed to parse.
    Netlist(String),
    /// The analysis failed (e.g. no outputs marked).
    Analysis(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Netlist(m) => write!(f, "netlist error: {m}"),
            CliError::Analysis(m) => write!(f, "analysis error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parses command-line arguments (excluding the program name).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown flags, missing values, malformed
/// numbers, or a missing input path.  `--help` is reported as a usage error
/// carrying the usage text so the caller can print it and exit successfully.
pub fn parse_args<I, S>(args: I) -> Result<Options, CliError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut opts = Options::default();
    let mut iter = args.into_iter();
    let mut path: Option<String> = None;

    while let Some(arg) = iter.next() {
        let arg = arg.as_ref();
        let mut value_of = |name: &str| -> Result<String, CliError> {
            iter.next()
                .map(|v| v.as_ref().to_string())
                .ok_or_else(|| CliError::Usage(format!("{name} requires a value")))
        };
        match arg {
            "--help" | "-h" => return Err(CliError::Usage(USAGE.to_string())),
            "--format" => {
                opts.format = match value_of("--format")?.as_str() {
                    "spice" => InputFormat::Spice,
                    "spef" => InputFormat::Spef,
                    "expr" => InputFormat::Expr,
                    other => {
                        return Err(CliError::Usage(format!("unknown format `{other}`")));
                    }
                };
            }
            "--net" => opts.net = Some(value_of("--net")?),
            "--threshold" => {
                opts.threshold = parse_number(&value_of("--threshold")?, "--threshold")?;
            }
            "--budget" => {
                opts.budget = Some(parse_number(&value_of("--budget")?, "--budget")?);
            }
            "--voltage-at" => {
                opts.voltage_at = Some(parse_number(&value_of("--voltage-at")?, "--voltage-at")?);
            }
            "--jobs" => {
                let text = value_of("--jobs")?;
                let jobs = text
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| {
                        CliError::Usage(format!("--jobs: `{text}` is not a positive integer"))
                    })?;
                opts.jobs = Some(jobs);
            }
            other if other.starts_with('-') && other != "-" => {
                return Err(CliError::Usage(format!("unknown option `{other}`")));
            }
            positional => {
                if path.is_some() {
                    return Err(CliError::Usage("more than one input file given".into()));
                }
                path = Some(positional.to_string());
            }
        }
    }

    opts.path = path.ok_or_else(|| CliError::Usage("missing input netlist file".into()))?;
    if !(opts.threshold > 0.0 && opts.threshold < 1.0) {
        return Err(CliError::Usage(format!(
            "threshold {} must lie strictly between 0 and 1",
            opts.threshold
        )));
    }
    Ok(opts)
}

fn parse_number(text: &str, flag: &str) -> Result<f64, CliError> {
    text.parse::<f64>()
        .map_err(|_| CliError::Usage(format!("{flag}: `{text}` is not a number")))
}

/// Parses the netlist text according to the selected format.
///
/// # Errors
///
/// Returns [`CliError::Netlist`] when the input cannot be parsed or the
/// requested SPEF net does not exist.
pub fn load_tree(text: &str, opts: &Options) -> Result<RcTree, CliError> {
    match opts.format {
        InputFormat::Spice => parse_spice(text).map_err(|e| CliError::Netlist(e.to_string())),
        InputFormat::Spef => {
            // Deck-level parallel ingestion: `*D_NET` sections are parsed
            // across the worker pool, with results in document order.
            let jobs = opts.jobs.unwrap_or_else(rctree_par::default_jobs);
            let nets = parse_spef_deck(text, jobs).map_err(|e| CliError::Netlist(e.to_string()))?;
            let net = match &opts.net {
                Some(name) => nets
                    .into_iter()
                    .find(|n| &n.name == name)
                    .ok_or_else(|| CliError::Netlist(format!("no net named `{name}`")))?,
                None => nets
                    .into_iter()
                    .next()
                    .expect("parse_spef never returns an empty list"),
            };
            Ok(net.tree)
        }
        InputFormat::Expr => {
            let expr = parse_expr(text).map_err(|e| CliError::Netlist(e.to_string()))?;
            expr.to_tree().map_err(|e| CliError::Netlist(e.to_string()))
        }
    }
}

/// Runs the analysis and renders the human-readable report.
///
/// # Errors
///
/// Returns [`CliError::Analysis`] when the tree cannot be analysed (no
/// outputs, no capacitance, invalid threshold).
pub fn report(tree: &RcTree, opts: &Options) -> Result<String, CliError> {
    let analysis = TreeAnalysis::of(tree).map_err(|e| CliError::Analysis(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} nodes, {} branches, C_total = {}, {} output(s), threshold {}",
        tree.node_count(),
        tree.branch_count(),
        tree.total_capacitance(),
        analysis.len(),
        opts.threshold
    );
    let _ = writeln!(
        out,
        "{:<16} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "output", "T_P (s)", "T_D (s)", "T_R (s)", "t_min (s)", "t_max (s)"
    );
    for o in analysis.outputs() {
        let b = o
            .times
            .delay_bounds(opts.threshold)
            .map_err(|e| CliError::Analysis(e.to_string()))?;
        let _ = writeln!(
            out,
            "{:<16} {:>14.6e} {:>14.6e} {:>14.6e} {:>14.6e} {:>14.6e}",
            o.name,
            o.times.t_p.value(),
            o.times.t_d.value(),
            o.times.t_r.value(),
            b.lower.value(),
            b.upper.value()
        );
    }

    if let Some(t) = opts.voltage_at {
        let _ = writeln!(out, "\nvoltage bounds at t = {t:.6e} s:");
        for o in analysis.outputs() {
            let vb = o
                .times
                .voltage_bounds(Seconds::new(t))
                .map_err(|e| CliError::Analysis(e.to_string()))?;
            let _ = writeln!(out, "  {:<16} [{:.5}, {:.5}]", o.name, vb.lower, vb.upper);
        }
    }

    if let Some(budget) = opts.budget {
        let verdict = analysis
            .certify_all(opts.threshold, Seconds::new(budget))
            .map_err(|e| CliError::Analysis(e.to_string()))?;
        let _ = writeln!(
            out,
            "\ncertification against a {budget:.6e} s budget: {verdict}"
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG7_DECK: &str = "\
R1 in n1 15\nC1 n1 0 2\nRB n1 ns 8\nCB ns 0 7\nU1 n1 n2 3 4\nC2 n2 0 9\n.output n2\n";

    #[test]
    fn parses_full_argument_set() {
        let opts = parse_args([
            "--format",
            "spef",
            "--net",
            "clk",
            "--threshold",
            "0.9",
            "--budget",
            "1e-9",
            "--voltage-at",
            "5e-10",
            "--jobs",
            "3",
            "deck.spef",
        ])
        .unwrap();
        assert_eq!(opts.format, InputFormat::Spef);
        assert_eq!(opts.net.as_deref(), Some("clk"));
        assert_eq!(opts.threshold, 0.9);
        assert_eq!(opts.budget, Some(1e-9));
        assert_eq!(opts.voltage_at, Some(5e-10));
        assert_eq!(opts.jobs, Some(3));
        assert_eq!(opts.path, "deck.spef");
    }

    #[test]
    fn defaults_are_sensible() {
        let opts = parse_args(["file.sp"]).unwrap();
        assert_eq!(opts.format, InputFormat::Spice);
        assert_eq!(opts.threshold, 0.5);
        assert!(opts.budget.is_none());
        assert!(opts.jobs.is_none());
    }

    #[test]
    fn usage_errors_are_reported() {
        assert!(matches!(parse_args::<_, &str>([]), Err(CliError::Usage(_))));
        assert!(matches!(parse_args(["--help"]), Err(CliError::Usage(_))));
        assert!(matches!(
            parse_args(["--format", "verilog", "x"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--threshold", "1.5", "x"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--threshold", "abc", "x"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(parse_args(["--budget"]), Err(CliError::Usage(_))));
        assert!(matches!(
            parse_args(["--jobs", "0", "x"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--jobs", "two", "x"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["a.sp", "b.sp"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--bogus", "x"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn spice_report_contains_figure10_numbers() {
        let opts = Options {
            path: "-".into(),
            threshold: 0.9,
            budget: Some(1000.0),
            voltage_at: Some(100.0),
            ..Options::default()
        };
        let tree = load_tree(FIG7_DECK, &opts).unwrap();
        let text = report(&tree, &opts).unwrap();
        assert!(text.contains("n2"));
        assert!(text.contains("7.23664"), "{text}");
        assert!(text.contains("pass"));
        assert!(text.contains("[0.16644, 0.35714]"));
    }

    #[test]
    fn expr_format_loads_the_paper_notation() {
        let opts = Options {
            path: "-".into(),
            format: InputFormat::Expr,
            ..Options::default()
        };
        let tree = load_tree(
            "(URC 15 0) WC (URC 0 2) WC (WB ((URC 8 0) WC (URC 0 7))) WC (URC 3 4) WC (URC 0 9)",
            &opts,
        )
        .unwrap();
        assert_eq!(tree.outputs().count(), 1);
        let text = report(&tree, &opts).unwrap();
        assert!(text.contains("threshold 0.5"));
    }

    #[test]
    fn spef_format_selects_nets() {
        let spef = "\
*D_NET a 1\n*CONN\n*I drv I\n*P x O\n*CAP\n1 x 1\n*RES\n1 drv x 5\n*END\n\
*D_NET b 1\n*CONN\n*I drv I\n*P y O\n*CAP\n1 y 2\n*RES\n1 drv y 7\n*END\n";
        let mut opts = Options {
            path: "-".into(),
            format: InputFormat::Spef,
            ..Options::default()
        };
        let first = load_tree(spef, &opts).unwrap();
        assert!(first.node_by_name("x").is_ok());
        opts.net = Some("b".into());
        let second = load_tree(spef, &opts).unwrap();
        assert!(second.node_by_name("y").is_ok());
        opts.net = Some("zzz".into());
        assert!(matches!(load_tree(spef, &opts), Err(CliError::Netlist(_))));
    }

    #[test]
    fn bad_netlists_are_reported() {
        let opts = Options {
            path: "-".into(),
            ..Options::default()
        };
        assert!(matches!(
            load_tree("garbage line\n", &opts),
            Err(CliError::Netlist(_))
        ));
        // A tree with no outputs fails at analysis time.
        let tree = load_tree("R1 in a 5\nC1 a 0 1\n.output a\n", &opts).unwrap();
        assert!(report(&tree, &opts).is_ok());
    }

    #[test]
    fn error_display_is_prefixed() {
        assert!(CliError::Usage("x".into()).to_string().contains("usage"));
        assert!(CliError::Netlist("x".into())
            .to_string()
            .contains("netlist"));
        assert!(CliError::Analysis("x".into())
            .to_string()
            .contains("analysis"));
    }
}
