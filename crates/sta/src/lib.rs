//! # rctree-sta
//!
//! A miniature static-timing-analysis layer built on the Penfield–Rubinstein
//! delay bounds — the way downstream tools (OpenSTA, OpenROAD, timing-driven
//! placers) consume Elmore-style interconnect delay today.
//!
//! * [`cell`] — linear switch-resistance gate models and a small 1981-style
//!   NMOS library;
//! * [`stage`] — one driver + extracted RC tree + loads, with Elmore delay
//!   and guaranteed delay bounds per sink;
//! * [`graph`] — multi-stage designs, interval arrival-time propagation,
//!   critical paths, slack and three-valued certification.
//!
//! Design-wide analysis shards its per-net stage evaluation across the
//! persistent global worker pool (`rctree-par`); results are merged in net
//! order and are bit-identical to the serial evaluation for any worker
//! count ([`Design::analyze_with_jobs`]).  [`Design::apply_eco`] is the
//! incremental path, end to end: net-level [`EcoEdit`]s are mapped onto
//! **persistent per-net `EditableTree` engines** (value edits cost
//! `O(depth · log n_net)` to apply), dirty nets are re-timed with one flat
//! pre-order stage sweep ([`stage_delay_bounds`]) that is bit-identical to
//! the one-shot path, and arrival times are re-propagated only through the
//! **affected fan-out cone** over the cached Kahn topology — untouched
//! cones keep their cached arrival windows and endpoint contributions
//! verbatim.  See [`Design::apply_eco_with_jobs`] for the per-step
//! complexity table; the report stays bit-identical to a full
//! [`Design::analyze_with_jobs`] of the edited design for every worker
//! count.
//!
//! ```
//! use rctree_core::builder::RcTreeBuilder;
//! use rctree_core::units::{Farads, Ohms};
//! use rctree_sta::stage::analyze_stage;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 1 kΩ driver through 200 Ω of wire into a 13 fF gate.
//! let mut b = RcTreeBuilder::new();
//! let load = b.add_line(b.input(), "load", Ohms::new(200.0), Farads::from_femto(20.0))?;
//! let net = b.build()?;
//! let timing = analyze_stage(Ohms::new(1000.0), &net, &[(load, Farads::from_femto(13.0))], 0.5)?;
//! let sink = &timing.sinks[0];
//! assert!(sink.bounds.lower <= sink.elmore && sink.bounds.lower <= sink.bounds.upper);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod arena;

pub mod cell;
pub mod error;
pub mod graph;
pub mod script;
pub mod stage;

pub use crate::cell::{Cell, CellLibrary};
pub use crate::error::{Result, StaError};
pub use crate::graph::{
    ArrivalWindow, Design, DesignSnapshot, Driver, EcoEdit, EcoEditKind, EndpointTiming, Load, Net,
    NetTiming, Sink, SinkWindow, TimingReport,
};
pub use crate::script::{
    parse_eco_script, parse_eco_script_line, ScriptEdit, ScriptError, ScriptLine,
};
pub use crate::stage::{
    analyze_stage, prepend_driver, stage_delay_bounds, stage_node_times, SinkTiming, StageTiming,
};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::Design>();
        assert_send_sync::<crate::TimingReport>();
        assert_send_sync::<crate::CellLibrary>();
        assert_send_sync::<crate::StaError>();
    }
}
