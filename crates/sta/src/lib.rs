//! # rctree-sta
//!
//! A miniature static-timing-analysis layer built on the Penfield–Rubinstein
//! delay bounds — the way downstream tools (OpenSTA, OpenROAD, timing-driven
//! placers) consume Elmore-style interconnect delay today.
//!
//! * [`cell`] — linear switch-resistance gate models and a small 1981-style
//!   NMOS library;
//! * [`stage`] — one driver + extracted RC tree + loads, with Elmore delay
//!   and guaranteed delay bounds per sink;
//! * [`graph`] — multi-stage designs, interval arrival-time propagation,
//!   critical paths, slack and three-valued certification.
//!
//! Design-wide analysis shards its per-net stage evaluation across the
//! persistent global worker pool (`rctree-par`); results are merged in net
//! order and are bit-identical to the serial evaluation for any worker
//! count ([`Design::analyze_with_jobs`]).  [`Design::apply_eco`] is the
//! incremental path, end to end: net-level [`EcoEdit`]s are mapped onto
//! **persistent per-net `EditableTree` engines** (value edits cost
//! `O(depth · log n_net)` to apply), dirty nets are re-timed with one flat
//! pre-order stage sweep ([`stage_delay_bounds`]) that is bit-identical to
//! the one-shot path, and arrival times are re-propagated only through the
//! **affected fan-out cone** over the cached Kahn topology — untouched
//! cones keep their cached arrival windows and endpoint contributions
//! verbatim.  See [`Design::apply_eco_with_jobs`] for the per-step
//! complexity table; the report stays bit-identical to a full
//! [`Design::analyze_with_jobs`] of the edited design for every worker
//! count.
//!
//! ## The corner model
//!
//! Multi-corner (PVT) timing rides on a [`rctree_core::corner::CornerSet`]
//! installed with [`Design::set_corners`]: named corners, each a triple of
//! `r_scale`/`c_scale`/`delay_scale` factors, with optional per-net wire
//! overrides.  Corner 0 is always the implicit **nominal** corner.
//!
//! *Lane layout.*  The SoA net arena appends one contiguous value lane per
//! extra corner to its `branch_r`/`branch_c`/`node_cap` columns (lane `k`
//! of net `i` lives at column offset `k · lane_len`); topology columns
//! (parents, ranges, sink positions) are shared by all lanes, and per-net
//! ranges are padded to 64-byte boundaries so adjacent shards never
//! false-share a cache line.  [`Design::analyze_corners`] sweeps **all
//! lanes of a net in one post-order + pre-order traversal** — the shared
//! metadata is read once for all `K` corners — then propagates arrivals
//! once per corner with `delay_scale`d intrinsic delays.
//!
//! *Scaling semantics.*  Every element is scaled **individually, before
//! any accumulation**: a corner value is always the single rounding
//! `x * s`.  Wire elements (branch R/C, node caps) use the corner's wire
//! scales (per-net override when present); the driving cell's resistance,
//! sink input capacitances and intrinsic delays always use the corner's
//! global factors.  Because `x * s` is the same bits wherever it is
//! computed, the arena lane sweep, the engine-side ECO re-timing and a
//! fully materialized scaled design ([`Design::materialize_corner`]) agree
//! bit-for-bit.
//!
//! *Lane-0 invariant.*  Lane 0 stores the unscaled values and runs the
//! exact float sequence of the single-corner path — installing corners
//! never changes nominal results, and `analyze_corners(..).report(0)` is
//! bit-identical to [`Design::analyze_with_jobs`].  The nominal corner
//! cannot carry overrides (the core's `CornerSet` rejects them), so no
//! configuration can break this.
//!
//! ```
//! use rctree_core::builder::RcTreeBuilder;
//! use rctree_core::units::{Farads, Ohms};
//! use rctree_sta::stage::analyze_stage;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 1 kΩ driver through 200 Ω of wire into a 13 fF gate.
//! let mut b = RcTreeBuilder::new();
//! let load = b.add_line(b.input(), "load", Ohms::new(200.0), Farads::from_femto(20.0))?;
//! let net = b.build()?;
//! let timing = analyze_stage(Ohms::new(1000.0), &net, &[(load, Farads::from_femto(13.0))], 0.5)?;
//! let sink = &timing.sinks[0];
//! assert!(sink.bounds.lower <= sink.elmore && sink.bounds.lower <= sink.bounds.upper);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod arena;

pub mod cell;
pub mod error;
pub mod graph;
pub mod script;
pub mod stage;

pub use crate::cell::{Cell, CellLibrary};
pub use crate::error::{Result, StaError};
pub use crate::graph::{
    ArrivalWindow, BoxCertification, CornerAnalysis, Design, DesignSnapshot, Driver, EcoEdit,
    EcoEditKind, EndpointTiming, Load, Net, NetTiming, Sink, SinkWindow, SnapshotCorners,
    SymbolicAnalysis, SymbolicEndpointTiming, TimingReport,
};
pub use crate::script::{
    parse_eco_script, parse_eco_script_line, ScriptEdit, ScriptError, ScriptLine,
};
pub use crate::stage::{
    analyze_stage, prepend_driver, stage_delay_bounds, stage_node_times, SinkTiming, StageTiming,
};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::Design>();
        assert_send_sync::<crate::TimingReport>();
        assert_send_sync::<crate::CellLibrary>();
        assert_send_sync::<crate::StaError>();
    }
}
