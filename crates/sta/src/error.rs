//! Error types for the static-timing layer.

use std::fmt;

/// Errors produced while building or analysing a timing graph.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StaError {
    /// A referenced cell does not exist in the library.
    UnknownCell {
        /// Name of the missing cell.
        name: String,
    },
    /// A referenced instance does not exist in the design.
    UnknownInstance {
        /// Name of the missing instance.
        name: String,
    },
    /// A net references a sink node that does not exist in its RC tree.
    UnknownSinkNode {
        /// Name of the net.
        net: String,
        /// Name of the missing node.
        node: String,
    },
    /// An instance name was used twice.
    DuplicateInstance {
        /// The repeated name.
        name: String,
    },
    /// A net name was used twice.
    ///
    /// Duplicate net names used to be accepted silently (ECO edits then
    /// resolved to the highest-index net); they are now rejected at
    /// [`add_net`](crate::Design::add_net) so every name-addressed
    /// operation — ECO edits, server queries — has exactly one target.
    DuplicateNet {
        /// The repeated name.
        name: String,
    },
    /// An ECO edit referenced a net that is not in the design.
    UnknownNet {
        /// The offending net name (kept structured so tools can point at
        /// the exact token).
        name: String,
    },
    /// An ECO edit referenced a node name missing from its net's
    /// interconnect tree.
    UnknownEcoNode {
        /// Name of the net the edit targeted.
        net: String,
        /// The offending node name (kept structured so tools can point at
        /// the exact token).
        node: String,
    },
    /// A net's driver or sink refers to an instance that is missing from
    /// the design's instance table.
    ///
    /// **Invariant:** this is unreachable through the public API —
    /// [`add_net`](crate::Design::add_net) validates every instance
    /// reference at insertion time, [`add_instance`](crate::Design::add_instance)
    /// never removes entries, and the net/instance tables are private — so
    /// arrival propagation used to `expect(..)` on these lookups.  The
    /// lookups now surface this structured error instead, so a future
    /// mutation path (or a bug in one) degrades into a reportable failure
    /// rather than a panic.
    DanglingInstance {
        /// Name of the net holding the broken reference.
        net: String,
        /// The instance name that is not in the instance table.
        instance: String,
    },
    /// The design's instance/net graph contains a combinational cycle, so
    /// topological arrival-time propagation is impossible.
    CombinationalCycle,
    /// The design contains no primary-input-driven logic to analyse.
    EmptyDesign,
    /// An error propagated from the core crate.
    Core(rctree_core::CoreError),
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::UnknownCell { name } => write!(f, "unknown cell `{name}`"),
            StaError::UnknownInstance { name } => write!(f, "unknown instance `{name}`"),
            StaError::UnknownSinkNode { net, node } => {
                write!(f, "net `{net}` references unknown sink node `{node}`")
            }
            StaError::DuplicateInstance { name } => {
                write!(f, "instance `{name}` is defined more than once")
            }
            StaError::DuplicateNet { name } => {
                write!(f, "net `{name}` is defined more than once")
            }
            StaError::UnknownNet { name } => {
                write!(f, "eco edit references unknown net `{name}`")
            }
            StaError::UnknownEcoNode { net, node } => {
                write!(
                    f,
                    "eco edit on net `{net}` references unknown node `{node}`"
                )
            }
            StaError::DanglingInstance { net, instance } => {
                write!(
                    f,
                    "net `{net}` references instance `{instance}`, which is \
                     missing from the instance table (broken design invariant)"
                )
            }
            StaError::CombinationalCycle => {
                write!(f, "design contains a combinational cycle")
            }
            StaError::EmptyDesign => write!(f, "design contains nothing to analyse"),
            StaError::Core(e) => write!(f, "timing computation failed: {e}"),
        }
    }
}

impl std::error::Error for StaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StaError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rctree_core::CoreError> for StaError {
    fn from(e: rctree_core::CoreError) -> Self {
        StaError::Core(e)
    }
}

/// Convenience alias used throughout the STA crate.
pub type Result<T> = std::result::Result<T, StaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(StaError::UnknownCell { name: "inv".into() }
            .to_string()
            .contains("inv"));
        assert!(StaError::CombinationalCycle.to_string().contains("cycle"));
        assert!(StaError::EmptyDesign.to_string().contains("nothing"));
        assert!(StaError::UnknownSinkNode {
            net: "n1".into(),
            node: "x".into()
        }
        .to_string()
        .contains("n1"));
        assert!(StaError::DuplicateInstance { name: "u1".into() }
            .to_string()
            .contains("u1"));
        assert!(StaError::DuplicateNet { name: "n1".into() }
            .to_string()
            .contains("`n1`"));
        assert!(StaError::UnknownNet { name: "clk".into() }
            .to_string()
            .contains("`clk`"));
        let eco = StaError::UnknownEcoNode {
            net: "n1".into(),
            node: "x9".into(),
        }
        .to_string();
        assert!(eco.contains("`n1`") && eco.contains("`x9`"));
        assert!(StaError::UnknownInstance { name: "u9".into() }
            .to_string()
            .contains("u9"));
        let dangling = StaError::DanglingInstance {
            net: "n3".into(),
            instance: "u7".into(),
        }
        .to_string();
        assert!(dangling.contains("`n3`") && dangling.contains("`u7`"));
    }

    #[test]
    fn core_error_chains() {
        let e: StaError = rctree_core::CoreError::NoOutputs.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
