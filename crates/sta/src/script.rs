//! The textual ECO edit-script grammar shared by `rcdelay eco` and the
//! `rctree-serve` wire protocol's `ECO` verb.
//!
//! A script is a sequence of lines; each line holds `#` comments and one or
//! more `;`-separated directives:
//!
//! ```text
//! setcap  <net> <node> <farads>          replace a node's load capacitance
//! setres  <net> <node> <ohms>            replace a branch with a resistor
//! setline <net> <node> <ohms> <farads>   replace a branch with an RC line
//! graft   <net> <parent> <name> <ohms> <farads>
//!                                        attach a new load node via a resistor
//! prune   <net> <node>                   remove a node and its subtree
//! quit                                   end the session
//! ```
//!
//! Parsing lives here — next to the [`EcoEdit`] vocabulary it produces —
//! so every consumer (batch CLI, `--watch` streams, the timing server)
//! reports identical locations and offending tokens.  The historical home
//! was the CLI crate; `rctree-cli` re-exports these types unchanged.

use std::fmt;

use rctree_core::builder::RcTreeBuilder;
use rctree_core::element::Branch;
use rctree_core::units::{Farads, Ohms};

use crate::graph::{EcoEdit, EcoEditKind};

/// A script parse failure: the message carries the location (line, and the
/// 1-based edit index within `;`-separated multi-edit lines) and, where one
/// can be singled out, the offending token in backticks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    message: String,
}

impl ScriptError {
    fn new(message: impl Into<String>) -> Self {
        ScriptError {
            message: message.into(),
        }
    }

    /// The error message (location-prefixed, offending token backticked).
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ScriptError {}

/// One parsed edit-script directive: its source location (line number plus
/// its 1-based position within a `;`-separated multi-edit line) and the
/// resolved design-level edit.
#[derive(Debug, Clone)]
pub struct ScriptEdit {
    /// 1-based line number in the script file.
    pub line: usize,
    /// 1-based position of this edit within its line.
    pub index: usize,
    /// Number of edits sharing the line (error messages name the edit
    /// index only when this exceeds one).
    pub count: usize,
    /// Short human-readable rendering of the directive.
    pub summary: String,
    /// The design-level edit.
    pub edit: EcoEdit,
}

impl ScriptEdit {
    /// The location prefix used in error messages: `line N`, or
    /// `line N, edit K` within a multi-edit line (the format is pinned by
    /// the binary-level `cli_exit_codes` tests).
    pub fn location(&self) -> String {
        if self.count > 1 {
            format!("line {}, edit {}", self.line, self.index)
        } else {
            format!("line {}", self.line)
        }
    }
}

/// One parsed line of an ECO edit script.
#[derive(Debug, Clone)]
pub enum ScriptLine {
    /// Nothing to apply (blank or comment-only).
    Empty,
    /// End of the session (`quit` directive).
    Quit,
    /// One or more edits, applied in order.
    Edits(Vec<ScriptEdit>),
}

/// Parses one script line (1-based `line` number for error reporting).
/// Several directives may share a line, separated by `;`.
///
/// # Errors
///
/// Returns [`ScriptError`] with the location (line, and 1-based edit index
/// within multi-edit lines) and the offending token for unknown
/// directives, missing fields and malformed numbers.
pub fn parse_eco_script_line(line: usize, raw: &str) -> Result<ScriptLine, ScriptError> {
    let body = raw.split('#').next().unwrap_or("").trim();
    if body.is_empty() {
        return Ok(ScriptLine::Empty);
    }
    let segments: Vec<&str> = body.split(';').map(str::trim).collect();
    let count = segments.iter().filter(|s| !s.is_empty()).count();
    if count == 1 && segments.contains(&"quit") {
        return Ok(ScriptLine::Quit);
    }
    let mut edits = Vec::with_capacity(count);
    let mut index = 0;
    for segment in segments {
        if segment.is_empty() {
            continue;
        }
        index += 1;
        let loc = if count > 1 {
            format!("line {line}, edit {index}")
        } else {
            format!("line {line}")
        };
        edits.push(parse_directive(segment, &loc, line, index, count)?);
    }
    Ok(ScriptLine::Edits(edits))
}

/// Parses one `;`-free directive, with `loc` as the error-message prefix.
fn parse_directive(
    body: &str,
    loc: &str,
    line: usize,
    index: usize,
    count: usize,
) -> Result<ScriptEdit, ScriptError> {
    let tokens: Vec<&str> = body.split_whitespace().collect();
    let expect = |want: usize| -> Result<(), ScriptError> {
        if tokens.len() == want {
            Ok(())
        } else {
            Err(ScriptError::new(format!(
                "{loc}: `{}` takes {} fields, found {} (near `{body}`)",
                tokens[0],
                want - 1,
                tokens.len() - 1
            )))
        }
    };
    let number = |token: &str, what: &str| -> Result<f64, ScriptError> {
        token
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())
            .ok_or_else(|| {
                ScriptError::new(format!(
                    "{loc}: {what} is not a finite number (near `{token}`)"
                ))
            })
    };
    let kind = match tokens[0] {
        "setcap" => {
            expect(4)?;
            EcoEditKind::SetCap {
                node: tokens[2].to_string(),
                cap: Farads::new(number(tokens[3], "capacitance")?),
            }
        }
        "setres" => {
            expect(4)?;
            EcoEditKind::SetBranch {
                node: tokens[2].to_string(),
                branch: Branch::resistor(Ohms::new(number(tokens[3], "resistance")?)),
            }
        }
        "setline" => {
            expect(5)?;
            EcoEditKind::SetBranch {
                node: tokens[2].to_string(),
                branch: Branch::line(
                    Ohms::new(number(tokens[3], "resistance")?),
                    Farads::new(number(tokens[4], "line capacitance")?),
                ),
            }
        }
        "graft" => {
            expect(6)?;
            // The graft adds *load* only: net sinks are frozen when the
            // design is built, so the new node is never a timed endpoint.
            let mut b = RcTreeBuilder::with_input_name(tokens[3]);
            b.add_capacitance(b.input(), Farads::new(number(tokens[5], "capacitance")?))
                .map_err(|e| ScriptError::new(format!("{loc}: {e}")))?;
            EcoEditKind::Graft {
                parent: tokens[2].to_string(),
                via: Branch::resistor(Ohms::new(number(tokens[4], "resistance")?)),
                subtree: Box::new(
                    b.build()
                        .map_err(|e| ScriptError::new(format!("{loc}: {e}")))?,
                ),
            }
        }
        "prune" => {
            expect(3)?;
            EcoEditKind::Prune {
                node: tokens[2].to_string(),
            }
        }
        "quit" => {
            return Err(ScriptError::new(format!(
                "{loc}: `quit` cannot share a line with other directives"
            )));
        }
        other => {
            return Err(ScriptError::new(format!(
                "{loc}: unknown directive (near `{other}`)"
            )));
        }
    };
    Ok(ScriptEdit {
        line,
        index,
        count,
        summary: body.to_string(),
        edit: EcoEdit {
            net: tokens[1].to_string(),
            kind,
        },
    })
}

/// Parses a whole ECO edit script.  A `quit` directive ends the script
/// early.
///
/// # Errors
///
/// As for [`parse_eco_script_line`].
pub fn parse_eco_script(text: &str) -> Result<Vec<ScriptEdit>, ScriptError> {
    let mut edits = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        match parse_eco_script_line(idx + 1, raw)? {
            ScriptLine::Empty => {}
            ScriptLine::Quit => break,
            ScriptLine::Edits(line_edits) => edits.extend(line_edits),
        }
    }
    Ok(edits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_directive() {
        let script = "\
# a comment line
setcap fast x 2e-15
setres fast x 120 # trailing comment
setline slow y 90 3e-14
graft slow y tap1 50 1e-14
prune slow tap1
";
        let edits = parse_eco_script(script).unwrap();
        assert_eq!(edits.len(), 5);
        assert_eq!(edits[0].line, 2);
        assert_eq!(edits[0].edit.net, "fast");
        assert!(matches!(edits[4].edit.kind, EcoEditKind::Prune { .. }));
    }

    #[test]
    fn errors_carry_location_and_token() {
        let err = parse_eco_script("setcap fast x 1e-15; resize fast x 2\n").unwrap_err();
        assert!(
            err.message().contains("line 1, edit 2") && err.message().contains("`resize`"),
            "{err}"
        );
        let err = parse_eco_script("setcap fast x nope\n").unwrap_err();
        assert!(err.message().contains("`nope`"), "{err}");
    }

    #[test]
    fn quit_handling() {
        assert!(matches!(
            parse_eco_script_line(3, "  quit  # done"),
            Ok(ScriptLine::Quit)
        ));
        assert!(parse_eco_script("setcap fast x 1e-15; quit\n").is_err());
        assert!(parse_eco_script("quit now\n").is_err());
    }
}
