//! Contiguous SoA net arena: every net's augmented stage arrays packed
//! into one allocation, with one value lane per PVT corner.
//!
//! [`Design::analyze_with_jobs`](crate::Design::analyze_with_jobs) used to
//! rebuild four per-net `Vec`s (parent / branch R / branch C / node cap)
//! inside every worker on every call — at `10^6` nets that is four million
//! short-lived allocations per analysis and a heap walk that defeats the
//! cache.  [`NetArena`] materialises the same arrays **once** per design
//! revision, each net occupying one contiguous range of four structure-of-
//! arrays columns, so the sharded stage sweep streams through memory
//! linearly and reuses one per-worker [`BatchScratch`] for every net it
//! visits.
//!
//! The arrays of each net are byte-for-byte the arrays
//! [`crate::stage::augmented_batch`] would build (same splice order, same
//! validation, same floats), and the sweep itself runs through
//! [`BatchScratch::sweep`], which is pinned bit-identical to
//! [`rctree_core::batch::BatchTimes::of_preorder`] — so arena-backed
//! analysis reproduces the historical per-net evaluation exactly.
//!
//! ## Corner lanes
//!
//! When the design carries a multi-corner [`CornerSet`], the three value
//! columns grow one **lane per corner**: lane `k` of net `i` occupies
//! columns `[k·lane_len + start, k·lane_len + end)` for the same
//! `[start, end)` the net owns in lane 0, so the (shared) `parent` column
//! and sink positions address every lane alike.  Lane 0 is the unscaled
//! deck — byte-identical to the single-corner arena.  Lane `k ≥ 1` scales
//! every element **individually** from its lane-0 value (one IEEE-754
//! rounding per element, never a scaled sum): wire branch R/C and
//! interconnect node caps by the net's wire scales (per-net override or the
//! corner's globals), the driver resistance by the corner's global
//! `r_scale`, each spliced sink load by the global `c_scale` — exactly the
//! arrays `augmented_batch` would build for a fully *materialised* scaled
//! design, which is what the corner-equivalence suite pins.
//!
//! ## Alignment
//!
//! Each net's range starts on a 64-byte boundary of the `f64` columns
//! (ranges are padded to a multiple of 8 entries with zero filler rows), so
//! adjacent workers of the sharded sweep never false-share a cache line.
//! Padding changes offsets only — every slice a sweep sees is unchanged.
//!
//! Per-net validation failures are **deferred**, not raised at build time:
//! each net carries an optional error slot that the sweep surfaces when
//! (and only when) that net is evaluated, preserving the historical
//! first-failing-net-in-net-order error semantics of the parallel map.

use rctree_core::batch::{BatchScratch, LaneArrays, LaneScratch};
use rctree_core::corner::CornerSet;
use rctree_core::units::Seconds;

use crate::error::{Result, StaError};
use crate::graph::{Net, NetAug};
use crate::stage::{DRIVER_OUTPUT_NODE, STAGE_INPUT_NODE};

/// Entries per cache line for the `f64` value columns.
const LANE_ALIGN: usize = 8;

/// The packed augmented-stage arrays of every net of a design.
///
/// Built lazily (and cached on the design core) from the committed nets and
/// their pre-resolved [`NetAug`] side table; any mutation of the nets
/// invalidates the cache.
#[derive(Debug)]
pub(crate) struct NetArena {
    /// Parent index of every augmented node, **local** to its net's range
    /// (each range is a standalone pre-order array).  Shared by all lanes.
    parent: Vec<u32>,
    /// Branch resistance feeding every augmented node, `lanes` lanes of
    /// `lane_len` entries each.
    branch_r: Vec<f64>,
    /// Distributed branch capacitance of every augmented node (per lane).
    branch_c: Vec<f64>,
    /// Lumped node capacitance (interconnect + spliced sink loads, per
    /// lane).
    node_cap: Vec<f64>,
    /// Per net: `[start, end)` into lane 0 of the value columns (add
    /// `k * lane_len` for lane `k`).  Empty for sink-less nets (which the
    /// stage evaluation skips) and for nets whose build failed.
    node_range: Vec<(u32, u32)>,
    /// Per-net sink positions (local pre-order indices), concatenated.
    sink_pos: Vec<u32>,
    /// Per net: `[start, end)` into `sink_pos`.
    sink_range: Vec<(u32, u32)>,
    /// Per net: the validation error `augmented_batch` would have raised,
    /// surfaced when the net is swept.
    errors: Vec<Option<StaError>>,
    /// Entries per value lane (lane 0's column length, padding included).
    lane_len: usize,
    /// Number of corner lanes (1 without a multi-corner set).
    lanes: usize,
}

impl NetArena {
    /// Packs every net's augmented arrays; with a multi-corner set, also
    /// builds one scaled value lane per extra corner.  Infallible: per-net
    /// validation failures are recorded in the net's error slot instead.
    pub(crate) fn build(nets: &[Net], aug: &[NetAug], corners: Option<&CornerSet>) -> NetArena {
        let total_nodes: usize = nets
            .iter()
            .zip(aug)
            .filter(|(_, a)| !a.loads.is_empty())
            .map(|(n, _)| n.interconnect.node_count() + 1 + LANE_ALIGN)
            .sum();
        let total_sinks: usize = aug.iter().map(|a| a.loads.len()).sum();
        let k_count = corners.map_or(1, CornerSet::len);
        let mut arena = NetArena {
            parent: Vec::with_capacity(total_nodes),
            branch_r: Vec::with_capacity(total_nodes),
            branch_c: Vec::with_capacity(total_nodes),
            node_cap: Vec::with_capacity(total_nodes),
            node_range: Vec::with_capacity(nets.len()),
            sink_pos: Vec::with_capacity(total_sinks),
            sink_range: Vec::with_capacity(nets.len()),
            errors: Vec::with_capacity(nets.len()),
            lane_len: 0,
            lanes: 1,
        };
        // Lane-building side tables, tracked only for multi-corner decks:
        // per-column interconnect capacitance *before* sink splicing, and
        // per-sink unscaled load values.
        let mut base_cap: Vec<f64> = Vec::new();
        let mut sink_load: Vec<f64> = Vec::new();
        let track = k_count > 1;
        // Raw node id -> local augmented pre-order position, reused across
        // nets (cleared and resized per net).
        let mut pos: Vec<u32> = Vec::new();
        for (net, net_aug) in nets.iter().zip(aug) {
            // Align every net's range to a cache line of the f64 columns.
            while !arena.parent.len().is_multiple_of(LANE_ALIGN) {
                arena.parent.push(0);
                arena.branch_r.push(0.0);
                arena.branch_c.push(0.0);
                arena.node_cap.push(0.0);
                if track {
                    base_cap.push(0.0);
                }
            }
            let start = arena.parent.len();
            let sink_start = arena.sink_pos.len();
            let side = if track {
                Some((&mut base_cap, &mut sink_load))
            } else {
                None
            };
            match arena.append_net(net, net_aug, &mut pos, side) {
                Ok(()) => arena.errors.push(None),
                Err(e) => {
                    // Roll the partial append back so the ranges of later
                    // nets stay consistent; the error replays at sweep time.
                    arena.parent.truncate(start);
                    arena.branch_r.truncate(start);
                    arena.branch_c.truncate(start);
                    arena.node_cap.truncate(start);
                    arena.sink_pos.truncate(sink_start);
                    if track {
                        base_cap.truncate(start);
                        sink_load.truncate(sink_start);
                    }
                    arena.errors.push(Some(e));
                }
            }
            arena
                .node_range
                .push((start as u32, arena.parent.len() as u32));
            arena
                .sink_range
                .push((sink_start as u32, arena.sink_pos.len() as u32));
        }
        arena.lane_len = arena.parent.len();
        if let Some(set) = corners {
            if k_count > 1 {
                arena.build_corner_lanes(nets, set, &base_cap, &sink_load);
            }
        }
        arena
    }

    /// Appends one extra value lane per non-nominal corner, streaming each
    /// element's scaled value from lane 0 (no tree walks): one
    /// multiplication per element, matching a materialised scaled design
    /// bit-for-bit.
    // The loops below read lane 0 and write lane `k` of the *same*
    // columns at different offsets; iterator zips cannot express that
    // aliasing without split_at_mut gymnastics that obscure the splice
    // order the bit-identity contract depends on.
    #[allow(clippy::needless_range_loop)]
    fn build_corner_lanes(
        &mut self,
        nets: &[Net],
        set: &CornerSet,
        base_cap: &[f64],
        sink_load: &[f64],
    ) {
        let k_count = set.len();
        let lane_len = self.lane_len;
        self.lanes = k_count;
        self.branch_r.resize(k_count * lane_len, 0.0);
        self.branch_c.resize(k_count * lane_len, 0.0);
        self.node_cap.resize(k_count * lane_len, 0.0);
        for k in 1..k_count {
            let off = k * lane_len;
            let corner = set.corner(k);
            let (rs_global, cs_global) = (corner.r_scale, corner.c_scale);
            for (i, net) in nets.iter().enumerate() {
                let (start, end) = self.node_range[i];
                let (start, end) = (start as usize, end as usize);
                if start == end {
                    continue;
                }
                let (rs, cs) = set.wire_scales(&net.name, k);
                // Local node 0 (the stage input) stays all-zero; local node
                // 1 carries the driver resistance (global corner scale) and
                // the interconnect input's cap (wire scale).
                self.branch_r[off + start + 1] = self.branch_r[start + 1] * rs_global;
                self.node_cap[off + start + 1] = base_cap[start + 1] * cs;
                for j in start + 2..end {
                    self.branch_r[off + j] = self.branch_r[j] * rs;
                    self.branch_c[off + j] = self.branch_c[j] * cs;
                    self.node_cap[off + j] = base_cap[j] * cs;
                }
                // Splice the sink loads (global corner scale), in the same
                // order lane 0 spliced them.
                let (ks, ke) = self.sink_range[i];
                for t in ks as usize..ke as usize {
                    let p = self.sink_pos[t] as usize;
                    self.node_cap[off + start + p] += sink_load[t] * cs_global;
                }
            }
        }
    }

    /// Appends one net's augmented arrays, replicating
    /// [`crate::stage::augmented_batch`]'s splice and validation order
    /// exactly (driver check, pre-order walk with reserved-name checks,
    /// then per-sink node/load checks) so deferred errors match the
    /// historical per-call evaluation.  When `side` is given, also records
    /// the pre-splice interconnect caps and raw sink loads for corner-lane
    /// construction.
    fn append_net(
        &mut self,
        net: &Net,
        aug: &NetAug,
        pos: &mut Vec<u32>,
        side: Option<(&mut Vec<f64>, &mut Vec<f64>)>,
    ) -> Result<()> {
        // A sink-less net has nothing to time — `stage_delay_bounds`
        // short-circuits before any validation, and so does the sweep.
        if aug.loads.is_empty() {
            return Ok(());
        }
        let check = |what: &'static str, value: f64| -> Result<()> {
            if !value.is_finite() || value < 0.0 {
                Err(rctree_core::CoreError::InvalidValue { what, value }.into())
            } else {
                Ok(())
            }
        };
        check("resistance", aug.driver_r.value())?;
        let tree = &net.interconnect;
        let base = self.parent.len();
        pos.clear();
        pos.resize(tree.node_count(), 0);

        // Local node 0: the stage input (no element, no capacitance), and
        // node 1: the driver's output, carrying the driver resistance and
        // the interconnect input's lumped capacitance.
        self.parent.push(0);
        self.branch_r.push(0.0);
        self.branch_c.push(0.0);
        self.node_cap.push(0.0);
        self.parent.push(0);
        self.branch_r.push(aug.driver_r.value());
        self.branch_c.push(0.0);
        self.node_cap.push(tree.capacitance(tree.input())?.value());
        pos[tree.input().index()] = 1;

        for id in tree.preorder() {
            if id == tree.input() {
                continue;
            }
            let name = tree.name(id)?;
            if name == DRIVER_OUTPUT_NODE || name == STAGE_INPUT_NODE {
                return Err(rctree_core::CoreError::DuplicateName {
                    name: name.to_string(),
                }
                .into());
            }
            let p = tree.parent(id)?.expect("non-input node");
            let branch = tree.branch(id)?.expect("non-input node");
            pos[id.index()] = (self.parent.len() - base) as u32;
            self.parent.push(pos[p.index()]);
            self.branch_r.push(branch.resistance().value());
            self.branch_c.push(branch.capacitance().value());
            self.node_cap.push(tree.capacitance(id)?.value());
        }

        if let Some((base_cap, sink_load)) = side {
            base_cap.extend_from_slice(&self.node_cap[base..]);
            for &(node, load) in &aug.loads {
                let _ = tree.name(node)?;
                check("capacitance", load.value())?;
                self.node_cap[base + pos[node.index()] as usize] += load.value();
                self.sink_pos.push(pos[node.index()]);
                sink_load.push(load.value());
            }
        } else {
            for &(node, load) in &aug.loads {
                let _ = tree.name(node)?;
                check("capacitance", load.value())?;
                self.node_cap[base + pos[node.index()] as usize] += load.value();
                self.sink_pos.push(pos[node.index()]);
            }
        }
        Ok(())
    }

    /// Number of corner lanes (1 when built without a multi-corner set).
    #[cfg(test)]
    pub(crate) fn lane_count(&self) -> usize {
        self.lanes
    }

    /// Heap bytes of the packed columns as `(base, corner_lanes)`: the
    /// lane-0 arena (parent, three value columns, ranges, sinks) and the
    /// extra corner lanes.
    pub(crate) fn bytes(&self) -> (usize, usize) {
        let f64s = std::mem::size_of::<f64>();
        let base = self.parent.len() * std::mem::size_of::<u32>()
            + 3 * self.lane_len * f64s
            + (self.node_range.len() + self.sink_range.len()) * std::mem::size_of::<(u32, u32)>()
            + self.sink_pos.len() * std::mem::size_of::<u32>();
        let corner = 3 * (self.lanes - 1) * self.lane_len * f64s;
        (base, corner)
    }

    /// Number of nets the arena covers.
    #[cfg(test)]
    pub(crate) fn net_count(&self) -> usize {
        self.node_range.len()
    }

    /// Total packed augmented nodes across every net (padding included).
    #[cfg(test)]
    pub(crate) fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// Sweeps one net in place: runs the batched pre-order kernel over the
    /// net's lane-0 arena range through the caller's reusable scratch and
    /// returns the `(lower, upper)` delay window of every sink, in sink
    /// order — bit-identical to `stage_delay_bounds` on the same net.
    pub(crate) fn sweep_net(
        &self,
        i: usize,
        threshold: f64,
        scratch: &mut BatchScratch,
    ) -> Result<Vec<(Seconds, Seconds)>> {
        if let Some(e) = &self.errors[i] {
            return Err(e.clone());
        }
        let (start, end) = self.node_range[i];
        let (start, end) = (start as usize, end as usize);
        if start == end {
            return Ok(Vec::new());
        }
        let view = scratch.sweep(
            &self.parent[start..end],
            &self.branch_r[start..end],
            &self.branch_c[start..end],
            &self.node_cap[start..end],
        )?;
        let (ks, ke) = self.sink_range[i];
        let mut out = Vec::with_capacity((ke - ks) as usize);
        for &p in &self.sink_pos[ks as usize..ke as usize] {
            let times = view.times_at(p as usize)?;
            let bounds = times.delay_bounds(threshold)?;
            out.push((bounds.lower, bounds.upper));
        }
        Ok(out)
    }

    /// Sweeps **all corner lanes** of one net in a single traversal and
    /// returns, per lane, the `(lower, upper)` delay window of every sink
    /// in sink order.  Lane 0 is bit-identical to [`NetArena::sweep_net`];
    /// lane `k` is bit-identical to `sweep_net` on an arena built from the
    /// corner-`k`-materialised design.
    pub(crate) fn sweep_net_lanes(
        &self,
        i: usize,
        threshold: f64,
        scratch: &mut LaneScratch,
    ) -> Result<Vec<Vec<(Seconds, Seconds)>>> {
        if let Some(e) = &self.errors[i] {
            return Err(e.clone());
        }
        let (start, end) = self.node_range[i];
        let (start, end) = (start as usize, end as usize);
        if start == end {
            return Ok(vec![Vec::new(); self.lanes]);
        }
        let lanes: Vec<LaneArrays> = (0..self.lanes)
            .map(|k| {
                let off = k * self.lane_len;
                (
                    &self.branch_r[off + start..off + end],
                    &self.branch_c[off + start..off + end],
                    &self.node_cap[off + start..off + end],
                )
            })
            .collect();
        let view = scratch.sweep_lanes(&self.parent[start..end], &lanes)?;
        let (ks, ke) = self.sink_range[i];
        let sinks = &self.sink_pos[ks as usize..ke as usize];
        let mut out = Vec::with_capacity(self.lanes);
        for k in 0..self.lanes {
            let mut lane_out = Vec::with_capacity(sinks.len());
            for &p in sinks {
                let times = view.times_at(k, p as usize)?;
                let bounds = times.delay_bounds(threshold)?;
                lane_out.push((bounds.lower, bounds.upper));
            }
            out.push(lane_out);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Driver, Load, Net, NetAug, Sink};
    use crate::stage::{stage_delay_bounds, stage_delay_bounds_scaled, StageScales};
    use rctree_core::builder::RcTreeBuilder;
    use rctree_core::units::{Farads, Ohms};

    /// A two-sink branching net with slightly irregular element values so
    /// that scaled lanes cannot accidentally coincide with lane 0.
    fn fixture_net(name: &str, skew: f64) -> (Net, NetAug) {
        let mut b = RcTreeBuilder::new();
        let trunk = b
            .add_line(
                b.input(),
                "trunk",
                Ohms::new(120.0 * skew),
                Farads::from_femto(30.0),
            )
            .unwrap();
        let s1 = b
            .add_line(
                trunk,
                "s1",
                Ohms::new(80.0),
                Farads::from_femto(18.0 * skew),
            )
            .unwrap();
        let s2 = b
            .add_line(
                trunk,
                "s2",
                Ohms::new(210.0 * skew),
                Farads::from_femto(9.0),
            )
            .unwrap();
        b.add_capacitance(s2, Farads::from_femto(4.0)).unwrap();
        b.mark_output(s1).unwrap();
        b.mark_output(s2).unwrap();
        let tree = b.build().unwrap();
        let s1_id = tree.node_by_name("s1").unwrap();
        let s2_id = tree.node_by_name("s2").unwrap();
        let net = Net {
            name: name.to_string(),
            driver: Driver::PrimaryInput,
            interconnect: tree,
            sinks: vec![
                Sink {
                    node: "s1".to_string(),
                    load: Load::PrimaryOutput(format!("{name}_o1")),
                },
                Sink {
                    node: "s2".to_string(),
                    load: Load::PrimaryOutput(format!("{name}_o2")),
                },
            ],
        };
        let aug = NetAug {
            driver_r: Ohms::new(1000.0 * skew),
            loads: vec![
                (s1_id, Farads::from_femto(13.0)),
                (s2_id, Farads::from_femto(52.0 * skew)),
            ],
        };
        (net, aug)
    }

    /// A three-corner set with a wire override on `n1` at corner 2.
    fn corners() -> CornerSet {
        let mut set = CornerSet::nominal();
        set.push("fast", 0.8, 0.85, 0.9).unwrap();
        set.push("slow", 1.3, 1.2, 1.15).unwrap();
        set.override_net("n1", 2, 1.45, 1.05).unwrap();
        set
    }

    fn fixtures() -> (Vec<Net>, Vec<NetAug>) {
        let (n0, a0) = fixture_net("n0", 1.0);
        let (n1, a1) = fixture_net("n1", 1.7);
        (vec![n0, n1], vec![a0, a1])
    }

    #[test]
    fn nominal_arena_has_one_lane_and_no_corner_bytes() {
        let (nets, aug) = fixtures();
        let arena = NetArena::build(&nets, &aug, None);
        assert_eq!(arena.lane_count(), 1);
        assert_eq!(arena.bytes().1, 0);
        assert!(arena.bytes().0 > 0);
    }

    #[test]
    fn nominal_only_set_builds_a_single_lane() {
        let (nets, aug) = fixtures();
        let arena = NetArena::build(&nets, &aug, Some(&CornerSet::nominal()));
        assert_eq!(arena.lane_count(), 1);
        assert_eq!(arena.bytes().1, 0);
    }

    #[test]
    fn net_ranges_start_on_cache_line_boundaries() {
        let (nets, aug) = fixtures();
        let arena = NetArena::build(&nets, &aug, Some(&corners()));
        assert_eq!(arena.net_count(), 2);
        for &(start, _) in &arena.node_range {
            assert!((start as usize).is_multiple_of(LANE_ALIGN));
        }
    }

    #[test]
    fn corner_bytes_cover_three_columns_per_extra_lane() {
        let (nets, aug) = fixtures();
        let arena = NetArena::build(&nets, &aug, Some(&corners()));
        assert_eq!(arena.lane_count(), 3);
        let (base, corner) = arena.bytes();
        assert!(base > 0);
        assert_eq!(corner, 3 * 2 * arena.lane_len * std::mem::size_of::<f64>());
    }

    #[test]
    fn lane_zero_is_bit_identical_to_the_single_lane_sweep() {
        let (nets, aug) = fixtures();
        let multi = NetArena::build(&nets, &aug, Some(&corners()));
        let single = NetArena::build(&nets, &aug, None);
        let mut lane_scratch = LaneScratch::new();
        let mut scratch = BatchScratch::new();
        for i in 0..nets.len() {
            let lanes = multi.sweep_net_lanes(i, 0.5, &mut lane_scratch).unwrap();
            let solo = single.sweep_net(i, 0.5, &mut scratch).unwrap();
            assert_eq!(lanes.len(), 3);
            for (a, b) in lanes[0].iter().zip(&solo) {
                assert_eq!(a.0.value().to_bits(), b.0.value().to_bits());
                assert_eq!(a.1.value().to_bits(), b.1.value().to_bits());
            }
            // And lane 0 matches the historical per-net stage evaluation.
            let stage =
                stage_delay_bounds(aug[i].driver_r, &nets[i].interconnect, &aug[i].loads, 0.5)
                    .unwrap();
            for (a, b) in lanes[0].iter().zip(&stage) {
                assert_eq!(a.0.value().to_bits(), b.lower.value().to_bits());
                assert_eq!(a.1.value().to_bits(), b.upper.value().to_bits());
            }
        }
    }

    #[test]
    fn corner_lanes_match_the_scaled_stage_evaluation_bit_for_bit() {
        let (nets, aug) = fixtures();
        let set = corners();
        let arena = NetArena::build(&nets, &aug, Some(&set));
        let mut scratch = LaneScratch::new();
        for (i, net) in nets.iter().enumerate() {
            let lanes = arena.sweep_net_lanes(i, 0.5, &mut scratch).unwrap();
            for (k, lane) in lanes.iter().enumerate().skip(1) {
                let corner = set.corner(k);
                let (wire_r, wire_c) = set.wire_scales(&net.name, k);
                let scales = StageScales {
                    wire_r,
                    wire_c,
                    driver_r: corner.r_scale,
                    load_c: corner.c_scale,
                };
                let oracle = stage_delay_bounds_scaled(
                    aug[i].driver_r,
                    &net.interconnect,
                    &aug[i].loads,
                    0.5,
                    scales,
                )
                .unwrap();
                assert_eq!(lane.len(), oracle.len());
                for (a, b) in lane.iter().zip(&oracle) {
                    assert_eq!(a.0.value().to_bits(), b.lower.value().to_bits());
                    assert_eq!(a.1.value().to_bits(), b.upper.value().to_bits());
                }
            }
        }
    }

    #[test]
    fn the_override_lane_differs_from_the_global_scale_lane() {
        // `n1` carries a wire override at corner 2; `n0` does not.  The
        // override must change n1's slow-corner windows but leave n0's
        // matching the global slow scales.
        let (nets, aug) = fixtures();
        let set = corners();
        let mut no_override = CornerSet::nominal();
        no_override.push("fast", 0.8, 0.85, 0.9).unwrap();
        no_override.push("slow", 1.3, 1.2, 1.15).unwrap();
        let with_ov = NetArena::build(&nets, &aug, Some(&set));
        let without = NetArena::build(&nets, &aug, Some(&no_override));
        let mut scratch = LaneScratch::new();
        let a = with_ov.sweep_net_lanes(1, 0.5, &mut scratch).unwrap();
        let b = without.sweep_net_lanes(1, 0.5, &mut scratch).unwrap();
        assert_ne!(a[2], b[2], "override should change corner-2 windows");
        let a0 = with_ov.sweep_net_lanes(0, 0.5, &mut scratch).unwrap();
        let b0 = without.sweep_net_lanes(0, 0.5, &mut scratch).unwrap();
        assert_eq!(a0[2], b0[2], "un-overridden net must match global scales");
    }

    #[test]
    fn sink_less_nets_sweep_to_empty_windows_in_every_lane() {
        let (mut nets, mut aug) = fixtures();
        aug[0].loads.clear();
        nets[0].sinks.clear();
        let arena = NetArena::build(&nets, &aug, Some(&corners()));
        let mut scratch = LaneScratch::new();
        let lanes = arena.sweep_net_lanes(0, 0.5, &mut scratch).unwrap();
        assert_eq!(lanes, vec![Vec::new(); 3]);
    }
}
