//! Contiguous SoA net arena: every net's augmented stage arrays packed
//! into one allocation.
//!
//! [`Design::analyze_with_jobs`](crate::Design::analyze_with_jobs) used to
//! rebuild four per-net `Vec`s (parent / branch R / branch C / node cap)
//! inside every worker on every call — at `10^6` nets that is four million
//! short-lived allocations per analysis and a heap walk that defeats the
//! cache.  [`NetArena`] materialises the same arrays **once** per design
//! revision, each net occupying one contiguous range of four structure-of-
//! arrays columns, so the sharded stage sweep streams through memory
//! linearly and reuses one per-worker [`BatchScratch`] for every net it
//! visits.
//!
//! The arrays of each net are byte-for-byte the arrays
//! [`crate::stage::augmented_batch`] would build (same splice order, same
//! validation, same floats), and the sweep itself runs through
//! [`BatchScratch::sweep`], which is pinned bit-identical to
//! [`rctree_core::batch::BatchTimes::of_preorder`] — so arena-backed
//! analysis reproduces the historical per-net evaluation exactly.
//!
//! Per-net validation failures are **deferred**, not raised at build time:
//! each net carries an optional error slot that the sweep surfaces when
//! (and only when) that net is evaluated, preserving the historical
//! first-failing-net-in-net-order error semantics of the parallel map.

use rctree_core::batch::BatchScratch;
use rctree_core::units::Seconds;

use crate::error::{Result, StaError};
use crate::graph::{Net, NetAug};
use crate::stage::{DRIVER_OUTPUT_NODE, STAGE_INPUT_NODE};

/// The packed augmented-stage arrays of every net of a design.
///
/// Built lazily (and cached on the design core) from the committed nets and
/// their pre-resolved [`NetAug`] side table; any mutation of the nets
/// invalidates the cache.
#[derive(Debug)]
pub(crate) struct NetArena {
    /// Parent index of every augmented node, **local** to its net's range
    /// (each range is a standalone pre-order array).
    parent: Vec<u32>,
    /// Branch resistance feeding every augmented node.
    branch_r: Vec<f64>,
    /// Distributed branch capacitance of every augmented node.
    branch_c: Vec<f64>,
    /// Lumped node capacitance (interconnect + spliced sink loads).
    node_cap: Vec<f64>,
    /// Per net: `[start, end)` into the four columns.  Empty for sink-less
    /// nets (which the stage evaluation skips) and for nets whose build
    /// failed.
    node_range: Vec<(u32, u32)>,
    /// Per-net sink positions (local pre-order indices), concatenated.
    sink_pos: Vec<u32>,
    /// Per net: `[start, end)` into `sink_pos`.
    sink_range: Vec<(u32, u32)>,
    /// Per net: the validation error `augmented_batch` would have raised,
    /// surfaced when the net is swept.
    errors: Vec<Option<StaError>>,
}

impl NetArena {
    /// Packs every net's augmented arrays.  Infallible: per-net validation
    /// failures are recorded in the net's error slot instead.
    pub(crate) fn build(nets: &[Net], aug: &[NetAug]) -> NetArena {
        let total_nodes: usize = nets
            .iter()
            .zip(aug)
            .filter(|(_, a)| !a.loads.is_empty())
            .map(|(n, _)| n.interconnect.node_count() + 1)
            .sum();
        let total_sinks: usize = aug.iter().map(|a| a.loads.len()).sum();
        let mut arena = NetArena {
            parent: Vec::with_capacity(total_nodes),
            branch_r: Vec::with_capacity(total_nodes),
            branch_c: Vec::with_capacity(total_nodes),
            node_cap: Vec::with_capacity(total_nodes),
            node_range: Vec::with_capacity(nets.len()),
            sink_pos: Vec::with_capacity(total_sinks),
            sink_range: Vec::with_capacity(nets.len()),
            errors: Vec::with_capacity(nets.len()),
        };
        // Raw node id -> local augmented pre-order position, reused across
        // nets (cleared and resized per net).
        let mut pos: Vec<u32> = Vec::new();
        for (net, net_aug) in nets.iter().zip(aug) {
            let start = arena.parent.len();
            let sink_start = arena.sink_pos.len();
            match arena.append_net(net, net_aug, &mut pos) {
                Ok(()) => arena.errors.push(None),
                Err(e) => {
                    // Roll the partial append back so the ranges of later
                    // nets stay consistent; the error replays at sweep time.
                    arena.parent.truncate(start);
                    arena.branch_r.truncate(start);
                    arena.branch_c.truncate(start);
                    arena.node_cap.truncate(start);
                    arena.sink_pos.truncate(sink_start);
                    arena.errors.push(Some(e));
                }
            }
            arena
                .node_range
                .push((start as u32, arena.parent.len() as u32));
            arena
                .sink_range
                .push((sink_start as u32, arena.sink_pos.len() as u32));
        }
        arena
    }

    /// Appends one net's augmented arrays, replicating
    /// [`crate::stage::augmented_batch`]'s splice and validation order
    /// exactly (driver check, pre-order walk with reserved-name checks,
    /// then per-sink node/load checks) so deferred errors match the
    /// historical per-call evaluation.
    fn append_net(&mut self, net: &Net, aug: &NetAug, pos: &mut Vec<u32>) -> Result<()> {
        // A sink-less net has nothing to time — `stage_delay_bounds`
        // short-circuits before any validation, and so does the sweep.
        if aug.loads.is_empty() {
            return Ok(());
        }
        let check = |what: &'static str, value: f64| -> Result<()> {
            if !value.is_finite() || value < 0.0 {
                Err(rctree_core::CoreError::InvalidValue { what, value }.into())
            } else {
                Ok(())
            }
        };
        check("resistance", aug.driver_r.value())?;
        let tree = &net.interconnect;
        let base = self.parent.len();
        pos.clear();
        pos.resize(tree.node_count(), 0);

        // Local node 0: the stage input (no element, no capacitance), and
        // node 1: the driver's output, carrying the driver resistance and
        // the interconnect input's lumped capacitance.
        self.parent.push(0);
        self.branch_r.push(0.0);
        self.branch_c.push(0.0);
        self.node_cap.push(0.0);
        self.parent.push(0);
        self.branch_r.push(aug.driver_r.value());
        self.branch_c.push(0.0);
        self.node_cap.push(tree.capacitance(tree.input())?.value());
        pos[tree.input().index()] = 1;

        for id in tree.preorder() {
            if id == tree.input() {
                continue;
            }
            let name = tree.name(id)?;
            if name == DRIVER_OUTPUT_NODE || name == STAGE_INPUT_NODE {
                return Err(rctree_core::CoreError::DuplicateName {
                    name: name.to_string(),
                }
                .into());
            }
            let p = tree.parent(id)?.expect("non-input node");
            let branch = tree.branch(id)?.expect("non-input node");
            pos[id.index()] = (self.parent.len() - base) as u32;
            self.parent.push(pos[p.index()]);
            self.branch_r.push(branch.resistance().value());
            self.branch_c.push(branch.capacitance().value());
            self.node_cap.push(tree.capacitance(id)?.value());
        }

        for &(node, load) in &aug.loads {
            let _ = tree.name(node)?;
            check("capacitance", load.value())?;
            self.node_cap[base + pos[node.index()] as usize] += load.value();
            self.sink_pos.push(pos[node.index()]);
        }
        Ok(())
    }

    /// Number of nets the arena covers.
    #[cfg(test)]
    pub(crate) fn net_count(&self) -> usize {
        self.node_range.len()
    }

    /// Total packed augmented nodes across every net.
    #[cfg(test)]
    pub(crate) fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// Sweeps one net in place: runs the batched pre-order kernel over the
    /// net's arena range through the caller's reusable scratch and returns
    /// the `(lower, upper)` delay window of every sink, in sink order —
    /// bit-identical to `stage_delay_bounds` on the same net.
    pub(crate) fn sweep_net(
        &self,
        i: usize,
        threshold: f64,
        scratch: &mut BatchScratch,
    ) -> Result<Vec<(Seconds, Seconds)>> {
        if let Some(e) = &self.errors[i] {
            return Err(e.clone());
        }
        let (start, end) = self.node_range[i];
        let (start, end) = (start as usize, end as usize);
        if start == end {
            return Ok(Vec::new());
        }
        let view = scratch.sweep(
            &self.parent[start..end],
            &self.branch_r[start..end],
            &self.branch_c[start..end],
            &self.node_cap[start..end],
        )?;
        let (ks, ke) = self.sink_range[i];
        let mut out = Vec::with_capacity((ke - ks) as usize);
        for &p in &self.sink_pos[ks as usize..ke as usize] {
            let times = view.times_at(p as usize)?;
            let bounds = times.delay_bounds(threshold)?;
            out.push((bounds.lower, bounds.upper));
        }
        Ok(out)
    }
}
