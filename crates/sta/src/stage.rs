//! Single-stage timing: a driving cell, its interconnect RC tree, and the
//! receiving loads.
//!
//! This is the unit of computation of every Elmore-based static timing
//! analyser: the driver's switch resistance is prepended to the extracted
//! interconnect tree, every sink node is loaded with the input capacitance
//! of the gate it drives, and the Penfield–Rubinstein machinery then yields
//! the Elmore delay plus guaranteed lower/upper delay bounds per sink.

use rctree_core::algebra::SymbolicTimes;
use rctree_core::batch::{BatchTimes, SymbolicScratch};
use rctree_core::bounds::{symbolic_delay_bounds, DelayBounds, SymbolicDelayBounds};
use rctree_core::builder::RcTreeBuilder;
use rctree_core::element::Branch;
use rctree_core::moments::CharacteristicTimes;
use rctree_core::tree::{NodeId, RcTree};
use rctree_core::units::{Farads, Ohms, Seconds};

use crate::error::Result;

/// Name given to the driver's output node in the augmented stage tree.
pub const DRIVER_OUTPUT_NODE: &str = "__driver_out";

/// Timing of one sink of a stage.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkTiming {
    /// The sink node in the *original* interconnect tree.
    pub node: NodeId,
    /// Node name in the original tree.
    pub name: String,
    /// Characteristic times of this sink in the augmented (driver + loads)
    /// tree.
    pub times: CharacteristicTimes,
    /// Elmore delay (`T_De`) of this sink.
    pub elmore: Seconds,
    /// Penfield–Rubinstein delay bounds at the analysis threshold.
    pub bounds: DelayBounds,
}

/// Timing of a complete stage (driver + interconnect + loads).
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// The analysis threshold (fraction of the final swing).
    pub threshold: f64,
    /// Per-sink results, in the order the sinks were supplied.
    pub sinks: Vec<SinkTiming>,
}

impl StageTiming {
    /// The sink with the largest delay upper bound.
    pub fn critical_sink(&self) -> Option<&SinkTiming> {
        self.sinks
            .iter()
            .max_by(|a, b| a.bounds.upper.value().total_cmp(&b.bounds.upper.value()))
    }

    /// Looks up the timing of a specific sink node (of the original tree).
    pub fn sink(&self, node: NodeId) -> Option<&SinkTiming> {
        self.sinks.iter().find(|s| s.node == node)
    }
}

/// Computes the timing of one stage.
///
/// `driver_resistance` is the effective switch resistance of the driving
/// cell; `interconnect` is the extracted RC tree whose input node is the
/// driver's output pin; `sink_loads` lists `(sink node, added load
/// capacitance)` pairs — typically the input capacitances of the driven
/// gates; `threshold` is the switching threshold as a fraction of the swing.
///
/// All sinks of the stage are evaluated from one
/// [`BatchTimes`] sweep of the augmented tree, so a net with `m` fan-outs
/// costs `O(n + m)` instead of `m` full traversals.
///
/// # Errors
///
/// Propagates node-lookup and threshold-validation errors from the core
/// crate.
pub fn analyze_stage(
    driver_resistance: Ohms,
    interconnect: &RcTree,
    sink_loads: &[(NodeId, Farads)],
    threshold: f64,
) -> Result<StageTiming> {
    // A sink-less net has nothing to time; skip the sweep so that e.g. a
    // capacitance-free placeholder interconnect stays analysable.
    if sink_loads.is_empty() {
        return Ok(StageTiming {
            threshold,
            sinks: Vec::new(),
        });
    }
    let (augmented, node_map) = prepend_driver(driver_resistance, interconnect, sink_loads)?;
    let batch = BatchTimes::of(&augmented)?;

    let mut sinks = Vec::with_capacity(sink_loads.len());
    for &(node, _) in sink_loads {
        let mapped = node_map[node.index()];
        let times = batch.times(mapped)?;
        let bounds = times.delay_bounds(threshold)?;
        sinks.push(SinkTiming {
            node,
            name: interconnect.name(node)?.to_string(),
            elmore: times.elmore_delay(),
            times,
            bounds,
        });
    }
    Ok(StageTiming { threshold, sinks })
}

/// Name given to the augmented stage tree's input node.
pub const STAGE_INPUT_NODE: &str = "__stage_input";

/// Per-sink Penfield–Rubinstein delay bounds of one stage, computed by a
/// **flat pre-order sweep** over the augmented tree's arrays instead of
/// constructing the augmented tree through the builder.
///
/// This is the hot kernel behind [`crate::Design`]'s per-net evaluation and
/// the incremental ECO path: the driver resistor and the sink load
/// capacitances are spliced around the interconnect as plain array entries
/// (`O(n)` with no hashing and no per-node allocation), and the sweep runs
/// through [`BatchTimes::of_preorder`].  The result is **bit-identical** to
/// [`analyze_stage`] — `prepend_driver` inserts the augmented nodes in
/// pre-order, so both paths accumulate the same floats in the same order —
/// which `flat_stage_is_bit_identical_to_the_builder_stage` pins.
///
/// Returns one [`DelayBounds`] per entry of `sink_loads`, in order.
///
/// # Errors
///
/// As for [`analyze_stage`], including
/// [`rctree_core::CoreError::DuplicateName`] when the interconnect already
/// uses one of the reserved augmented-node names (the builder path fails
/// the same way).
pub fn stage_delay_bounds(
    driver_resistance: Ohms,
    interconnect: &RcTree,
    sink_loads: &[(NodeId, Farads)],
    threshold: f64,
) -> Result<Vec<DelayBounds>> {
    if sink_loads.is_empty() {
        return Ok(Vec::new());
    }
    let (batch, pos) = augmented_batch(driver_resistance, interconnect, sink_loads)?;
    let mut bounds = Vec::with_capacity(sink_loads.len());
    for &(node, _) in sink_loads {
        let times = batch.times_at(pos[node.index()] as usize)?;
        bounds.push(times.delay_bounds(threshold)?);
    }
    Ok(bounds)
}

/// [`stage_delay_bounds`] evaluated at a PVT corner: the stage's elements
/// are multiplied by the corner's [`StageScales`] factors before the sweep
/// (one rounding per element, see [`augmented_batch_scaled`]).  This is
/// the engine-side kernel behind corner-aware ECO re-timing and per-corner
/// snapshot windows; its results are bit-identical to the arena's corner
/// lane sweep and to a fully materialized scaled design.
///
/// # Errors
///
/// As for [`stage_delay_bounds`].
pub(crate) fn stage_delay_bounds_scaled(
    driver_resistance: Ohms,
    interconnect: &RcTree,
    sink_loads: &[(NodeId, Farads)],
    threshold: f64,
    scales: StageScales,
) -> Result<Vec<DelayBounds>> {
    if sink_loads.is_empty() {
        return Ok(Vec::new());
    }
    let (batch, pos) = augmented_batch_scaled(driver_resistance, interconnect, sink_loads, scales)?;
    let mut bounds = Vec::with_capacity(sink_loads.len());
    for &(node, _) in sink_loads {
        let times = batch.times_at(pos[node.index()] as usize)?;
        bounds.push(times.delay_bounds(threshold)?);
    }
    Ok(bounds)
}

/// The **symbolic sibling** of [`stage_delay_bounds`]: per-sink delay
/// bounds as polynomials in the uniform `(r, c)` scale factors, from one
/// [`SymbolicScratch`] sweep of the same augmented arrays the scalar path
/// splices.
///
/// The arrays carry the nominal element values; the `Poly2` algebra's
/// injectors attach the symbolic scale to each element, so the driver
/// resistance rides the `r` axis and the sink loads ride the `c` axis —
/// exactly the quantities a corner's `r_scale`/`c_scale` multiply.  For any
/// `r, c > 0`, `result[k].eval(r, c)` agrees with
/// [`stage_delay_bounds_scaled`] at uniform [`StageScales`]
/// `{wire_r: r, wire_c: c, driver_r: r, load_c: c}` (to rounding), and
/// `eval(1, 1)` reproduces [`stage_delay_bounds`] **bit-for-bit** (the
/// shared generic kernel applies the identical scalar operations cellwise).
///
/// Returns one [`SymbolicDelayBounds`] per entry of `sink_loads`, in order.
///
/// # Errors
///
/// As for [`stage_delay_bounds`].
pub fn stage_symbolic_bounds(
    driver_resistance: Ohms,
    interconnect: &RcTree,
    sink_loads: &[(NodeId, Farads)],
    threshold: f64,
) -> Result<Vec<SymbolicDelayBounds>> {
    if sink_loads.is_empty() {
        return Ok(Vec::new());
    }
    let (arrays, pos) = augmented_arrays(
        driver_resistance,
        interconnect,
        sink_loads,
        StageScales::NOMINAL,
    )?;
    let mut scratch = SymbolicScratch::new();
    let view = scratch.sweep(
        &arrays.parent,
        &arrays.branch_r,
        &arrays.branch_c,
        &arrays.node_cap,
    )?;
    let mut bounds = Vec::with_capacity(sink_loads.len());
    for &(node, _) in sink_loads {
        let times = view.times_at(pos[node.index()] as usize)?;
        bounds.push(symbolic_delay_bounds(&times, threshold)?);
    }
    Ok(bounds)
}

/// Symbolic characteristic times at an arbitrary node of a stage's
/// interconnect — the symbolic sibling of [`stage_node_times`], behind
/// per-node sensitivity queries (`QUERY <net> <node> --sens` in
/// `rctree-serve`).
///
/// Like [`stage_node_times`], an empty `sink_loads` slice still runs the
/// sweep.
///
/// # Errors
///
/// As for [`stage_node_times`].
pub fn stage_node_symbolic_times(
    driver_resistance: Ohms,
    interconnect: &RcTree,
    sink_loads: &[(NodeId, Farads)],
    node: NodeId,
) -> Result<SymbolicTimes> {
    // Validate the queried node against the tree before indexing `pos`.
    let _ = interconnect.name(node)?;
    let (arrays, pos) = augmented_arrays(
        driver_resistance,
        interconnect,
        sink_loads,
        StageScales::NOMINAL,
    )?;
    let mut scratch = SymbolicScratch::new();
    let view = scratch.sweep(
        &arrays.parent,
        &arrays.branch_r,
        &arrays.branch_c,
        &arrays.node_cap,
    )?;
    Ok(view.times_at(pos[node.index()] as usize)?)
}

/// The materialized symbolic sweep of a whole stage: the per-augmented-node
/// [`SymbolicTimes`] table plus the raw-node → augmented-position map.
/// [`crate::graph::NetTiming`] caches this per snapshot view so repeated
/// node-level symbolic queries (`QUERY … --sens`) are `O(1)` lookups after
/// the first — the per-net coefficient table the snapshots carry.
///
/// # Errors
///
/// As for [`stage_node_symbolic_times`].
pub(crate) fn stage_symbolic_sweep(
    driver_resistance: Ohms,
    interconnect: &RcTree,
    sink_loads: &[(NodeId, Farads)],
) -> Result<(Vec<SymbolicTimes>, Vec<u32>)> {
    let (arrays, pos) = augmented_arrays(
        driver_resistance,
        interconnect,
        sink_loads,
        StageScales::NOMINAL,
    )?;
    let mut scratch = SymbolicScratch::new();
    let view = scratch.sweep(
        &arrays.parent,
        &arrays.branch_r,
        &arrays.branch_c,
        &arrays.node_cap,
    )?;
    let mut times = Vec::with_capacity(view.node_count());
    for i in 0..view.node_count() {
        times.push(view.times_at(i)?);
    }
    Ok((times, pos))
}

/// Characteristic times at an arbitrary node of a stage's interconnect,
/// evaluated on the same augmented tree (driver resistance + sink loads)
/// as [`stage_delay_bounds`] — the kernel behind per-node snapshot queries
/// (`QUERY <net> <node>` in `rctree-serve`).
///
/// Unlike [`stage_delay_bounds`], an empty `sink_loads` slice still runs
/// the sweep: a sink-less net's nodes remain queryable.
///
/// # Errors
///
/// As for [`stage_delay_bounds`], plus node-lookup errors when `node` is
/// not part of `interconnect`.
pub fn stage_node_times(
    driver_resistance: Ohms,
    interconnect: &RcTree,
    sink_loads: &[(NodeId, Farads)],
    node: NodeId,
) -> Result<CharacteristicTimes> {
    // Validate the queried node against the tree before indexing `pos`.
    let _ = interconnect.name(node)?;
    let (batch, pos) = augmented_batch(driver_resistance, interconnect, sink_loads)?;
    Ok(batch.times_at(pos[node.index()] as usize)?)
}

/// Per-corner multiplicative scale factors applied when a stage is
/// evaluated at a non-nominal PVT corner.
///
/// Every element is scaled **individually before** any accumulation — the
/// corner value of each array entry is a single rounding `x * s`, which is
/// exactly the value the corner lanes of `NetArena` store.  Scaling after
/// summation (`(a + b) * s`) would round differently and break the
/// lane-equivalence bit-identity gates.
///
/// `wire_r`/`wire_c` apply to the interconnect's branch resistances and
/// (branch + node) capacitances and may carry a per-net override;
/// `driver_r` and `load_c` are the corner's global `r_scale`/`c_scale`
/// applied to the driving cell's resistance and the sink cells' input
/// capacitances (cell parameters are not overridable per net).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct StageScales {
    /// Scale on interconnect branch resistances.
    pub wire_r: f64,
    /// Scale on interconnect branch and node capacitances.
    pub wire_c: f64,
    /// Scale on the driving cell's output resistance.
    pub driver_r: f64,
    /// Scale on sink cells' input (load) capacitances.
    pub load_c: f64,
}

impl StageScales {
    /// The identity scaling: multiplying any finite `x` by `1.0` returns
    /// `x` bit-for-bit, so the nominal path through
    /// [`augmented_batch_scaled`] runs the exact float sequence of the
    /// historical unscaled kernel.
    pub const NOMINAL: StageScales = StageScales {
        wire_r: 1.0,
        wire_c: 1.0,
        driver_r: 1.0,
        load_c: 1.0,
    };
}

/// Builds the augmented stage arrays (driver resistor spliced above the
/// interconnect, sink loads added) and runs the batched sweep, returning
/// the [`BatchTimes`] plus the raw-node → augmented-pre-order-position
/// map.  Shared verbatim by [`stage_delay_bounds`] and
/// [`stage_node_times`] so both accumulate the same floats in the same
/// order.
pub(crate) fn augmented_batch(
    driver_resistance: Ohms,
    interconnect: &RcTree,
    sink_loads: &[(NodeId, Farads)],
) -> Result<(BatchTimes, Vec<u32>)> {
    augmented_batch_scaled(
        driver_resistance,
        interconnect,
        sink_loads,
        StageScales::NOMINAL,
    )
}

/// [`augmented_batch`] evaluated at a PVT corner: identical array layout
/// and accumulation order, with every spliced value multiplied by its
/// [`StageScales`] factor **at splice time** (one rounding per element).
/// The resulting arrays are bit-identical to the corresponding corner lane
/// of the `NetArena`, which scales the same base values by the same
/// factors, so the engine-based ECO re-timing path and the arena lane
/// sweep agree bit-for-bit.
pub(crate) fn augmented_batch_scaled(
    driver_resistance: Ohms,
    interconnect: &RcTree,
    sink_loads: &[(NodeId, Farads)],
    scales: StageScales,
) -> Result<(BatchTimes, Vec<u32>)> {
    let (arrays, pos) = augmented_arrays(driver_resistance, interconnect, sink_loads, scales)?;
    let batch = BatchTimes::of_preorder(
        &arrays.parent,
        &arrays.branch_r,
        &arrays.branch_c,
        &arrays.node_cap,
    )?;
    Ok((batch, pos))
}

/// The augmented stage's flat pre-order arrays: one spliced element per
/// entry, ready for any delay-algebra sweep.
#[derive(Debug, Clone)]
pub(crate) struct AugmentedArrays {
    pub parent: Vec<u32>,
    pub branch_r: Vec<f64>,
    pub branch_c: Vec<f64>,
    pub node_cap: Vec<f64>,
}

/// Builds the augmented stage arrays shared by the scalar and symbolic
/// sweeps: the splice order, validation order and per-element scaling
/// (one rounding per element, at splice time) are exactly the historical
/// [`augmented_batch_scaled`] sequence — this helper is pure code motion,
/// so the `f64` path stays bit-identical.
fn augmented_arrays(
    driver_resistance: Ohms,
    interconnect: &RcTree,
    sink_loads: &[(NodeId, Farads)],
    scales: StageScales,
) -> Result<(AugmentedArrays, Vec<u32>)> {
    // The builder path validates the spliced-in values through
    // `RcTreeBuilder`'s finite/non-negative checks; reject the same inputs
    // with the same error (the interconnect's own values were validated at
    // its construction).
    let check = |what: &'static str, value: f64| -> Result<()> {
        if !value.is_finite() || value < 0.0 {
            Err(rctree_core::CoreError::InvalidValue { what, value }.into())
        } else {
            Ok(())
        }
    };
    let driver_r = driver_resistance.value() * scales.driver_r;
    check("resistance", driver_r)?;
    let n_raw = interconnect.node_count();
    let n_aug = n_raw + 1;

    let mut parent = Vec::with_capacity(n_aug);
    let mut branch_r = Vec::with_capacity(n_aug);
    let mut branch_c = Vec::with_capacity(n_aug);
    let mut node_cap = Vec::with_capacity(n_aug);
    // Raw node id -> augmented pre-order position.
    let mut pos = vec![0u32; n_raw];

    // Augmented node 0: the stage input (no element, no capacitance), and
    // node 1: the driver's output, carrying the driver resistance and the
    // interconnect input's lumped capacitance.
    parent.push(0);
    branch_r.push(0.0);
    branch_c.push(0.0);
    node_cap.push(0.0);
    parent.push(0);
    branch_r.push(driver_r);
    branch_c.push(0.0);
    node_cap.push(interconnect.capacitance(interconnect.input())?.value() * scales.wire_c);
    pos[interconnect.input().index()] = 1;

    for id in interconnect.preorder() {
        if id == interconnect.input() {
            // The raw input's name is dropped by the augmentation (the node
            // is merged into the driver output), so it cannot collide.
            continue;
        }
        let name = interconnect.name(id)?;
        if name == DRIVER_OUTPUT_NODE || name == STAGE_INPUT_NODE {
            // The builder path would collide on the reserved names; fail
            // identically so both evaluations agree on such inputs.
            return Err(rctree_core::CoreError::DuplicateName {
                name: name.to_string(),
            }
            .into());
        }
        let p = interconnect.parent(id)?.expect("non-input node");
        let branch = interconnect.branch(id)?.expect("non-input node");
        pos[id.index()] = parent.len() as u32;
        parent.push(pos[p.index()]);
        branch_r.push(branch.resistance().value() * scales.wire_r);
        branch_c.push(branch.capacitance().value() * scales.wire_c);
        node_cap.push(interconnect.capacitance(id)?.value() * scales.wire_c);
    }

    for &(node, load) in sink_loads {
        // Validates the node and the load value, exactly like (and in the
        // same order as) the builder path's load loop.
        let _ = interconnect.name(node)?;
        let load_c = load.value() * scales.load_c;
        check("capacitance", load_c)?;
        node_cap[pos[node.index()] as usize] += load_c;
    }

    Ok((
        AugmentedArrays {
            parent,
            branch_r,
            branch_c,
            node_cap,
        },
        pos,
    ))
}

/// Builds the augmented stage tree: a new input, a lumped resistor equal to
/// the driver resistance, and a copy of the interconnect tree hanging off
/// it, with the extra sink load capacitances added.  Returns the augmented
/// tree and the mapping from original node ids to augmented node ids.
///
/// # Errors
///
/// Propagates construction errors (they indicate inconsistent inputs such as
/// a sink node that is not part of `interconnect`).
pub fn prepend_driver(
    driver_resistance: Ohms,
    interconnect: &RcTree,
    sink_loads: &[(NodeId, Farads)],
) -> Result<(RcTree, Vec<NodeId>)> {
    let mut b = RcTreeBuilder::with_input_name(STAGE_INPUT_NODE);
    let mut map = vec![NodeId::INPUT; interconnect.node_count()];

    // The interconnect's input node becomes the driver's output node.
    let drv_out = b.add_resistor(b.input(), DRIVER_OUTPUT_NODE, driver_resistance)?;
    map[interconnect.input().index()] = drv_out;
    b.add_capacitance(drv_out, interconnect.capacitance(interconnect.input())?)?;

    for id in interconnect.preorder() {
        if id == interconnect.input() {
            continue;
        }
        let parent = interconnect.parent(id)?.expect("non-input node");
        let new_parent = map[parent.index()];
        let name = interconnect.name(id)?;
        let new_id = match interconnect.branch(id)?.expect("non-input node") {
            Branch::Resistor { resistance } => b.add_resistor(new_parent, name, resistance)?,
            Branch::Line {
                resistance,
                capacitance,
            } => b.add_line(new_parent, name, resistance, capacitance)?,
        };
        b.add_capacitance(new_id, interconnect.capacitance(id)?)?;
        if interconnect.is_output(id)? {
            b.mark_output(new_id)?;
        }
        map[id.index()] = new_id;
    }

    for &(node, load) in sink_loads {
        // Validates that the node belongs to the interconnect tree.
        let _ = interconnect.name(node)?;
        let mapped = map[node.index()];
        b.add_capacitance(mapped, load)?;
        b.mark_output(mapped)?;
    }

    Ok((b.build()?, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rctree_core::moments::characteristic_times;
    use rctree_workloads::fig7::figure7_tree;

    fn simple_interconnect() -> (RcTree, NodeId, NodeId) {
        let mut b = RcTreeBuilder::new();
        let stem = b
            .add_line(
                b.input(),
                "stem",
                Ohms::new(100.0),
                Farads::from_femto(20.0),
            )
            .unwrap();
        let near = b.add_resistor(stem, "near", Ohms::new(10.0)).unwrap();
        let far = b
            .add_line(stem, "far", Ohms::new(300.0), Farads::from_femto(60.0))
            .unwrap();
        let tree = b.build().unwrap();
        (tree, near, far)
    }

    #[test]
    fn stage_reports_every_sink() {
        let (net, near, far) = simple_interconnect();
        let loads = vec![
            (near, Farads::from_femto(13.0)),
            (far, Farads::from_femto(13.0)),
        ];
        let timing = analyze_stage(Ohms::new(1000.0), &net, &loads, 0.5).unwrap();
        assert_eq!(timing.sinks.len(), 2);
        assert_eq!(timing.threshold, 0.5);
        assert!(timing.sink(near).is_some());
        assert!(timing.sink(far).is_some());
        for s in &timing.sinks {
            assert!(s.bounds.lower <= s.bounds.upper);
            // At the 50% threshold the Elmore delay is never below the lower
            // bound (it can exceed the upper bound, since Elmore is itself an
            // upper bound on the 50% delay).
            assert!(s.elmore >= s.bounds.lower);
            assert!(s.elmore.value() > 0.0);
        }
    }

    #[test]
    fn far_sink_is_critical() {
        let (net, near, far) = simple_interconnect();
        let loads = vec![
            (near, Farads::from_femto(13.0)),
            (far, Farads::from_femto(13.0)),
        ];
        let timing = analyze_stage(Ohms::new(1000.0), &net, &loads, 0.5).unwrap();
        assert_eq!(timing.critical_sink().unwrap().node, far);
    }

    #[test]
    fn stronger_driver_gives_smaller_delay() {
        let (net, _, far) = simple_interconnect();
        let loads = vec![(far, Farads::from_femto(13.0))];
        let weak = analyze_stage(Ohms::new(10_000.0), &net, &loads, 0.5).unwrap();
        let strong = analyze_stage(Ohms::new(500.0), &net, &loads, 0.5).unwrap();
        assert!(strong.sinks[0].bounds.upper < weak.sinks[0].bounds.upper);
        assert!(strong.sinks[0].elmore < weak.sinks[0].elmore);
    }

    #[test]
    fn driver_dominated_stage_has_tight_bounds() {
        // The paper: bounds are "very tight in the case where most of the
        // resistance is in the pullup".
        let (net, _, far) = simple_interconnect();
        let loads = vec![(far, Farads::from_femto(13.0))];
        let wire_dominated = analyze_stage(Ohms::new(10.0), &net, &loads, 0.5).unwrap();
        let driver_dominated = analyze_stage(Ohms::new(100_000.0), &net, &loads, 0.5).unwrap();
        assert!(
            driver_dominated.sinks[0].bounds.relative_uncertainty()
                < wire_dominated.sinks[0].bounds.relative_uncertainty()
        );
    }

    #[test]
    fn added_load_increases_delay() {
        let (net, _, far) = simple_interconnect();
        let light = analyze_stage(
            Ohms::new(1000.0),
            &net,
            &[(far, Farads::from_femto(5.0))],
            0.5,
        )
        .unwrap();
        let heavy = analyze_stage(
            Ohms::new(1000.0),
            &net,
            &[(far, Farads::from_femto(100.0))],
            0.5,
        )
        .unwrap();
        assert!(heavy.sinks[0].elmore > light.sinks[0].elmore);
    }

    #[test]
    fn augmented_tree_preserves_figure7_timing_when_driver_is_zero() {
        // Prepending a 0 Ω driver and adding no load must not change the
        // characteristic times of the Figure 7 output.
        let (tree, out) = figure7_tree();
        let timing = analyze_stage(Ohms::ZERO, &tree, &[(out, Farads::ZERO)], 0.5).unwrap();
        let reference = characteristic_times(&tree, out).unwrap();
        let s = &timing.sinks[0];
        assert!((s.times.t_p.value() - reference.t_p.value()).abs() < 1e-9);
        assert!((s.times.t_d.value() - reference.t_d.value()).abs() < 1e-9);
        assert!((s.times.t_r.value() - reference.t_r.value()).abs() < 1e-9);
    }

    #[test]
    fn sinkless_capacitance_free_net_yields_empty_timing() {
        // A placeholder net with no sinks and a resistor-only interconnect
        // must produce an empty report, not a NoCapacitance error.
        let mut b = RcTreeBuilder::new();
        b.add_resistor(b.input(), "stub", Ohms::new(10.0)).unwrap();
        let net = b.build().unwrap();
        let timing = analyze_stage(Ohms::new(1000.0), &net, &[], 0.5).unwrap();
        assert!(timing.sinks.is_empty());
        assert!(timing.critical_sink().is_none());
    }

    #[test]
    fn flat_stage_is_bit_identical_to_the_builder_stage() {
        // Exhaustive bit-exact comparison (not a tolerance) across driver
        // strengths, thresholds and load mixes, including a sink on the
        // interconnect's input node and doubled-up loads on one node.
        let (net, near, far) = simple_interconnect();
        let load_sets: Vec<Vec<(NodeId, Farads)>> = vec![
            vec![(near, Farads::from_femto(13.0))],
            vec![
                (near, Farads::from_femto(13.0)),
                (far, Farads::from_femto(52.0)),
            ],
            vec![
                (net.input(), Farads::from_femto(104.0)),
                (far, Farads::ZERO),
                (far, Farads::from_femto(7.0)),
            ],
        ];
        for driver in [Ohms::ZERO, Ohms::new(380.0), Ohms::new(10_000.0)] {
            for threshold in [0.1, 0.5, 0.9] {
                for loads in &load_sets {
                    let built = analyze_stage(driver, &net, loads, threshold).unwrap();
                    let flat = stage_delay_bounds(driver, &net, loads, threshold).unwrap();
                    assert_eq!(flat.len(), built.sinks.len());
                    for (f, s) in flat.iter().zip(built.sinks.iter()) {
                        assert_eq!(f, &s.bounds, "driver {driver}, threshold {threshold}");
                    }
                }
            }
        }

        // Seeded random trees from the workloads crate, every node loaded.
        for seed in [3u64, 17, 91] {
            let tree = rctree_workloads::RandomTreeConfig::default().generate(seed);
            let loads: Vec<(NodeId, Farads)> = tree
                .node_ids()
                .map(|id| (id, Farads::from_femto(1.0 + id.index() as f64)))
                .collect();
            let built = analyze_stage(Ohms::new(1000.0), &tree, &loads, 0.5).unwrap();
            let flat = stage_delay_bounds(Ohms::new(1000.0), &tree, &loads, 0.5).unwrap();
            for (f, s) in flat.iter().zip(built.sinks.iter()) {
                assert_eq!(f, &s.bounds, "seed {seed}");
            }
        }
    }

    #[test]
    fn flat_stage_matches_builder_errors() {
        // Reserved augmented-node names fail identically on both paths.
        let mut b = RcTreeBuilder::new();
        let clash = b
            .add_resistor(b.input(), DRIVER_OUTPUT_NODE, Ohms::new(5.0))
            .unwrap();
        b.add_capacitance(clash, Farads::from_femto(3.0)).unwrap();
        let tree = b.build().unwrap();
        let loads = vec![(clash, Farads::from_femto(1.0))];
        let built = analyze_stage(Ohms::new(100.0), &tree, &loads, 0.5).unwrap_err();
        let flat = stage_delay_bounds(Ohms::new(100.0), &tree, &loads, 0.5).unwrap_err();
        assert_eq!(format!("{built}"), format!("{flat}"));

        // An empty sink list short-circuits to no bounds, like the builder
        // path's sink-less early return.
        let (net, _, _) = simple_interconnect();
        assert!(stage_delay_bounds(Ohms::new(100.0), &net, &[], 0.5)
            .unwrap()
            .is_empty());

        // Non-finite / negative spliced-in values fail with the builder's
        // `InvalidValue` on both paths (the builder validates them in
        // `add_resistor` / `add_capacitance`).
        let (net, near, _) = simple_interconnect();
        for (driver, load) in [
            (Ohms::new(f64::NAN), Farads::from_femto(1.0)),
            (Ohms::new(-5.0), Farads::from_femto(1.0)),
            (Ohms::new(100.0), Farads::new(f64::INFINITY)),
            (Ohms::new(100.0), Farads::new(-1e-15)),
        ] {
            let loads = vec![(near, load)];
            let built = analyze_stage(driver, &net, &loads, 0.5).unwrap_err();
            let flat = stage_delay_bounds(driver, &net, &loads, 0.5).unwrap_err();
            assert_eq!(format!("{built}"), format!("{flat}"));
        }
    }

    #[test]
    fn sink_on_the_driver_output_node_is_allowed() {
        // Loading the interconnect's input node directly (a gate right at
        // the driver) is legal and yields a purely driver-limited delay.
        let (net, _, _) = simple_interconnect();
        let timing = analyze_stage(
            Ohms::new(1000.0),
            &net,
            &[(net.input(), Farads::from_femto(13.0))],
            0.5,
        )
        .unwrap();
        assert_eq!(timing.sinks.len(), 1);
        assert!(timing.sinks[0].bounds.upper.value() > 0.0);
    }

    #[test]
    fn symbolic_stage_at_nominal_is_bit_identical_to_the_scalar_stage() {
        let (net, near, far) = simple_interconnect();
        let loads = vec![
            (near, Farads::from_femto(13.0)),
            (far, Farads::from_femto(29.0)),
        ];
        for threshold in [0.1, 0.5, 0.9] {
            for driver in [Ohms::new(42.0), Ohms::new(1000.0), Ohms::new(50_000.0)] {
                let scalar = stage_delay_bounds(driver, &net, &loads, threshold).unwrap();
                let symbolic = stage_symbolic_bounds(driver, &net, &loads, threshold).unwrap();
                assert_eq!(scalar.len(), symbolic.len());
                for (s, p) in scalar.iter().zip(&symbolic) {
                    let at_nominal = p.eval(1.0, 1.0);
                    assert_eq!(s.lower, at_nominal.lower);
                    assert_eq!(s.upper, at_nominal.upper);
                }
            }
        }
    }

    #[test]
    fn symbolic_stage_evaluates_to_the_scaled_scalar_stage() {
        // Evaluating the polynomials at (r, c) must reproduce the
        // materialized uniform-corner analysis at those scales.
        let (net, near, far) = simple_interconnect();
        let loads = vec![
            (near, Farads::from_femto(13.0)),
            (far, Farads::from_femto(29.0)),
        ];
        for (r, c) in [(0.8, 0.9), (1.3, 1.2), (2.5, 0.4), (1.0, 3.0)] {
            let scales = StageScales {
                wire_r: r,
                wire_c: c,
                driver_r: r,
                load_c: c,
            };
            let scaled =
                stage_delay_bounds_scaled(Ohms::new(1000.0), &net, &loads, 0.5, scales).unwrap();
            let symbolic = stage_symbolic_bounds(Ohms::new(1000.0), &net, &loads, 0.5).unwrap();
            for (s, p) in scaled.iter().zip(&symbolic) {
                let at = p.eval(r, c);
                let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-300);
                assert!(
                    rel(at.lower.value(), s.lower.value()) < 1e-9,
                    "lower at r={r} c={c}: {} vs {}",
                    at.lower.value(),
                    s.lower.value()
                );
                assert!(
                    rel(at.upper.value(), s.upper.value()) < 1e-9,
                    "upper at r={r} c={c}: {} vs {}",
                    at.upper.value(),
                    s.upper.value()
                );
            }
        }
    }

    #[test]
    fn symbolic_node_times_match_scalar_node_times_at_nominal() {
        let (net, near, far) = simple_interconnect();
        let loads = vec![(far, Farads::from_femto(13.0))];
        for node in [near, far, net.input()] {
            let scalar = stage_node_times(Ohms::new(700.0), &net, &loads, node).unwrap();
            let symbolic = stage_node_symbolic_times(Ohms::new(700.0), &net, &loads, node).unwrap();
            assert_eq!(symbolic.t_p.eval(1.0, 1.0), scalar.t_p.value());
            assert_eq!(symbolic.t_d.eval(1.0, 1.0), scalar.t_d.value());
            assert_eq!(symbolic.t_r.eval(1.0, 1.0), scalar.t_r.value());
        }
    }

    #[test]
    fn symbolic_stage_propagates_the_scalar_path_errors() {
        let (net, near, _) = simple_interconnect();
        let loads = vec![(near, Farads::new(-1e-15))];
        let scalar = stage_delay_bounds(Ohms::new(100.0), &net, &loads, 0.5).unwrap_err();
        let symbolic = stage_symbolic_bounds(Ohms::new(100.0), &net, &loads, 0.5).unwrap_err();
        assert_eq!(format!("{scalar}"), format!("{symbolic}"));
        assert!(stage_symbolic_bounds(Ohms::new(100.0), &net, &[], 0.5)
            .unwrap()
            .is_empty());
    }
}
