//! Gate (cell) models and the cell library.
//!
//! The paper models the driving inverter by "a linear resistor" (its
//! pull-up) plus lumped parasitics; receiving gates appear purely as input
//! capacitance.  [`Cell`] captures exactly that switch-resistance model,
//! which is also how Elmore-based delay estimation is used inside modern
//! static timing tools before detailed characterization is available.

use std::collections::BTreeMap;

use rctree_core::units::{Farads, Ohms, Seconds};

use crate::error::{Result, StaError};

/// A logic cell described by the linear switch-resistance model.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Cell name (e.g. `"inv_1x"`).
    pub name: String,
    /// Effective output (pull-up/pull-down) resistance.
    pub drive_resistance: Ohms,
    /// Input (gate) capacitance presented to the driving net.
    pub input_capacitance: Farads,
    /// Intrinsic switching delay added independent of load.
    pub intrinsic_delay: Seconds,
}

impl Cell {
    /// Creates a cell from its three model parameters.
    pub fn new(
        name: impl Into<String>,
        drive_resistance: Ohms,
        input_capacitance: Farads,
        intrinsic_delay: Seconds,
    ) -> Self {
        Cell {
            name: name.into(),
            drive_resistance,
            input_capacitance,
            intrinsic_delay,
        }
    }
}

/// A named collection of cells.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellLibrary {
    cells: BTreeMap<String, Cell>,
}

impl CellLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// A small representative NMOS library in the spirit of the paper's
    /// technology: inverters and buffers of increasing drive strength, plus
    /// the superbuffer used for the PLA lines (380 Ω effective resistance).
    pub fn nmos_1981() -> Self {
        let mut lib = CellLibrary::new();
        lib.insert(Cell::new(
            "inv_1x",
            Ohms::new(10_000.0),
            Farads::from_pico(0.013),
            Seconds::from_nano(1.0),
        ));
        lib.insert(Cell::new(
            "inv_4x",
            Ohms::new(2_500.0),
            Farads::from_pico(0.052),
            Seconds::from_nano(0.8),
        ));
        lib.insert(Cell::new(
            "buf_8x",
            Ohms::new(1_250.0),
            Farads::from_pico(0.104),
            Seconds::from_nano(1.2),
        ));
        lib.insert(Cell::new(
            "superbuffer",
            Ohms::new(380.0),
            Farads::from_pico(0.2),
            Seconds::from_nano(1.5),
        ));
        lib
    }

    /// Adds (or replaces) a cell.
    pub fn insert(&mut self, cell: Cell) {
        self.cells.insert(cell.name.clone(), cell);
    }

    /// Looks up a cell by name.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::UnknownCell`] if the cell is not in the library.
    pub fn cell(&self, name: &str) -> Result<&Cell> {
        self.cells.get(name).ok_or_else(|| StaError::UnknownCell {
            name: name.to_string(),
        })
    }

    /// Number of cells in the library.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the library holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over the cells in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Cell> {
        self.cells.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_lookup_and_iteration() {
        let lib = CellLibrary::nmos_1981();
        assert!(!lib.is_empty());
        assert_eq!(lib.len(), 4);
        let inv = lib.cell("inv_1x").unwrap();
        assert_eq!(inv.drive_resistance, Ohms::new(10_000.0));
        assert!(lib.cell("nand2").is_err());
        let names: Vec<&str> = lib.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["buf_8x", "inv_1x", "inv_4x", "superbuffer"]);
    }

    #[test]
    fn stronger_cells_have_lower_resistance_and_higher_input_cap() {
        let lib = CellLibrary::nmos_1981();
        let weak = lib.cell("inv_1x").unwrap();
        let strong = lib.cell("inv_4x").unwrap();
        assert!(strong.drive_resistance < weak.drive_resistance);
        assert!(strong.input_capacitance > weak.input_capacitance);
    }

    #[test]
    fn insert_replaces_existing_cell() {
        let mut lib = CellLibrary::new();
        lib.insert(Cell::new(
            "x",
            Ohms::new(1.0),
            Farads::new(1.0),
            Seconds::ZERO,
        ));
        lib.insert(Cell::new(
            "x",
            Ohms::new(2.0),
            Farads::new(1.0),
            Seconds::ZERO,
        ));
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.cell("x").unwrap().drive_resistance, Ohms::new(2.0));
    }
}
