//! Multi-stage timing graphs: instances, nets, arrival-time propagation and
//! critical-path extraction.
//!
//! A [`Design`] is a DAG of cell instances connected by nets.  Each net is
//! driven either by a primary input or by an instance's output, carries an
//! extracted interconnect [`RcTree`], and fans out to instance inputs and/or
//! primary outputs.  Arrival times are propagated in topological order as
//! **intervals** `[min, max]`: the lower ends use the Penfield–Rubinstein
//! lower delay bounds, the upper ends the upper bounds, so the reported
//! worst-case arrival at every endpoint is a *guaranteed* bound rather than
//! an estimate — exactly the certification use-case of the paper's abstract.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use rctree_core::cert::Certification;
use rctree_core::tree::RcTree;
use rctree_core::units::{Farads, Seconds};

use crate::cell::CellLibrary;
use crate::error::{Result, StaError};
use crate::stage::analyze_stage;

/// What drives a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Driver {
    /// A primary input of the design (arrival time zero).
    PrimaryInput,
    /// The output of the named instance.
    Instance(String),
}

/// What a net sink connects to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Load {
    /// The input of the named instance.
    Instance(String),
    /// A primary output (endpoint) of the design.
    PrimaryOutput(String),
}

/// One sink of a net: a node of the interconnect tree plus what hangs there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sink {
    /// Name of the interconnect-tree node the load is attached to.
    pub node: String,
    /// What the sink drives.
    pub load: Load,
}

/// A net: driver, extracted interconnect and sinks.
#[derive(Debug, Clone)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// Who drives the net.
    pub driver: Driver,
    /// Extracted interconnect; its input node is the driver's output pin.
    pub interconnect: RcTree,
    /// Fan-out of the net.
    pub sinks: Vec<Sink>,
}

/// An arrival-time interval propagated through the graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalWindow {
    /// Earliest possible arrival (sum of lower bounds).
    pub min: Seconds,
    /// Latest possible arrival (sum of upper bounds) — the certified value.
    pub max: Seconds,
}

impl ArrivalWindow {
    /// The zero window (primary inputs).
    pub const ZERO: ArrivalWindow = ArrivalWindow {
        min: Seconds::ZERO,
        max: Seconds::ZERO,
    };
}

/// One endpoint (primary output) in the timing report.
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointTiming {
    /// Primary-output name.
    pub name: String,
    /// Arrival window at the endpoint.
    pub arrival: ArrivalWindow,
    /// The chain of instance names on the latest path to this endpoint,
    /// starting from the primary input side.
    pub critical_path: Vec<String>,
}

/// Whole-design timing report.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Switching threshold used for all stage delays.
    pub threshold: f64,
    /// Required arrival time used for slack and certification.
    pub required_time: Seconds,
    /// Per-endpoint results, sorted by descending worst arrival.
    pub endpoints: Vec<EndpointTiming>,
}

impl TimingReport {
    /// The endpoint with the largest guaranteed-worst-case arrival, or
    /// `None` for a report with no endpoints (a design whose nets feed only
    /// instance inputs produces such a report — it is not an error).
    pub fn critical_endpoint(&self) -> Option<&EndpointTiming> {
        self.endpoints.first()
    }

    /// Worst slack in the design: `required_time − worst arrival upper
    /// bound`.  Negative slack means the design may miss timing.
    ///
    /// An empty report (no endpoints) has nothing that can miss timing, so
    /// its worst slack is the full `required_time` — the vacuous analogue
    /// of "every endpoint meets the budget with the entire budget to
    /// spare".
    pub fn worst_slack(&self) -> Seconds {
        match self.critical_endpoint() {
            Some(e) => self.required_time - e.arrival.max,
            None => self.required_time,
        }
    }

    /// Three-valued certification of the whole design against the required
    /// time (the multi-stage generalisation of the paper's `OK` function).
    ///
    /// An empty report certifies as [`Certification::Pass`]: the verdict is
    /// the conjunction over all endpoints, and a conjunction over none is
    /// vacuously true.
    pub fn certification(&self) -> Certification {
        let mut verdict = Certification::Pass;
        for e in &self.endpoints {
            let v = if e.arrival.max <= self.required_time {
                Certification::Pass
            } else if e.arrival.min > self.required_time {
                Certification::Fail
            } else {
                Certification::Indeterminate
            };
            verdict = verdict.and(v);
        }
        verdict
    }
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "timing report (threshold {:.2}, required {})",
            self.threshold, self.required_time
        )?;
        for e in &self.endpoints {
            writeln!(
                f,
                "  {}: arrival [{}, {}] via {}",
                e.name,
                e.arrival.min,
                e.arrival.max,
                e.critical_path.join(" -> ")
            )?;
        }
        writeln!(f, "  worst slack: {}", self.worst_slack())?;
        writeln!(f, "  certification: {}", self.certification())
    }
}

/// A gate-level design with extracted interconnect.
#[derive(Debug, Clone)]
pub struct Design {
    library: CellLibrary,
    /// instance name → cell name.
    instances: BTreeMap<String, String>,
    nets: Vec<Net>,
}

/// Delay window of one sink of a net, produced by the per-net stage sweep.
struct SinkDelay {
    load: Load,
    window: (Seconds, Seconds),
}

impl Design {
    /// Creates an empty design over the given cell library.
    pub fn new(library: CellLibrary) -> Self {
        Design {
            library,
            instances: BTreeMap::new(),
            nets: Vec::new(),
        }
    }

    /// Adds an instance of a library cell.
    ///
    /// # Errors
    ///
    /// * [`StaError::UnknownCell`] if the cell is not in the library;
    /// * [`StaError::DuplicateInstance`] if the instance name is taken.
    pub fn add_instance(&mut self, name: impl Into<String>, cell: impl Into<String>) -> Result<()> {
        let name = name.into();
        let cell = cell.into();
        self.library.cell(&cell)?;
        if self.instances.contains_key(&name) {
            return Err(StaError::DuplicateInstance { name });
        }
        self.instances.insert(name, cell);
        Ok(())
    }

    /// Adds a net.
    ///
    /// # Errors
    ///
    /// * [`StaError::UnknownInstance`] if the driver or a sink instance does
    ///   not exist;
    /// * [`StaError::UnknownSinkNode`] if a sink references a node that is
    ///   not part of the net's interconnect tree.
    pub fn add_net(&mut self, net: Net) -> Result<()> {
        if let Driver::Instance(inst) = &net.driver {
            if !self.instances.contains_key(inst) {
                return Err(StaError::UnknownInstance { name: inst.clone() });
            }
        }
        for sink in &net.sinks {
            if net.interconnect.node_by_name(&sink.node).is_err() {
                return Err(StaError::UnknownSinkNode {
                    net: net.name.clone(),
                    node: sink.node.clone(),
                });
            }
            if let Load::Instance(inst) = &sink.load {
                if !self.instances.contains_key(inst) {
                    return Err(StaError::UnknownInstance { name: inst.clone() });
                }
            }
        }
        self.nets.push(net);
        Ok(())
    }

    /// Number of instances in the design.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Number of nets in the design.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Runs the full arrival-time propagation and produces a report,
    /// sharding the per-net stage evaluation over
    /// [`rctree_par::default_jobs`] worker threads (`RCTREE_JOBS` overrides
    /// the hardware default).  See [`Design::analyze_with_jobs`].
    ///
    /// `threshold` is the switching threshold (fraction of the swing) used
    /// for every stage; `required_time` is the budget every endpoint must
    /// meet.
    ///
    /// # Errors
    ///
    /// * [`StaError::EmptyDesign`] if there is nothing to analyse;
    /// * [`StaError::CombinationalCycle`] if the instance graph has a cycle;
    /// * stage-level errors from the core crate.
    pub fn analyze(&self, threshold: f64, required_time: Seconds) -> Result<TimingReport> {
        self.analyze_with_jobs(threshold, required_time, rctree_par::default_jobs())
    }

    /// [`Design::analyze`] with an explicit worker count.
    ///
    /// Net/stage evaluation — all the numerical work — is embarrassingly
    /// parallel: every net is one independent `O(n)` batched sweep.  The
    /// per-net results are written by net index and merged in net order, so
    /// the report is **bit-identical** to the serial evaluation
    /// (`jobs = 1`) for every worker count; on invalid designs the error
    /// surfaced is the first failing net in net order, equally independent
    /// of scheduling.  The subsequent arrival-time propagation is a cheap
    /// serial pass over precomputed windows.
    ///
    /// # Errors
    ///
    /// As for [`Design::analyze`].
    pub fn analyze_with_jobs(
        &self,
        threshold: f64,
        required_time: Seconds,
        jobs: usize,
    ) -> Result<TimingReport> {
        if self.nets.is_empty() {
            return Err(StaError::EmptyDesign);
        }

        // Stage timing per net: delay window of every sink.  Each call to
        // `analyze_stage` batches the whole net — one O(n) sweep covers all
        // of the net's fan-outs — so the full design evaluation is linear in
        // total extracted-node count plus total sink count, divided across
        // the workers.
        let net_sink_delays: Vec<Vec<SinkDelay>> =
            rctree_par::par_map_indexed(jobs, &self.nets, |_, net| {
                self.net_sink_delays(net, threshold)
            })
            .into_iter()
            .collect::<Result<_>>()?;

        // Topological order of instances (Kahn's algorithm over the
        // instance-to-instance edges induced by nets).
        let mut in_degree: HashMap<&str, usize> =
            self.instances.keys().map(|k| (k.as_str(), 0)).collect();
        let mut successors: HashMap<&str, Vec<&str>> = HashMap::new();
        for net in &self.nets {
            if let Driver::Instance(driver) = &net.driver {
                for sink in &net.sinks {
                    if let Load::Instance(load) = &sink.load {
                        successors.entry(driver.as_str()).or_default().push(load);
                        *in_degree.get_mut(load.as_str()).expect("validated") += 1;
                    }
                }
            }
        }
        let mut queue: Vec<&str> = in_degree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&k, _)| k)
            .collect();
        queue.sort_unstable();
        let mut topo_order: Vec<&str> = Vec::with_capacity(self.instances.len());
        let mut queue_idx = 0;
        while queue_idx < queue.len() {
            let inst = queue[queue_idx];
            queue_idx += 1;
            topo_order.push(inst);
            if let Some(next) = successors.get(inst) {
                for &succ in next {
                    let d = in_degree.get_mut(succ).expect("validated");
                    *d -= 1;
                    if *d == 0 {
                        queue.push(succ);
                    }
                }
            }
        }
        if topo_order.len() != self.instances.len() {
            return Err(StaError::CombinationalCycle);
        }
        let topo_rank: HashMap<&str, usize> = topo_order
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect();

        // Arrival windows at instance inputs (worst over all inputs) and the
        // path leading there.
        let mut input_arrival: HashMap<&str, (ArrivalWindow, Vec<String>)> = HashMap::new();
        let mut endpoints: Vec<EndpointTiming> = Vec::new();

        // Process nets in driver topological order so that a driver's input
        // arrival is final before its output net is evaluated.
        let mut net_order: Vec<usize> = (0..self.nets.len()).collect();
        net_order.sort_by_key(|&i| match &self.nets[i].driver {
            Driver::PrimaryInput => 0,
            Driver::Instance(inst) => 1 + topo_rank[inst.as_str()],
        });

        for &net_idx in &net_order {
            let net = &self.nets[net_idx];
            // Arrival at the driver's output pin.
            let (driver_arrival, driver_path) = match &net.driver {
                Driver::PrimaryInput => (ArrivalWindow::ZERO, Vec::new()),
                Driver::Instance(inst) => {
                    let cell = self.library.cell(&self.instances[inst])?;
                    let (input, mut path) = input_arrival
                        .get(inst.as_str())
                        .cloned()
                        .unwrap_or((ArrivalWindow::ZERO, Vec::new()));
                    path.push(inst.clone());
                    (
                        ArrivalWindow {
                            min: input.min + cell.intrinsic_delay,
                            max: input.max + cell.intrinsic_delay,
                        },
                        path,
                    )
                }
            };

            for delay in &net_sink_delays[net_idx] {
                let window = ArrivalWindow {
                    min: driver_arrival.min + delay.window.0,
                    max: driver_arrival.max + delay.window.1,
                };
                match &delay.load {
                    Load::Instance(inst) => {
                        let inst_key = self
                            .instances
                            .keys()
                            .find(|k| k.as_str() == inst.as_str())
                            .expect("validated")
                            .as_str();
                        let entry = input_arrival
                            .entry(inst_key)
                            .or_insert((ArrivalWindow::ZERO, Vec::new()));
                        if window.max > entry.0.max {
                            *entry = (window, driver_path.clone());
                        }
                    }
                    Load::PrimaryOutput(name) => {
                        endpoints.push(EndpointTiming {
                            name: name.clone(),
                            arrival: window,
                            critical_path: driver_path.clone(),
                        });
                    }
                }
            }
        }

        endpoints.sort_by(|a, b| b.arrival.max.value().total_cmp(&a.arrival.max.value()));
        Ok(TimingReport {
            threshold,
            required_time,
            endpoints,
        })
    }

    /// Delay windows of every sink of one net: the unit of work that
    /// [`Design::analyze_with_jobs`] shards across the thread pool.
    fn net_sink_delays(&self, net: &Net, threshold: f64) -> Result<Vec<SinkDelay>> {
        let driver_resistance = match &net.driver {
            Driver::PrimaryInput => rctree_core::units::Ohms::ZERO,
            Driver::Instance(inst) => {
                let cell_name = &self.instances[inst];
                self.library.cell(cell_name)?.drive_resistance
            }
        };
        let mut sink_loads = Vec::with_capacity(net.sinks.len());
        for sink in &net.sinks {
            let node = net.interconnect.node_by_name(&sink.node)?;
            let load_cap = match &sink.load {
                Load::Instance(inst) => {
                    let cell_name = &self.instances[inst];
                    self.library.cell(cell_name)?.input_capacitance
                }
                Load::PrimaryOutput(_) => Farads::ZERO,
            };
            sink_loads.push((node, load_cap));
        }
        let stage = analyze_stage(driver_resistance, &net.interconnect, &sink_loads, threshold)?;
        Ok(net
            .sinks
            .iter()
            .zip(stage.sinks.iter())
            .map(|(sink, timing)| SinkDelay {
                load: sink.load.clone(),
                window: (timing.bounds.lower, timing.bounds.upper),
            })
            .collect())
    }

    /// Builds a single-stage-per-net design from extracted parasitics: the
    /// shape of a deck fresh out of a parasitic extractor, before gate-level
    /// connectivity is known.
    ///
    /// Every `(name, tree)` pair becomes one instance of `driver_cell`
    /// driving `tree`, fed from a primary input through a short feeder wire;
    /// every output node of `tree` becomes a primary output named
    /// `"{name}/{node}"`.  This is the bridge from
    /// `rctree_netlist::parse_spef_deck` to a [`Design`] that
    /// [`Design::analyze`] can shard across workers.
    ///
    /// # Errors
    ///
    /// * [`StaError::UnknownCell`] if `driver_cell` is not in `library`;
    /// * [`StaError::DuplicateInstance`] if two nets share a name.
    pub fn from_extracted<I>(library: CellLibrary, driver_cell: &str, nets: I) -> Result<Design>
    where
        I: IntoIterator<Item = (String, RcTree)>,
    {
        let mut design = Design::new(library);
        // Validate the driver cell up front so an empty deck still reports
        // a bad cell name.
        design.library.cell(driver_cell)?;
        for (name, tree) in nets {
            let inst = format!("{name}_drv");
            design.add_instance(&inst, driver_cell)?;

            // Feeder: a primary input reaching the driver through a token
            // 10 Ω / 1 fF wire, so every stage has a real arrival window.
            let mut feeder = rctree_core::builder::RcTreeBuilder::new();
            feeder
                .add_line(
                    feeder.input(),
                    "pin",
                    rctree_core::units::Ohms::new(10.0),
                    Farads::from_femto(1.0),
                )
                .expect("static feeder wire is valid");
            design.add_net(Net {
                name: format!("{name}_pi"),
                driver: Driver::PrimaryInput,
                interconnect: feeder.build().expect("static feeder wire is valid"),
                sinks: vec![Sink {
                    node: "pin".into(),
                    load: Load::Instance(inst.clone()),
                }],
            })?;

            let sinks = tree
                .outputs()
                .map(|id| {
                    let node = tree.name(id).expect("output node exists").to_string();
                    Sink {
                        load: Load::PrimaryOutput(format!("{name}/{node}")),
                        node,
                    }
                })
                .collect();
            design.add_net(Net {
                name,
                driver: Driver::Instance(inst),
                interconnect: tree,
                sinks,
            })?;
        }
        Ok(design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rctree_core::builder::RcTreeBuilder;
    use rctree_core::units::Ohms;

    /// A point-to-point wire: input -> one line -> one sink node "load".
    fn wire(r: f64, c_ff: f64) -> RcTree {
        let mut b = RcTreeBuilder::new();
        let n = b
            .add_line(b.input(), "load", Ohms::new(r), Farads::from_femto(c_ff))
            .unwrap();
        let _ = n;
        b.build().unwrap()
    }

    /// Two-stage buffer chain: PI -> wire -> u1 -> wire -> u2 -> wire -> PO.
    fn buffer_chain() -> Design {
        let mut d = Design::new(CellLibrary::nmos_1981());
        d.add_instance("u1", "inv_1x").unwrap();
        d.add_instance("u2", "inv_4x").unwrap();
        d.add_net(Net {
            name: "n_in".into(),
            driver: Driver::PrimaryInput,
            interconnect: wire(50.0, 5.0),
            sinks: vec![Sink {
                node: "load".into(),
                load: Load::Instance("u1".into()),
            }],
        })
        .unwrap();
        d.add_net(Net {
            name: "n_mid".into(),
            driver: Driver::Instance("u1".into()),
            interconnect: wire(200.0, 20.0),
            sinks: vec![Sink {
                node: "load".into(),
                load: Load::Instance("u2".into()),
            }],
        })
        .unwrap();
        d.add_net(Net {
            name: "n_out".into(),
            driver: Driver::Instance("u2".into()),
            interconnect: wire(400.0, 40.0),
            sinks: vec![Sink {
                node: "load".into(),
                load: Load::PrimaryOutput("out".into()),
            }],
        })
        .unwrap();
        d
    }

    #[test]
    fn buffer_chain_report_is_consistent() {
        let d = buffer_chain();
        assert_eq!(d.instance_count(), 2);
        assert_eq!(d.net_count(), 3);
        let report = d.analyze(0.5, Seconds::from_nano(50.0)).unwrap();
        assert_eq!(report.endpoints.len(), 1);
        let e = &report.endpoints[0];
        assert_eq!(e.name, "out");
        assert!(e.arrival.min <= e.arrival.max);
        // Both gate intrinsic delays must be included.
        assert!(e.arrival.min >= Seconds::from_nano(1.8));
        assert_eq!(e.critical_path, vec!["u1".to_string(), "u2".to_string()]);
        let text = report.to_string();
        assert!(text.contains("out"));
        assert!(text.contains("certification"));
    }

    #[test]
    fn certification_follows_required_time() {
        let d = buffer_chain();
        let generous = d.analyze(0.5, Seconds::from_nano(1000.0)).unwrap();
        assert_eq!(generous.certification(), Certification::Pass);
        assert!(generous.worst_slack().value() > 0.0);

        let impossible = d.analyze(0.5, Seconds::from_pico(1.0)).unwrap();
        assert_eq!(impossible.certification(), Certification::Fail);
        assert!(impossible.worst_slack().value() < 0.0);

        // A budget between the endpoint's min and max arrival cannot be
        // decided by bounds alone.
        let report = d.analyze(0.5, Seconds::from_nano(1000.0)).unwrap();
        let e = report.critical_endpoint().unwrap();
        let mid = Seconds::new((e.arrival.min.value() + e.arrival.max.value()) / 2.0);
        let undecided = d.analyze(0.5, mid).unwrap();
        assert_eq!(undecided.certification(), Certification::Indeterminate);
    }

    #[test]
    fn fanout_reports_every_endpoint() {
        let mut d = Design::new(CellLibrary::nmos_1981());
        d.add_instance("drv", "superbuffer").unwrap();
        d.add_net(Net {
            name: "n_in".into(),
            driver: Driver::PrimaryInput,
            interconnect: wire(10.0, 1.0),
            sinks: vec![Sink {
                node: "load".into(),
                load: Load::Instance("drv".into()),
            }],
        })
        .unwrap();
        // Fan-out net with two sinks at different depths.
        let mut b = RcTreeBuilder::new();
        let stem = b
            .add_line(
                b.input(),
                "stem",
                Ohms::new(100.0),
                Farads::from_femto(10.0),
            )
            .unwrap();
        b.add_line(stem, "near", Ohms::new(10.0), Farads::from_femto(1.0))
            .unwrap();
        b.add_line(stem, "far", Ohms::new(500.0), Farads::from_femto(50.0))
            .unwrap();
        let fanout = b.build().unwrap();
        d.add_net(Net {
            name: "n_fan".into(),
            driver: Driver::Instance("drv".into()),
            interconnect: fanout,
            sinks: vec![
                Sink {
                    node: "near".into(),
                    load: Load::PrimaryOutput("po_near".into()),
                },
                Sink {
                    node: "far".into(),
                    load: Load::PrimaryOutput("po_far".into()),
                },
            ],
        })
        .unwrap();
        let report = d.analyze(0.5, Seconds::from_nano(100.0)).unwrap();
        assert_eq!(report.endpoints.len(), 2);
        assert_eq!(report.critical_endpoint().unwrap().name, "po_far");
    }

    #[test]
    fn validation_errors() {
        let mut d = Design::new(CellLibrary::nmos_1981());
        assert!(matches!(
            d.add_instance("u1", "not_a_cell"),
            Err(StaError::UnknownCell { .. })
        ));
        d.add_instance("u1", "inv_1x").unwrap();
        assert!(matches!(
            d.add_instance("u1", "inv_1x"),
            Err(StaError::DuplicateInstance { .. })
        ));
        assert!(matches!(
            d.add_net(Net {
                name: "n".into(),
                driver: Driver::Instance("ghost".into()),
                interconnect: wire(1.0, 1.0),
                sinks: vec![],
            }),
            Err(StaError::UnknownInstance { .. })
        ));
        assert!(matches!(
            d.add_net(Net {
                name: "n".into(),
                driver: Driver::PrimaryInput,
                interconnect: wire(1.0, 1.0),
                sinks: vec![Sink {
                    node: "nope".into(),
                    load: Load::Instance("u1".into())
                }],
            }),
            Err(StaError::UnknownSinkNode { .. })
        ));
        assert!(matches!(
            d.add_net(Net {
                name: "n".into(),
                driver: Driver::PrimaryInput,
                interconnect: wire(1.0, 1.0),
                sinks: vec![Sink {
                    node: "load".into(),
                    load: Load::Instance("ghost".into())
                }],
            }),
            Err(StaError::UnknownInstance { .. })
        ));
        assert!(matches!(
            d.analyze(0.5, Seconds::from_nano(1.0)),
            Err(StaError::EmptyDesign)
        ));
    }

    #[test]
    fn empty_report_semantics_are_pinned() {
        // A report with no endpoints is a legitimate outcome (nets that feed
        // only instance inputs), not a panic or an error: the critical
        // endpoint is absent, the whole budget is slack, and certification
        // passes vacuously.
        let empty = TimingReport {
            threshold: 0.5,
            required_time: Seconds::from_nano(10.0),
            endpoints: Vec::new(),
        };
        assert!(empty.critical_endpoint().is_none());
        assert_eq!(empty.worst_slack(), Seconds::from_nano(10.0));
        assert_eq!(empty.certification(), Certification::Pass);
        assert!(empty.to_string().contains("worst slack"));
    }

    #[test]
    fn design_without_primary_outputs_yields_an_empty_report() {
        let mut d = Design::new(CellLibrary::nmos_1981());
        d.add_instance("u1", "inv_1x").unwrap();
        d.add_net(Net {
            name: "n_in".into(),
            driver: Driver::PrimaryInput,
            interconnect: wire(50.0, 5.0),
            sinks: vec![Sink {
                node: "load".into(),
                load: Load::Instance("u1".into()),
            }],
        })
        .unwrap();
        let report = d.analyze(0.5, Seconds::from_nano(7.0)).unwrap();
        assert!(report.endpoints.is_empty());
        assert!(report.critical_endpoint().is_none());
        assert_eq!(report.worst_slack(), Seconds::from_nano(7.0));
        assert_eq!(report.certification(), Certification::Pass);
    }

    #[test]
    fn analysis_is_bit_identical_for_any_worker_count() {
        let d = buffer_chain();
        let serial = d
            .analyze_with_jobs(0.5, Seconds::from_nano(50.0), 1)
            .unwrap();
        for jobs in [2, 7, rctree_par::available_parallelism()] {
            let parallel = d
                .analyze_with_jobs(0.5, Seconds::from_nano(50.0), jobs)
                .unwrap();
            assert_eq!(parallel, serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn from_extracted_builds_an_analyzable_deck_design() {
        // Like `wire`, but with the far node marked as an output the way an
        // extractor marks load pins.
        let tapped_wire = |r: f64| {
            let mut b = RcTreeBuilder::new();
            let n = b
                .add_line(b.input(), "load", Ohms::new(r), Farads::from_femto(10.0))
                .unwrap();
            b.mark_output(n).unwrap();
            b.build().unwrap()
        };
        let nets: Vec<(String, RcTree)> = (0..5)
            .map(|i| (format!("net{i}"), tapped_wire(100.0 * (i + 1) as f64)))
            .collect();
        let d = Design::from_extracted(CellLibrary::nmos_1981(), "inv_4x", nets).unwrap();
        assert_eq!(d.instance_count(), 5);
        assert_eq!(d.net_count(), 10); // feeder + payload per extracted net
        let report = d.analyze(0.5, Seconds::from_nano(100.0)).unwrap();
        assert_eq!(report.endpoints.len(), 5);
        assert!(report.endpoints.iter().any(|e| e.name == "net4/load"));
        // The longest wire is the critical endpoint.
        assert_eq!(report.critical_endpoint().unwrap().name, "net4/load");

        // Duplicate net names collide on the instance name.
        let dup = vec![
            ("x".to_string(), wire(1.0, 1.0)),
            ("x".to_string(), wire(2.0, 1.0)),
        ];
        assert!(matches!(
            Design::from_extracted(CellLibrary::nmos_1981(), "inv_4x", dup),
            Err(StaError::DuplicateInstance { .. })
        ));
        // Unknown driver cells are rejected up front.
        assert!(matches!(
            Design::from_extracted(CellLibrary::nmos_1981(), "nand_999x", Vec::new()),
            Err(StaError::UnknownCell { .. })
        ));
    }

    #[test]
    fn combinational_cycle_is_detected() {
        let mut d = Design::new(CellLibrary::nmos_1981());
        d.add_instance("a", "inv_1x").unwrap();
        d.add_instance("b", "inv_1x").unwrap();
        for (driver, load, name) in [("a", "b", "n1"), ("b", "a", "n2")] {
            d.add_net(Net {
                name: name.into(),
                driver: Driver::Instance(driver.into()),
                interconnect: wire(1.0, 1.0),
                sinks: vec![Sink {
                    node: "load".into(),
                    load: Load::Instance(load.into()),
                }],
            })
            .unwrap();
        }
        assert!(matches!(
            d.analyze(0.5, Seconds::from_nano(1.0)),
            Err(StaError::CombinationalCycle)
        ));
    }

    #[test]
    fn deeper_paths_arrive_later() {
        let d = buffer_chain();
        let report = d.analyze(0.5, Seconds::from_nano(100.0)).unwrap();
        let out = &report.endpoints[0];
        // The endpoint must arrive later than the sum of intrinsic delays
        // alone (wire delay is nonzero) and the window must be ordered.
        let intrinsic_sum = Seconds::from_nano(1.0) + Seconds::from_nano(0.8);
        assert!(out.arrival.max > intrinsic_sum);
        assert!(out.arrival.min >= intrinsic_sum);
    }
}
