//! Multi-stage timing graphs: instances, nets, arrival-time propagation and
//! critical-path extraction.
//!
//! A [`Design`] is a DAG of cell instances connected by nets.  Each net is
//! driven either by a primary input or by an instance's output, carries an
//! extracted interconnect [`RcTree`], and fans out to instance inputs and/or
//! primary outputs.  Arrival times are propagated in topological order as
//! **intervals** `[min, max]`: the lower ends use the Penfield–Rubinstein
//! lower delay bounds, the upper ends the upper bounds, so the reported
//! worst-case arrival at every endpoint is a *guaranteed* bound rather than
//! an estimate — exactly the certification use-case of the paper's abstract.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use rctree_core::algebra::{DelayValue, Poly2, SymbolicTimes};
use rctree_core::batch::{BatchScratch, BatchTimes, LaneScratch};
use rctree_core::bounds::{symbolic_delay_bounds, DelayBounds, SymbolicDelayBounds};
use rctree_core::cert::Certification;
use rctree_core::corner::CornerSet;
use rctree_core::element::Branch;
use rctree_core::incremental::{EditableTree, TreeEdit};
use rctree_core::intern::{Interner, NameId};
use rctree_core::moments::CharacteristicTimes;
use rctree_core::tree::{NodeId, RcTree};
use rctree_core::units::{Farads, Ohms, Seconds};

use crate::arena::NetArena;
use crate::cell::{Cell, CellLibrary};
use crate::error::{Result, StaError};
use crate::stage::{
    stage_delay_bounds, stage_delay_bounds_scaled, stage_symbolic_bounds, stage_symbolic_sweep,
    StageScales,
};

thread_local! {
    /// Per-thread reusable sweep buffers for the arena-backed stage
    /// evaluation.  The global pool's workers are persistent, so each
    /// worker's scratch survives across nets *and* across analysis calls —
    /// the steady state allocates nothing per net.
    static SWEEP_SCRATCH: RefCell<BatchScratch> = RefCell::new(BatchScratch::new());

    /// Per-thread reusable buffers for the multi-lane (all-corners) sweep,
    /// the corner analogue of [`SWEEP_SCRATCH`].
    static LANE_SCRATCH: RefCell<LaneScratch> = RefCell::new(LaneScratch::new());
}

/// What drives a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Driver {
    /// A primary input of the design (arrival time zero).
    PrimaryInput,
    /// The output of the named instance.
    Instance(String),
}

/// What a net sink connects to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Load {
    /// The input of the named instance.
    Instance(String),
    /// A primary output (endpoint) of the design.
    PrimaryOutput(String),
}

/// One sink of a net: a node of the interconnect tree plus what hangs there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sink {
    /// Name of the interconnect-tree node the load is attached to.
    pub node: String,
    /// What the sink drives.
    pub load: Load,
}

/// A net: driver, extracted interconnect and sinks.
#[derive(Debug, Clone)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// Who drives the net.
    pub driver: Driver,
    /// Extracted interconnect; its input node is the driver's output pin.
    pub interconnect: RcTree,
    /// Fan-out of the net.
    pub sinks: Vec<Sink>,
}

/// An arrival-time interval propagated through the graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalWindow {
    /// Earliest possible arrival (sum of lower bounds).
    pub min: Seconds,
    /// Latest possible arrival (sum of upper bounds) — the certified value.
    pub max: Seconds,
}

impl ArrivalWindow {
    /// The zero window (primary inputs).
    pub const ZERO: ArrivalWindow = ArrivalWindow {
        min: Seconds::ZERO,
        max: Seconds::ZERO,
    };
}

/// One endpoint (primary output) in the timing report.
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointTiming {
    /// Primary-output name.
    pub name: String,
    /// Arrival window at the endpoint.
    pub arrival: ArrivalWindow,
    /// The chain of instance names on the latest path to this endpoint,
    /// starting from the primary input side.
    ///
    /// The spine is shared (`Arc`) with the propagation state and with
    /// every endpoint reached through the same driver, so cloning an
    /// endpoint — and therefore assembling or cloning a whole report — no
    /// longer copies `O(depth)` strings per endpoint.
    pub critical_path: Arc<Vec<String>>,
}

/// Whole-design timing report.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Switching threshold used for all stage delays.
    pub threshold: f64,
    /// Required arrival time used for slack and certification.
    pub required_time: Seconds,
    /// Per-endpoint results, sorted by descending worst arrival.
    pub endpoints: Vec<EndpointTiming>,
}

impl TimingReport {
    /// The endpoint with the largest guaranteed-worst-case arrival, or
    /// `None` for a report with no endpoints (a design whose nets feed only
    /// instance inputs produces such a report — it is not an error).
    pub fn critical_endpoint(&self) -> Option<&EndpointTiming> {
        self.endpoints.first()
    }

    /// Worst slack in the design: `required_time − worst arrival upper
    /// bound`.  Negative slack means the design may miss timing.
    ///
    /// An empty report (no endpoints) has nothing that can miss timing, so
    /// its worst slack is the full `required_time` — the vacuous analogue
    /// of "every endpoint meets the budget with the entire budget to
    /// spare".
    pub fn worst_slack(&self) -> Seconds {
        self.slack_against(self.required_time)
    }

    /// [`TimingReport::worst_slack`] against an arbitrary required time:
    /// the arrivals are budget-independent, so one report answers slack
    /// queries for any budget (the server's `CERTIFY` verb).
    pub fn slack_against(&self, required_time: Seconds) -> Seconds {
        match self.critical_endpoint() {
            Some(e) => required_time - e.arrival.max,
            None => required_time,
        }
    }

    /// The slack as an **interval** induced by the arrival windows:
    /// `[required − maxₑ(arrival.max), required − maxₑ(arrival.min)]`.
    ///
    /// The lower end is the guaranteed ([`TimingReport::worst_slack`])
    /// slack; the upper end is the most optimistic slack consistent with
    /// the bounds.  A negative lower end with a positive upper end is
    /// exactly the [`Certification::Indeterminate`] region.  An empty
    /// report collapses to `(required, required)`.
    pub fn slack_interval(&self) -> (Seconds, Seconds) {
        let mut worst_max = None::<Seconds>;
        let mut worst_min = None::<Seconds>;
        for e in &self.endpoints {
            worst_max = Some(match worst_max {
                Some(m) if m >= e.arrival.max => m,
                _ => e.arrival.max,
            });
            worst_min = Some(match worst_min {
                Some(m) if m >= e.arrival.min => m,
                _ => e.arrival.min,
            });
        }
        match (worst_max, worst_min) {
            (Some(hi), Some(lo)) => (self.required_time - hi, self.required_time - lo),
            _ => (self.required_time, self.required_time),
        }
    }

    /// Three-valued certification of the whole design against the required
    /// time (the multi-stage generalisation of the paper's `OK` function).
    ///
    /// An empty report certifies as [`Certification::Pass`]: the verdict is
    /// the conjunction over all endpoints, and a conjunction over none is
    /// vacuously true.
    pub fn certification(&self) -> Certification {
        self.certification_against(self.required_time)
    }

    /// [`TimingReport::certification`] against an arbitrary required time.
    pub fn certification_against(&self, required_time: Seconds) -> Certification {
        let mut verdict = Certification::Pass;
        for e in &self.endpoints {
            let v = if e.arrival.max <= required_time {
                Certification::Pass
            } else if e.arrival.min > required_time {
                Certification::Fail
            } else {
                Certification::Indeterminate
            };
            verdict = verdict.and(v);
        }
        verdict
    }

    /// Composes the reports of disjoint design partitions (see
    /// [`Design::partition`]) into one whole-design report: endpoints are
    /// concatenated in part order and re-sorted with the same **stable**
    /// descending-worst-arrival comparator a monolithic analysis uses, so
    /// for a partition of a design whose parts are timing-independent the
    /// composed report renders byte-identically to the monolithic one
    /// (ties keep part order, exactly as the monolithic sort keeps net
    /// order).  Endpoint `Arc` spines are shared, not copied.
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty — a composition over no partitions has
    /// no threshold or budget to report.
    pub fn compose<'a, I>(parts: I) -> TimingReport
    where
        I: IntoIterator<Item = &'a TimingReport>,
    {
        let mut iter = parts.into_iter();
        let first = iter.next().expect("compose needs at least one report");
        let mut endpoints = first.endpoints.clone();
        for part in iter {
            debug_assert_eq!(part.threshold, first.threshold, "mixed-threshold compose");
            endpoints.extend(part.endpoints.iter().cloned());
        }
        endpoints.sort_by(|a, b| b.arrival.max.value().total_cmp(&a.arrival.max.value()));
        TimingReport {
            threshold: first.threshold,
            required_time: first.required_time,
            endpoints,
        }
    }
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "timing report (threshold {:.2}, required {})",
            self.threshold, self.required_time
        )?;
        for e in &self.endpoints {
            writeln!(
                f,
                "  {}: arrival [{}, {}] via {}",
                e.name,
                e.arrival.min,
                e.arrival.max,
                e.critical_path.join(" -> ")
            )?;
        }
        writeln!(f, "  worst slack: {}", self.worst_slack())?;
        writeln!(f, "  certification: {}", self.certification())
    }
}

/// Per-corner timing results of one [`Design::analyze_corners`] call: one
/// full [`TimingReport`] per corner, in corner (lane) order.  Index 0 is
/// always the nominal corner and is bit-identical to the single-corner
/// [`Design::analyze_with_jobs`] report.
#[derive(Debug, Clone)]
pub struct CornerAnalysis {
    /// Corner names in lane order.
    names: Vec<String>,
    /// One report per corner, parallel to `names`.
    reports: Vec<TimingReport>,
}

impl CornerAnalysis {
    /// Corner names in lane order (index 0 is the nominal corner).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of corners analysed (at least 1).
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Always `false`: the nominal corner is always present.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The report of corner `k`, or `None` when `k` is out of range.
    pub fn report(&self, k: usize) -> Option<&TimingReport> {
        self.reports.get(k)
    }

    /// Every corner's report, in lane order.
    pub fn reports(&self) -> &[TimingReport] {
        &self.reports
    }

    /// Index of the corner with the smallest slack against
    /// `required_time`.  Ties break to the lowest lane index, so the
    /// nominal corner wins a tie against any scaled corner — a stable,
    /// scheduling-independent answer.
    pub fn worst_against(&self, required_time: Seconds) -> usize {
        let mut worst = 0usize;
        let mut slack = self.reports[0].slack_against(required_time);
        for (k, report) in self.reports.iter().enumerate().skip(1) {
            let s = report.slack_against(required_time);
            if s < slack {
                worst = k;
                slack = s;
            }
        }
        worst
    }

    /// Index of the worst corner against the analysis' own required time.
    pub fn worst_index(&self) -> usize {
        self.worst_against(self.reports[0].required_time)
    }

    /// Whole-deck certification against `required_time`: the conjunction
    /// over every corner (the deck passes only when **all** corners pass).
    pub fn certification_against(&self, required_time: Seconds) -> Certification {
        self.reports
            .iter()
            .fold(Certification::Pass, |verdict, report| {
                verdict.and(report.certification_against(required_time))
            })
    }
}

/// A gate-level design with extracted interconnect.
///
/// The library, instance table and nets live behind an [`Arc`] so that the
/// persistent global worker pool ([`rctree_par::global_pool`]) can hold
/// owned (`'static`) references to them while a sharded analysis is in
/// flight; mutation goes through [`Arc::make_mut`].  Pool jobs reference
/// the core only through a [`Weak`] (upgraded per net while the analysing
/// borrow keeps it alive), so even a straggler runner still queued on the
/// pool after an analysis returns cannot pin the strong count — make_mut
/// copies only when the *caller* holds other clones of the design.
#[derive(Debug, Clone)]
pub struct Design {
    shared: Arc<DesignCore>,
    /// Cached per-net stage results backing the incremental
    /// [`Design::apply_eco`] path; invalidated by structural mutation.
    eco: Option<EcoState>,
    /// Id of the last [`DesignSnapshot`] this design published, `0` when
    /// no published snapshot reflects the current state.  Guards
    /// [`Design::publish_after_eco`] against reusing the per-net views of
    /// an *outdated* snapshot: any mutation outside the publish path
    /// (structural edits, a direct [`Design::apply_eco`]) zeroes it, so
    /// only the design's own latest snapshot ever qualifies for reuse.
    published: u64,
}

/// Process-unique snapshot ids (see [`Design::published`]); `0` is
/// reserved for "none".
static NEXT_SNAPSHOT_ID: AtomicU64 = AtomicU64::new(1);

/// The shareable heart of a [`Design`].
#[derive(Debug)]
struct DesignCore {
    library: CellLibrary,
    /// instance name → cell name.
    instances: BTreeMap<String, String>,
    nets: Vec<Net>,
    /// Deck-scoped name arena: every net name is interned once and the hot
    /// maps key on the dense [`NameId`] instead of a `String`.
    names: Interner,
    /// Net name (interned) → index.  Maintained by [`Design::add_net`],
    /// which rejects duplicate names, so every name-addressed operation
    /// (ECO edits, snapshot queries) has exactly one target.
    net_index: HashMap<NameId, usize>,
    /// Per-net resolved stage augmentation, parallel to `nets`: built at
    /// [`Design::add_net`] and refreshed at every ECO commit, so the hot
    /// analysis path never re-resolves instance or node names.
    aug: Vec<NetAug>,
    /// Lazily built SoA arena over every net's augmented stage arrays
    /// (see [`NetArena`]); invalidated whenever a net's interconnect or
    /// the net list changes.
    arena: Mutex<Option<Arc<NetArena>>>,
    /// Lazily built arrival-propagation topology; invalidated whenever the
    /// instance table or the net list changes (ECO edits keep it — they
    /// touch interconnect values, never connectivity).
    topo: Mutex<Option<Arc<PropagationCache>>>,
    /// Active PVT corner set, `None` for a nominal-only design.  Corner 0
    /// of any installed set is the implicit unscaled nominal corner, so
    /// lane 0 of the arena — and every single-corner code path — is
    /// unaffected by this field.
    corners: Option<Arc<CornerSet>>,
}

impl Clone for DesignCore {
    fn clone(&self) -> Self {
        DesignCore {
            library: self.library.clone(),
            instances: self.instances.clone(),
            nets: self.nets.clone(),
            names: self.names.clone(),
            net_index: self.net_index.clone(),
            aug: self.aug.clone(),
            // A core is only cloned on the mutation path (`Arc::make_mut`),
            // which would invalidate the caches anyway; rebuild on demand.
            arena: Mutex::new(None),
            topo: Mutex::new(None),
            corners: self.corners.clone(),
        }
    }
}

/// A net's stage augmentation with every name resolved: the driver's switch
/// resistance and the `(node, load)` pairs of its sinks.  Parallel to
/// `DesignCore::nets`; kept exact across ECO commits (structural edits
/// renumber [`NodeId`]s, so commits rewrite `loads` from the engine's
/// bindings).
#[derive(Debug, Clone)]
pub(crate) struct NetAug {
    /// Driver switch resistance (zero for primary inputs).
    pub(crate) driver_r: Ohms,
    /// Per sink, in net sink order: interconnect node and added load
    /// capacitance.
    pub(crate) loads: Vec<(NodeId, Farads)>,
}

/// Delay window of one sink of a net, produced by the per-net stage sweep:
/// `(lower, upper)` stage-delay bounds.  What the sink *drives* lives in
/// the net itself and in [`PropagationCache::sink_po`] — the windows stay
/// plain numbers, so re-timing a net allocates no strings.
type Window = (Seconds, Seconds);

/// One sink of a net as the persistent ECO engine sees it: the interconnect
/// node it hangs on (re-resolved by name after structural edits) plus the
/// load it adds to the augmented stage tree.
#[derive(Debug, Clone)]
struct SinkBinding {
    /// Node name within the net's interconnect (the stable handle).
    name: String,
    /// Current id of that node in the engine's tree.
    node: NodeId,
    /// Added load capacitance (gate input capacitance, zero for primary
    /// outputs).
    load_cap: Farads,
    /// What the sink drives (materialised into snapshot views).
    load: Load,
}

/// The persistent per-net ECO engine: a live [`EditableTree`] over the
/// net's interconnect plus the cached augmentation data (driver resistance
/// and per-sink load capacitances) of its stage tree.
///
/// [`EcoEdit`]s are mapped straight onto the live engine —
/// `O(depth · log n)` for value edits — instead of seeding a throwaway
/// `EditableTree` per call; dirty-net re-timing then runs one flat
/// pre-order sweep over the engine's (always exact) node table via
/// [`stage_delay_bounds`], which is **bit-identical** to the one-shot
/// [`Design::analyze_with_jobs`] evaluation of the same net.
#[derive(Debug, Clone)]
struct NetEngine {
    /// Live engine over the net's interconnect; its node table and
    /// pre-order are exact at all times (the committed design tree is a
    /// clone of it).
    tree: EditableTree,
    /// Cached driver switch resistance (the library is immutable).
    driver_r: Ohms,
    /// Sink bindings in `net.sinks` order.
    sinks: Vec<SinkBinding>,
}

/// One instance's propagated arrival state: the worst input window and the
/// instance chain of the path that set it.  The chain is an `Arc`-shared
/// spine: propagating it to a fan-out instance or an endpoint is one
/// refcount bump, and only `driver_path` (once per net, when the net's
/// driver changes) materialises a new `Vec`.
type InstArrival = (ArrivalWindow, Arc<Vec<String>>);

/// The shared empty path spine (primary-input arrivals).
fn empty_path() -> Arc<Vec<String>> {
    static EMPTY: std::sync::OnceLock<Arc<Vec<String>>> = std::sync::OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::new(Vec::new())))
}

/// The cached arrival-propagation topology of a design: everything the
/// serial Kahn pass recomputed per call, hoisted so the ECO path can
/// re-propagate only the affected fan-out cone of an edit.
///
/// Instances are addressed by their index in the design's (sorted) instance
/// table; nets by their index in the net list.  Invalidated (together with
/// the rest of [`EcoState`]) by any structural design mutation —
/// [`Design::add_instance`] / [`Design::add_net`] clear the cache, so the
/// next call falls back to a full propagation.
#[derive(Debug, Clone)]
struct PropagationCache {
    /// Instance names in table (sorted) order.
    inst_names: Vec<String>,
    /// Cached per-instance intrinsic delay.
    intrinsic: Vec<Seconds>,
    /// Net indices ordered by driver topological rank (the processing
    /// order of the full propagation).
    net_order: Vec<usize>,
    /// Position of each net in `net_order`.
    net_rank: Vec<usize>,
    /// Driving instance of each net (`None` for primary inputs).
    net_driver: Vec<Option<usize>>,
    /// Per instance: the `(net, sink)` pairs feeding it, sorted by
    /// `(net_rank, sink index)` — exactly the order in which the full pass
    /// folds candidates into the instance's arrival window.
    in_edges: Vec<Vec<(usize, usize)>>,
    /// Per instance: `net_order` ranks of the nets it drives.
    out_ranks: Vec<Vec<usize>>,
    /// Per net, per sink: the target instance index (`None` for primary
    /// outputs).
    sink_inst: Vec<Vec<Option<usize>>>,
    /// Per net, per sink: the primary-output name for endpoint sinks
    /// (`None` for instance loads).  Lets the propagation passes run on
    /// plain [`Window`]s without carrying a cloned [`Load`] per window.
    sink_po: Vec<Vec<Option<String>>>,
}

/// Cached analysis state backing the incremental [`Design::apply_eco`]
/// path: per-net persistent engines and stage windows, the propagation
/// topology, and the per-instance arrival windows / per-net endpoint
/// contributions of the last report.
///
/// All of it is kept bit-consistent with what a full
/// [`Design::analyze_with_jobs`] of the current design would produce; the
/// warm path recomputes only dirty nets' windows and the affected cone of
/// the arrival propagation.
#[derive(Debug, Clone)]
struct EcoState {
    threshold: f64,
    delays: Vec<Vec<Window>>,
    engines: Vec<NetEngine>,
    prop: Arc<PropagationCache>,
    arrivals: Vec<InstArrival>,
    endpoints: Vec<Vec<EndpointTiming>>,
    /// Per-corner companion state when the design has a multi-corner set
    /// installed; `None` for nominal-only designs.  Maintained through the
    /// same dirty-net commits and cone walks as the nominal fields, so a
    /// publish always has every corner's windows current.
    corners: Option<CornerState>,
}

/// Incrementally maintained multi-corner analysis state: the corner set
/// plus one [`CornerLane`] per **extra** corner (arena lane `k` ↔
/// `lanes[k − 1]`; the nominal lane 0 *is* the base [`EcoState`]).
#[derive(Debug, Clone)]
struct CornerState {
    set: Arc<CornerSet>,
    lanes: Vec<CornerLane>,
}

/// One extra corner's worth of [`EcoState`]: the corner's scaled intrinsic
/// delays plus its own windows, arrivals and endpoint contributions — all
/// re-derived in lock-step with the nominal lane (same dirty nets, same
/// cone ranks).
#[derive(Debug, Clone)]
struct CornerLane {
    /// Per-instance intrinsic delay scaled by the corner's `delay_scale`.
    intrinsic: Vec<Seconds>,
    delays: Vec<Vec<Window>>,
    arrivals: Vec<InstArrival>,
    endpoints: Vec<Vec<EndpointTiming>>,
}

/// The [`StageScales`] of one net at corner `k`: wire scales honour the
/// set's per-net override, cell-side scales are always the corner's global
/// `r_scale`/`c_scale` (cell parameters carry no per-net override).
fn net_stage_scales(set: &CornerSet, net_name: &str, k: usize) -> StageScales {
    let corner = set.corner(k);
    let (wire_r, wire_c) = set.wire_scales(net_name, k);
    StageScales {
        wire_r,
        wire_c,
        driver_r: corner.r_scale,
        load_c: corner.c_scale,
    }
}

/// A corner's per-instance intrinsic delays: each nominal value scaled by
/// the corner's `delay_scale` with **one** multiplication — the same bits a
/// materialized corner design's scaled cell library produces.
fn scale_intrinsic(nominal: &[Seconds], delay_scale: f64) -> Vec<Seconds> {
    nominal
        .iter()
        .map(|d| Seconds::new(d.value() * delay_scale))
        .collect()
}

/// A copy of `tree` with every branch resistance scaled by `r_scale` and
/// every branch/node capacitance scaled by `c_scale` — one multiplication
/// per element, nodes inserted in pre-order with their original names, so
/// a sweep over the copy sees exactly the values the arena's corner lane
/// stores, in the same order ([`Design::materialize_corner`]'s oracle
/// contract).
fn scale_tree(tree: &RcTree, r_scale: f64, c_scale: f64) -> Result<RcTree> {
    let input = tree.input();
    let mut b = rctree_core::builder::RcTreeBuilder::with_input_name(tree.name(input)?);
    let mut map = vec![NodeId::INPUT; tree.node_count()];
    map[input.index()] = b.input();
    let new_input = b.input();
    b.add_capacitance(
        new_input,
        Farads::new(tree.capacitance(input)?.value() * c_scale),
    )?;
    if tree.is_output(input)? {
        b.mark_output(new_input)?;
    }
    for id in tree.preorder() {
        if id == input {
            continue;
        }
        let parent = map[tree.parent(id)?.expect("non-input node").index()];
        let name = tree.name(id)?;
        let new_id = match tree.branch(id)?.expect("non-input node") {
            Branch::Resistor { resistance } => {
                b.add_resistor(parent, name, Ohms::new(resistance.value() * r_scale))?
            }
            Branch::Line {
                resistance,
                capacitance,
            } => b.add_line(
                parent,
                name,
                Ohms::new(resistance.value() * r_scale),
                Farads::new(capacitance.value() * c_scale),
            )?,
        };
        b.add_capacitance(new_id, Farads::new(tree.capacitance(id)?.value() * c_scale))?;
        if tree.is_output(id)? {
            b.mark_output(new_id)?;
        }
        map[id.index()] = new_id;
    }
    Ok(b.build()?)
}

impl NetEngine {
    /// Seeds an engine from a net's committed interconnect (one `O(n)`
    /// sweep — paid once per net per cache warm-up, not per edit).
    fn build(core: &DesignCore, net: &Net) -> Result<NetEngine> {
        let driver_r = match &net.driver {
            Driver::PrimaryInput => Ohms::ZERO,
            Driver::Instance(inst) => {
                core.library
                    .cell(core.cell_of(&net.name, inst)?)?
                    .drive_resistance
            }
        };
        let mut sinks = Vec::with_capacity(net.sinks.len());
        for sink in &net.sinks {
            let node = net.interconnect.node_by_name(&sink.node)?;
            let load_cap = match &sink.load {
                Load::Instance(inst) => {
                    core.library
                        .cell(core.cell_of(&net.name, inst)?)?
                        .input_capacitance
                }
                Load::PrimaryOutput(_) => Farads::ZERO,
            };
            sinks.push(SinkBinding {
                name: sink.node.clone(),
                node,
                load_cap,
                load: sink.load.clone(),
            });
        }
        Ok(NetEngine {
            tree: EditableTree::new(net.interconnect.clone()),
            driver_r,
            sinks,
        })
    }

    /// Maps one design-level edit onto the live engine.  Returns whether
    /// the edit was structural (graft/prune), i.e. whether node ids may
    /// have been renumbered.
    fn apply(&mut self, net_name: &str, kind: &EcoEditKind) -> Result<bool> {
        let tree_edit = resolve_edit(net_name, kind, self.tree.tree())?;
        let structural = matches!(
            tree_edit,
            TreeEdit::GraftSubtree { .. } | TreeEdit::PruneSubtree { .. }
        );
        self.tree.apply(&tree_edit).map_err(StaError::Core)?;
        Ok(structural)
    }

    /// Re-resolves the sink bindings by name after structural edits,
    /// enforcing the sink-survival rule (a prune may not remove a node a
    /// sink hangs on).
    fn rebind_sinks(&mut self, net_name: &str) -> Result<()> {
        for s in &mut self.sinks {
            s.node =
                self.tree
                    .tree()
                    .node_by_name(&s.name)
                    .map_err(|_| StaError::UnknownSinkNode {
                        net: net_name.to_string(),
                        node: s.name.clone(),
                    })?;
        }
        Ok(())
    }

    /// Stage windows of every sink, via the flat pre-order sweep (see
    /// [`stage_delay_bounds`]) — bit-identical to the one-shot evaluation
    /// of the same (committed) net.
    fn windows(&self, threshold: f64) -> Result<Vec<Window>> {
        let loads: Vec<(NodeId, Farads)> =
            self.sinks.iter().map(|s| (s.node, s.load_cap)).collect();
        let bounds = stage_delay_bounds(self.driver_r, self.tree.tree(), &loads, threshold)?;
        Ok(bounds.into_iter().map(|b| (b.lower, b.upper)).collect())
    }

    /// [`NetEngine::windows`] at a PVT corner: the same flat sweep with
    /// the corner's scale factors applied per element
    /// ([`stage_delay_bounds_scaled`]) — bit-identical to sweeping the
    /// corresponding corner lane of the arena built from the committed net.
    fn windows_scaled(&self, threshold: f64, scales: StageScales) -> Result<Vec<Window>> {
        let loads: Vec<(NodeId, Farads)> =
            self.sinks.iter().map(|s| (s.node, s.load_cap)).collect();
        let bounds =
            stage_delay_bounds_scaled(self.driver_r, self.tree.tree(), &loads, threshold, scales)?;
        Ok(bounds.into_iter().map(|b| (b.lower, b.upper)).collect())
    }
}

/// Arrival window at a net's driver output: zero for primary inputs, the
/// driver's worst input window plus its intrinsic delay otherwise.
///
/// `intrinsic` is passed explicitly (instead of read off the cache) so the
/// per-corner propagation passes can supply the corner's `delay_scale`d
/// intrinsic vector; the nominal passes hand in `&cache.intrinsic`
/// unchanged.
fn driver_window(
    intrinsic: &[Seconds],
    arrivals: &[InstArrival],
    driver: Option<usize>,
) -> ArrivalWindow {
    match driver {
        None => ArrivalWindow::ZERO,
        Some(d) => {
            let input = arrivals[d].0;
            let intrinsic = intrinsic[d];
            ArrivalWindow {
                min: input.min + intrinsic,
                max: input.max + intrinsic,
            }
        }
    }
}

/// The instance chain of the latest path through a net's driver: the
/// driver's own spine extended by its name.  This is the only place a new
/// spine `Vec` is materialised — `O(depth)` once per net, after which every
/// endpoint and fan-out instance shares it by `Arc`.
fn driver_path(
    cache: &PropagationCache,
    arrivals: &[InstArrival],
    driver: Option<usize>,
) -> Arc<Vec<String>> {
    match driver {
        None => empty_path(),
        Some(d) => {
            let mut path = Vec::with_capacity(arrivals[d].1.len() + 1);
            path.extend(arrivals[d].1.iter().cloned());
            path.push(cache.inst_names[d].clone());
            Arc::new(path)
        }
    }
}

/// Full arrival propagation over every net, in driver-topological order:
/// produces the per-instance arrival windows and the per-net endpoint
/// contributions.  Infallible — every lookup was resolved when the
/// [`PropagationCache`] was built.
fn run_full(
    cache: &PropagationCache,
    intrinsic: &[Seconds],
    delays: &[Vec<Window>],
) -> (Vec<InstArrival>, Vec<Vec<EndpointTiming>>) {
    let mut obs_span = rctree_obs::span("sta.propagate_full");
    obs_span.attr_u64("nets", cache.net_order.len() as u64);
    let mut arrivals: Vec<InstArrival> =
        vec![(ArrivalWindow::ZERO, empty_path()); cache.inst_names.len()];
    let mut endpoints: Vec<Vec<EndpointTiming>> = vec![Vec::new(); delays.len()];
    for &net in &cache.net_order {
        let driver = cache.net_driver[net];
        let d_arr = driver_window(intrinsic, &arrivals, driver);
        let d_path = driver_path(cache, &arrivals, driver);
        for ((delay, &target), po) in delays[net]
            .iter()
            .zip(&cache.sink_inst[net])
            .zip(&cache.sink_po[net])
        {
            let window = ArrivalWindow {
                min: d_arr.min + delay.0,
                max: d_arr.max + delay.1,
            };
            match (target, po) {
                (Some(u), _) => {
                    if window.max > arrivals[u].0.max {
                        arrivals[u] = (window, d_path.clone());
                    }
                }
                (None, Some(name)) => endpoints[net].push(EndpointTiming {
                    name: name.clone(),
                    arrival: window,
                    critical_path: d_path.clone(),
                }),
                // Defensive: a `None` target without a primary-output name
                // means the sink tables drifted apart, which no
                // construction path produces; skip rather than panic.
                (None, None) => {}
            }
        }
    }
    (arrivals, endpoints)
}

/// Recomputes one instance's arrival by folding every in-edge candidate in
/// `(net_rank, sink)` order — the exact fold the full pass performs
/// incrementally, so the result is bit-identical to a full propagation.
fn refold_instance(
    cache: &PropagationCache,
    intrinsic: &[Seconds],
    delays: &[Vec<Window>],
    arrivals: &[InstArrival],
    inst: usize,
) -> InstArrival {
    let mut best = ArrivalWindow::ZERO;
    let mut winner: Option<usize> = None;
    for &(net, k) in &cache.in_edges[inst] {
        let Some(delay) = delays[net].get(k) else {
            continue; // defensive: window list shorter than the sink table
        };
        let d_arr = driver_window(intrinsic, arrivals, cache.net_driver[net]);
        let window = ArrivalWindow {
            min: d_arr.min + delay.0,
            max: d_arr.max + delay.1,
        };
        if window.max > best.max {
            best = window;
            winner = Some(net);
        }
    }
    match winner {
        None => (ArrivalWindow::ZERO, empty_path()),
        Some(net) => (best, driver_path(cache, arrivals, cache.net_driver[net])),
    }
}

/// Cone-limited re-propagation: starting from the dirty nets, re-derives
/// endpoint contributions and instance arrivals only where they can have
/// changed, walking `net_order` ranks monotonically (a net's driver
/// arrival is final before the net is processed, because every in-edge of
/// an instance sits at a strictly smaller rank than every out-edge).
/// Instances whose recomputed arrival is unchanged prune their fan-out
/// from the cone.  Infallible, like [`run_full`].
fn run_cone(
    cache: &PropagationCache,
    intrinsic: &[Seconds],
    delays: &[Vec<Window>],
    arrivals: &mut [InstArrival],
    endpoints: &mut [Vec<EndpointTiming>],
    dirty_ranks: impl IntoIterator<Item = usize>,
) {
    let mut obs_span = rctree_obs::span("sta.propagate_cone");
    let mut cone_ranks = 0u64;
    let mut pending: BTreeSet<usize> = dirty_ranks.into_iter().collect();
    while let Some(rank) = pending.pop_first() {
        cone_ranks += 1;
        let net = cache.net_order[rank];
        let driver = cache.net_driver[net];
        let d_arr = driver_window(intrinsic, arrivals, driver);

        // Refresh this net's endpoint contributions (kept in sink order,
        // matching the full pass) and collect its target instances.
        let mut eps: Vec<EndpointTiming> = Vec::new();
        let mut targets: Vec<usize> = Vec::new();
        for ((delay, &target), po) in delays[net]
            .iter()
            .zip(&cache.sink_inst[net])
            .zip(&cache.sink_po[net])
        {
            match (target, po) {
                (Some(u), _) => {
                    if !targets.contains(&u) {
                        targets.push(u);
                    }
                }
                (None, Some(name)) => eps.push(EndpointTiming {
                    name: name.clone(),
                    arrival: ArrivalWindow {
                        min: d_arr.min + delay.0,
                        max: d_arr.max + delay.1,
                    },
                    critical_path: empty_path(),
                }),
                (None, None) => {}
            }
        }
        if !eps.is_empty() {
            let d_path = driver_path(cache, arrivals, driver);
            for e in &mut eps {
                e.critical_path = d_path.clone();
            }
        }
        endpoints[net] = eps;

        for u in targets {
            let refolded = refold_instance(cache, intrinsic, delays, arrivals, u);
            if refolded != arrivals[u] {
                arrivals[u] = refolded;
                for &out in &cache.out_ranks[u] {
                    pending.insert(out);
                }
            }
        }
    }
    obs_span.attr_u64("cone_ranks", cone_ranks);
}

/// Assembles the final report from per-net endpoint contributions:
/// concatenation in `net_order` (the order the full pass pushes endpoints)
/// followed by the stable sort on worst arrival.
fn assemble_report(
    threshold: f64,
    required_time: Seconds,
    cache: &PropagationCache,
    endpoints: &[Vec<EndpointTiming>],
) -> TimingReport {
    let mut all: Vec<EndpointTiming> = Vec::new();
    for &net in &cache.net_order {
        all.extend(endpoints[net].iter().cloned());
    }
    all.sort_by(|a, b| b.arrival.max.value().total_cmp(&a.arrival.max.value()));
    TimingReport {
        threshold,
        required_time,
        endpoints: all,
    }
}

/// One symbolic arrival candidate: the `[min, max]` arrival-window
/// polynomials of a single structural path family plus its instance chain.
///
/// The scalar propagation realizes, at every instance, the **maximum** over
/// its in-edge windows; under a continuum of `(r_scale, c_scale)` points
/// that maximum is attained by different paths in different regions, so the
/// symbolic pass carries the whole candidate set and defers the fold to
/// evaluation time.  Candidates are kept in the exact order the scalar pass
/// folds them (`(net_rank, sink)` order with the zero window first), and
/// every fold uses strict `>` — so at any evaluation point the selected
/// candidate is the one the scalar pass would have realized, ties included.
#[derive(Debug, Clone)]
struct SymbolicCandidate {
    /// Earliest-arrival polynomial (sum of intrinsics and lower bounds).
    min: Poly2,
    /// Latest-arrival polynomial (sum of intrinsics and upper bounds) —
    /// the certified value; the fold key.
    max: Poly2,
    /// Instance chain of the candidate's path (shared spine, like the
    /// scalar [`InstArrival`]).
    path: Arc<Vec<String>>,
}

impl SymbolicCandidate {
    /// The zero candidate (primary-input arrival), the fold's initial
    /// element at every instance — mirroring the scalar pass's
    /// [`ArrivalWindow::ZERO`] initialisation.
    fn zero() -> SymbolicCandidate {
        SymbolicCandidate {
            min: Poly2::ZERO,
            max: Poly2::ZERO,
            path: empty_path(),
        }
    }
}

/// Appends `cand` unless an **earlier** candidate dominates it
/// coefficientwise.  A dominated candidate's `max` never *strictly*
/// exceeds its dominator's at any `(r, c)` with nonnegative scales, and
/// every fold breaks ties toward the earlier candidate — so pruning it
/// changes no evaluation, no box maximum and no realized path, it only
/// bounds the candidate-set growth.  Only incoming candidates are ever
/// pruned; earlier list entries are never revisited.
fn push_candidate(list: &mut Vec<SymbolicCandidate>, cand: SymbolicCandidate) {
    if list.iter().any(|e| e.max.dominates(&cand.max)) {
        return;
    }
    list.push(cand);
}

/// One endpoint of the symbolic analysis: its primary-output name and the
/// full candidate set of arrival-window polynomials reaching it.
#[derive(Debug, Clone)]
pub struct SymbolicEndpointTiming {
    name: String,
    candidates: Vec<SymbolicCandidate>,
}

impl SymbolicEndpointTiming {
    /// Primary-output name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of surviving arrival candidates (≥ 1).
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// The endpoint's arrival window at one `(r_scale, c_scale)` point:
    /// the strict-`>` fold over the candidate maxima, exactly the scalar
    /// propagation's selection.
    pub fn arrival_at(&self, r_scale: f64, c_scale: f64) -> ArrivalWindow {
        self.timing_at(r_scale, c_scale).arrival
    }

    /// Sensitivities `(dT/dr, dT/dc)` of the endpoint's **upper** arrival
    /// bound at `(r_scale, c_scale)`: the gradient of the candidate
    /// realized there.
    pub fn sens_at(&self, r_scale: f64, c_scale: f64) -> (f64, f64) {
        let best = self.winner_at(r_scale, c_scale);
        (
            best.max.eval_dr(r_scale, c_scale),
            best.max.eval_dc(r_scale, c_scale),
        )
    }

    /// The candidate the strict-`>` fold selects at `(r, c)`.
    fn winner_at(&self, r: f64, c: f64) -> &SymbolicCandidate {
        let mut best = &self.candidates[0];
        let mut best_max = best.max.eval(r, c);
        for cand in &self.candidates[1..] {
            let v = cand.max.eval(r, c);
            if v > best_max {
                best = cand;
                best_max = v;
            }
        }
        best
    }

    /// The full [`EndpointTiming`] (window + critical path) at `(r, c)`.
    fn timing_at(&self, r: f64, c: f64) -> EndpointTiming {
        let best = self.winner_at(r, c);
        EndpointTiming {
            name: self.name.clone(),
            arrival: ArrivalWindow {
                min: Seconds::new(best.min.eval(r, c)),
                max: Seconds::new(best.max.eval(r, c)),
            },
            critical_path: Arc::clone(&best.path),
        }
    }
}

/// The result of certifying a symbolic analysis over a whole scale box
/// (the `CERTIFY … --over` verb): the exact worst upper-bound arrival over
/// the continuum, where it occurs, and the verdict there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxCertification {
    /// The largest endpoint arrival upper bound anywhere in the box.
    pub worst_arrival: Seconds,
    /// The `(r_scale, c_scale)` point attaining it.
    pub at: (f64, f64),
    /// `required_time − worst_arrival` — the guaranteed slack over the
    /// **entire** box (nonnegative ⇒ every point in the box meets timing).
    pub worst_slack: Seconds,
    /// Three-valued certification of the full report **at the worst
    /// point**.  [`Certification::Pass`] here is equivalent to a pass at
    /// every point of the box (the arrivals are upper bounds and the worst
    /// point maximises them); `Fail`/`Indeterminate` describe the worst
    /// point itself.
    pub verdict: Certification,
}

/// A whole-design **symbolic** timing analysis: per-endpoint arrival
/// windows as degree-≤2 polynomials in the global wire scales
/// `(r_scale, c_scale)`, computed in the same one-post-order +
/// one-pre-order traversal per net as the scalar analysis.
///
/// Evaluating at any point ([`SymbolicAnalysis::report_at`]) reproduces
/// the materialized-corner analysis at that uniform scale (to float
/// round-off in the coefficient accumulation order); certifying over a box
/// ([`SymbolicAnalysis::certify_over`]) finds the **exact** continuum
/// worst case via the quadratics' critical points — no sampling grid.
#[derive(Debug, Clone)]
pub struct SymbolicAnalysis {
    threshold: f64,
    required_time: Seconds,
    endpoints: Vec<SymbolicEndpointTiming>,
}

impl SymbolicAnalysis {
    /// The switching threshold the stage bounds were computed at.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The required arrival time carried into evaluated reports.
    pub fn required_time(&self) -> Seconds {
        self.required_time
    }

    /// Per-endpoint symbolic timings, in propagation (net-order) order.
    pub fn endpoints(&self) -> &[SymbolicEndpointTiming] {
        &self.endpoints
    }

    /// Looks up one endpoint's symbolic timing by primary-output name.
    pub fn endpoint(&self, name: &str) -> Option<&SymbolicEndpointTiming> {
        self.endpoints.iter().find(|e| e.name == name)
    }

    /// Evaluates the analysis at one `(r_scale, c_scale)` point into an
    /// ordinary [`TimingReport`]: every endpoint folds its candidates with
    /// the scalar pass's strict-`>` rule, then the endpoints are sorted
    /// with the same stable descending-worst-arrival comparator.
    pub fn report_at(&self, r_scale: f64, c_scale: f64) -> TimingReport {
        let mut endpoints: Vec<EndpointTiming> = self
            .endpoints
            .iter()
            .map(|e| e.timing_at(r_scale, c_scale))
            .collect();
        endpoints.sort_by(|a, b| b.arrival.max.value().total_cmp(&a.arrival.max.value()));
        TimingReport {
            threshold: self.threshold,
            required_time: self.required_time,
            endpoints,
        }
    }

    /// Certifies the design against `required_time` over the **continuum**
    /// box `r_scale ∈ [r.0, r.1] × c_scale ∈ [c.0, c.1]`: the worst
    /// arrival is the exact maximum of every candidate polynomial over the
    /// box ([`Poly2::max_over_box`] — corners, edge stationary points and
    /// interior critical points of the quadratics), folded with strict `>`
    /// in candidate order so the reported witness point is deterministic.
    ///
    /// # Panics
    ///
    /// As for [`Poly2::max_over_box`]: non-finite or inverted ranges.
    pub fn certify_over(
        &self,
        required_time: Seconds,
        r: (f64, f64),
        c: (f64, f64),
    ) -> BoxCertification {
        let mut worst: Option<(f64, (f64, f64))> = None;
        for endpoint in &self.endpoints {
            for cand in &endpoint.candidates {
                let (v, at) = cand.max.max_over_box(r, c);
                match worst {
                    Some((w, _)) if v <= w => {}
                    _ => worst = Some((v, at)),
                }
            }
        }
        // An endpoint-less design has nothing that can miss timing; report
        // the box's lower corner as the (vacuous) witness.
        let (worst_arrival, at) = worst.unwrap_or((0.0, (r.0, c.0)));
        let verdict = self
            .report_at(at.0, at.1)
            .certification_against(required_time);
        BoxCertification {
            worst_arrival: Seconds::new(worst_arrival),
            at,
            worst_slack: required_time - Seconds::new(worst_arrival),
            verdict,
        }
    }
}

/// Full **symbolic** arrival propagation over every net, in the same
/// driver-topological net order as [`run_full`]: instead of realizing the
/// per-instance max fold at `(1, 1)`, every instance accumulates the
/// candidate set of arrival polynomials reaching it, and endpoints collect
/// their candidates in the scalar pass's push order.
///
/// Folding any produced candidate set at a point with strict `>` (first
/// maximal candidate wins) yields exactly the window and path the scalar
/// pass realizes at that uniform scale: insertion order equals the scalar
/// fold order, each candidate's evaluated `max` equals the corresponding
/// scalar window's `max`, and dominated candidates ([`push_candidate`])
/// can never be selected.  Infallible, like [`run_full`].
fn run_symbolic(
    cache: &PropagationCache,
    intrinsic: &[Seconds],
    bounds: &[Vec<SymbolicDelayBounds>],
) -> Vec<SymbolicEndpointTiming> {
    let mut arrivals: Vec<Vec<SymbolicCandidate>> =
        vec![vec![SymbolicCandidate::zero()]; cache.inst_names.len()];
    let mut endpoints: Vec<SymbolicEndpointTiming> = Vec::new();
    for &net in &cache.net_order {
        let driver = cache.net_driver[net];
        // The net's driver-output candidates: each of the driver's arrival
        // candidates shifted by the (constant) intrinsic delay, its path
        // extended by the driver's name — the candidate-set analogue of
        // `driver_window` + `driver_path`.
        let d_cands: Vec<SymbolicCandidate> = match driver {
            None => vec![SymbolicCandidate::zero()],
            Some(d) => {
                let intr = Poly2::monomial(0, 0, intrinsic[d].value());
                arrivals[d]
                    .iter()
                    .map(|cand| {
                        let mut path = Vec::with_capacity(cand.path.len() + 1);
                        path.extend(cand.path.iter().cloned());
                        path.push(cache.inst_names[d].clone());
                        SymbolicCandidate {
                            min: cand.min.add(&intr),
                            max: cand.max.add(&intr),
                            path: Arc::new(path),
                        }
                    })
                    .collect()
            }
        };
        for ((bound, &target), po) in bounds[net]
            .iter()
            .zip(&cache.sink_inst[net])
            .zip(&cache.sink_po[net])
        {
            match (target, po) {
                (Some(u), _) => {
                    for cand in &d_cands {
                        push_candidate(
                            &mut arrivals[u],
                            SymbolicCandidate {
                                min: cand.min.add(&bound.lower),
                                max: cand.max.add(&bound.upper),
                                path: Arc::clone(&cand.path),
                            },
                        );
                    }
                }
                (None, Some(name)) => {
                    let mut candidates = Vec::with_capacity(d_cands.len());
                    for cand in &d_cands {
                        push_candidate(
                            &mut candidates,
                            SymbolicCandidate {
                                min: cand.min.add(&bound.lower),
                                max: cand.max.add(&bound.upper),
                                path: Arc::clone(&cand.path),
                            },
                        );
                    }
                    endpoints.push(SymbolicEndpointTiming {
                        name: name.clone(),
                        candidates,
                    });
                }
                // Defensive, mirroring `run_full`: drifted sink tables.
                (None, None) => {}
            }
        }
    }
    endpoints
}

/// One net-level engineering change order: a named net plus a name-based
/// edit of its extracted interconnect.
///
/// Node references are by *name* rather than [`rctree_core::NodeId`]
/// because structural edits (prunes) renumber ids; names are the stable
/// handle across an edit script.
#[derive(Debug, Clone)]
pub struct EcoEdit {
    /// Name of the net whose interconnect is edited.
    pub net: String,
    /// The edit to apply.
    pub kind: EcoEditKind,
}

/// The name-based edit vocabulary of [`Design::apply_eco`], mirroring
/// [`TreeEdit`].
#[derive(Debug, Clone)]
pub enum EcoEditKind {
    /// Replace the lumped grounded capacitance at a node.
    SetCap {
        /// Node name within the net's interconnect.
        node: String,
        /// New total lumped capacitance.
        cap: Farads,
    },
    /// Replace the branch element feeding a node.
    SetBranch {
        /// Node name within the net's interconnect (not the net root).
        node: String,
        /// The new branch element.
        branch: Branch,
    },
    /// Graft a validated subtree under an existing node.
    Graft {
        /// Host node name the subtree is attached under.
        parent: String,
        /// The new branch connecting the host node to the subtree's input.
        via: Branch,
        /// The subtree to graft (boxed to keep the edit enum small).
        subtree: Box<RcTree>,
    },
    /// Remove a node, its feeding branch, and its whole subtree.
    Prune {
        /// Name of the subtree root to remove.
        node: String,
    },
}

impl Design {
    /// Creates an empty design over the given cell library.
    pub fn new(library: CellLibrary) -> Self {
        Design {
            shared: Arc::new(DesignCore {
                library,
                instances: BTreeMap::new(),
                nets: Vec::new(),
                names: Interner::new(),
                net_index: HashMap::new(),
                aug: Vec::new(),
                arena: Mutex::new(None),
                topo: Mutex::new(None),
                corners: None,
            }),
            eco: None,
            published: 0,
        }
    }

    /// Adds an instance of a library cell.
    ///
    /// # Errors
    ///
    /// * [`StaError::UnknownCell`] if the cell is not in the library;
    /// * [`StaError::DuplicateInstance`] if the instance name is taken.
    pub fn add_instance(&mut self, name: impl Into<String>, cell: impl Into<String>) -> Result<()> {
        let name = name.into();
        let cell = cell.into();
        self.shared.library.cell(&cell)?;
        if self.shared.instances.contains_key(&name) {
            return Err(StaError::DuplicateInstance { name });
        }
        let core = Arc::make_mut(&mut self.shared);
        core.instances.insert(name, cell);
        // A new instance changes the propagation topology; the per-net
        // stage arrays are untouched.
        core.topo = Mutex::new(None);
        self.eco = None;
        self.published = 0;
        Ok(())
    }

    /// Adds a net.
    ///
    /// # Errors
    ///
    /// * [`StaError::DuplicateNet`] if a net with the same name already
    ///   exists (names address ECO edits and snapshot queries, so they
    ///   must be unique);
    /// * [`StaError::UnknownInstance`] if the driver or a sink instance does
    ///   not exist;
    /// * [`StaError::UnknownSinkNode`] if a sink references a node that is
    ///   not part of the net's interconnect tree.
    pub fn add_net(&mut self, net: Net) -> Result<()> {
        if self
            .shared
            .names
            .get(&net.name)
            .is_some_and(|id| self.shared.net_index.contains_key(&id))
        {
            return Err(StaError::DuplicateNet { name: net.name });
        }
        if let Driver::Instance(inst) = &net.driver {
            if !self.shared.instances.contains_key(inst) {
                return Err(StaError::UnknownInstance { name: inst.clone() });
            }
        }
        for sink in &net.sinks {
            if net.interconnect.node_by_name(&sink.node).is_err() {
                return Err(StaError::UnknownSinkNode {
                    net: net.name.clone(),
                    node: sink.node.clone(),
                });
            }
            if let Load::Instance(inst) = &sink.load {
                if !self.shared.instances.contains_key(inst) {
                    return Err(StaError::UnknownInstance { name: inst.clone() });
                }
            }
        }
        // Resolve the stage augmentation once, up front (cells and nodes
        // were just validated); the hot analysis path reads it verbatim.
        let aug = self.shared.resolve_aug(&net)?;
        let core = Arc::make_mut(&mut self.shared);
        let id = core.names.intern(&net.name);
        core.net_index.insert(id, core.nets.len());
        core.aug.push(aug);
        core.nets.push(net);
        core.arena = Mutex::new(None);
        core.topo = Mutex::new(None);
        self.eco = None;
        self.published = 0;
        Ok(())
    }

    /// Number of instances in the design.
    pub fn instance_count(&self) -> usize {
        self.shared.instances.len()
    }

    /// Number of nets in the design.
    pub fn net_count(&self) -> usize {
        self.shared.nets.len()
    }

    /// Installs (or replaces) the design's PVT corner set.
    ///
    /// Corner 0 of any set is the implicit nominal corner, so a
    /// nominal-only set is stored as "no corners" and the design behaves
    /// exactly as an uncornered one (no extra lanes, no corner tails).
    /// Installing corners invalidates the cached arena (its value columns
    /// grow one lane per extra corner) and the incremental ECO state; the
    /// nominal analysis results themselves are unchanged — lane 0 runs the
    /// exact float sequence of the single-corner path.
    pub fn set_corners(&mut self, corners: CornerSet) {
        let core = Arc::make_mut(&mut self.shared);
        core.corners = if corners.is_nominal_only() {
            None
        } else {
            Some(Arc::new(corners))
        };
        core.arena = Mutex::new(None);
        self.eco = None;
        self.published = 0;
    }

    /// The active corner set, `None` when the design is nominal-only.
    pub fn corners(&self) -> Option<&CornerSet> {
        self.shared.corners.as_deref()
    }

    /// Number of timing corners (1 when no corner set is installed).
    pub fn corner_count(&self) -> usize {
        self.shared.corners.as_ref().map_or(1, |set| set.len())
    }

    /// Size in bytes of the cached SoA arena as `(base, corner_lanes)`:
    /// the single-corner columns plus shared metadata, and the extra value
    /// lanes appended for corners 1.. (zero without a multi-corner set).
    /// Builds the arena if no analysis has run yet — the observability
    /// hook behind the serve `STATS` verb.
    pub fn arena_bytes(&self) -> (usize, usize) {
        self.shared.arena().bytes()
    }

    /// Runs the full arrival-time propagation and produces a report,
    /// sharding the per-net stage evaluation over
    /// [`rctree_par::default_jobs`] worker threads (`RCTREE_JOBS` overrides
    /// the hardware default).  See [`Design::analyze_with_jobs`].
    ///
    /// `threshold` is the switching threshold (fraction of the swing) used
    /// for every stage; `required_time` is the budget every endpoint must
    /// meet.
    ///
    /// # Errors
    ///
    /// * [`StaError::EmptyDesign`] if there is nothing to analyse;
    /// * [`StaError::CombinationalCycle`] if the instance graph has a cycle;
    /// * stage-level errors from the core crate.
    pub fn analyze(&self, threshold: f64, required_time: Seconds) -> Result<TimingReport> {
        self.analyze_with_jobs(threshold, required_time, rctree_par::default_jobs())
    }

    /// [`Design::analyze`] with an explicit worker count.
    ///
    /// Net/stage evaluation — all the numerical work — is embarrassingly
    /// parallel: every net is one independent `O(n)` batched sweep, sharded
    /// over the persistent [`rctree_par::global_pool`] (worker threads are
    /// started once per process and reused by every subsequent call).  The
    /// per-net results are written by net index and merged in net order, so
    /// the report is **bit-identical** to the serial evaluation
    /// (`jobs = 1`) for every worker count; on invalid designs the error
    /// surfaced is the first failing net in net order, equally independent
    /// of scheduling.  The subsequent arrival-time propagation is a cheap
    /// serial pass over precomputed windows.
    ///
    /// # Errors
    ///
    /// As for [`Design::analyze`].
    pub fn analyze_with_jobs(
        &self,
        threshold: f64,
        required_time: Seconds,
        jobs: usize,
    ) -> Result<TimingReport> {
        if self.shared.nets.is_empty() {
            return Err(StaError::EmptyDesign);
        }
        let net_sink_delays = self.stage_delays(threshold, jobs)?;
        self.propagate(threshold, required_time, &net_sink_delays)
    }

    /// Stage timing per net: the delay window of every sink, computed by
    /// sweeping each net's range of the cached SoA [`NetArena`] (built once
    /// per design revision) through a per-worker reusable scratch.  One
    /// `O(n)` sweep covers all of a net's fan-outs, so the full design
    /// evaluation is linear in total augmented-node count plus total sink
    /// count, divided across the global pool's workers — and in the steady
    /// state it allocates only the output windows.
    fn stage_delays(&self, threshold: f64, jobs: usize) -> Result<Vec<Vec<Window>>> {
        let mut obs_span = rctree_obs::span("sta.stage_sweep");
        obs_span.attr_u64("nets", self.shared.nets.len() as u64);
        // The pool jobs share only the arena (not the design core), so a
        // queued straggler runner can never pin the core's strong count
        // past this call and turn a later `Arc::make_mut` commit into a
        // deep clone of the whole design.
        let state = Arc::new((self.shared.arena(), threshold));
        let n = self.shared.nets.len();
        rctree_par::par_map_global(jobs, state, n, move |i, st: &(Arc<NetArena>, f64)| {
            SWEEP_SCRATCH.with(|s| st.0.sweep_net(i, st.1, &mut s.borrow_mut()))
        })
        .into_iter()
        .collect::<Result<_>>()
    }

    /// Analyses **every corner** of the installed [`CornerSet`] in one
    /// traversal per net: the per-net sweep walks all of the arena's corner
    /// lanes node-by-node ([`NetArena::sweep_net_lanes`]), so the parent
    /// array and every shared-metadata cache line are read once for all
    /// `K` corners instead of once per corner — the amortization
    /// `benches/corner_sweep.rs` measures.  Arrival windows are then
    /// propagated once per corner over the cached topology, each corner
    /// using its `delay_scale`d intrinsic delays.
    ///
    /// Corner 0 (nominal) runs the exact float sequence of
    /// [`Design::analyze_with_jobs`], so `report(0)` is bit-identical to a
    /// single-corner analysis for every `jobs` value.  Every other corner
    /// is bit-identical to analysing that corner's fully materialized
    /// design ([`Design::materialize_corner`]): both paths scale each
    /// element with a single multiplication before any accumulation.
    ///
    /// Without an installed corner set this is exactly one nominal
    /// analysis wrapped in a single-entry [`CornerAnalysis`].
    ///
    /// # Errors
    ///
    /// As for [`Design::analyze_with_jobs`].
    pub fn analyze_corners(
        &self,
        threshold: f64,
        required_time: Seconds,
        jobs: usize,
    ) -> Result<CornerAnalysis> {
        if self.shared.nets.is_empty() {
            return Err(StaError::EmptyDesign);
        }
        let Some(set) = self.shared.corners.clone() else {
            let report = self.analyze_with_jobs(threshold, required_time, jobs)?;
            return Ok(CornerAnalysis {
                names: vec![CornerSet::default().corner(0).name.clone()],
                reports: vec![report],
            });
        };
        let per_net = self.stage_delays_corners(threshold, jobs)?;
        let cache = self.shared.topology()?;
        let mut reports = Vec::with_capacity(set.len());
        for k in 0..set.len() {
            let delays: Vec<Vec<Window>> = per_net.iter().map(|lanes| lanes[k].clone()).collect();
            let (_arrivals, endpoints) = if k == 0 {
                // The nominal lane propagates with the cached intrinsics
                // untouched — not even an identity multiplication.
                run_full(&cache, &cache.intrinsic, &delays)
            } else {
                let ds = set.corner(k).delay_scale;
                let intrinsic = scale_intrinsic(&cache.intrinsic, ds);
                run_full(&cache, &intrinsic, &delays)
            };
            reports.push(assemble_report(
                threshold,
                required_time,
                &cache,
                &endpoints,
            ));
        }
        Ok(CornerAnalysis {
            names: set.corners().iter().map(|c| c.name.clone()).collect(),
            reports,
        })
    }

    /// Per-net, per-corner stage windows: like [`Design::stage_delays`]
    /// but sweeping **all corner lanes** of each net in one traversal.
    /// Outer index: net; middle: corner lane; inner: sink.
    fn stage_delays_corners(&self, threshold: f64, jobs: usize) -> Result<Vec<Vec<Vec<Window>>>> {
        let mut obs_span = rctree_obs::span("sta.stage_sweep");
        obs_span.attr_u64("nets", self.shared.nets.len() as u64);
        let state = Arc::new((self.shared.arena(), threshold));
        let n = self.shared.nets.len();
        rctree_par::par_map_global(jobs, state, n, move |i, st: &(Arc<NetArena>, f64)| {
            LANE_SCRATCH.with(|s| st.0.sweep_net_lanes(i, st.1, &mut s.borrow_mut()))
        })
        .into_iter()
        .collect::<Result<_>>()
    }

    /// Builds a standalone single-corner [`Design`]: every cell parameter
    /// and every interconnect element of this design scaled by corner
    /// `k`'s factors (wire scales honour per-net overrides).  Analysing
    /// the materialized design with [`Design::analyze_with_jobs`] is
    /// **bit-identical** to `analyze_corners(..).report(k)` — both scale
    /// each element with a single multiplication before any accumulation —
    /// which makes this the serial per-corner oracle of the equivalence
    /// tests and the baseline of `benches/corner_sweep.rs`.
    ///
    /// # Errors
    ///
    /// * [`StaError::Core`] with an `InvalidValue` on a corner index out of
    ///   range;
    /// * construction errors while rebuilding the scaled trees (reachable
    ///   only through pathological scale factors, e.g. an overflow to
    ///   infinity).
    pub fn materialize_corner(&self, k: usize) -> Result<Design> {
        let nominal = CornerSet::default();
        let set: &CornerSet = self.shared.corners.as_deref().unwrap_or(&nominal);
        if k >= set.len() {
            return Err(StaError::Core(
                rctree_core::error::CoreError::InvalidValue {
                    what: "corner lane index",
                    value: k as f64,
                },
            ));
        }
        let corner = set.corner(k);
        let mut library = CellLibrary::new();
        for cell in self.shared.library.iter() {
            library.insert(Cell::new(
                cell.name.clone(),
                Ohms::new(cell.drive_resistance.value() * corner.r_scale),
                Farads::new(cell.input_capacitance.value() * corner.c_scale),
                Seconds::new(cell.intrinsic_delay.value() * corner.delay_scale),
            ));
        }
        let mut out = Design::new(library);
        for (inst, cell) in &self.shared.instances {
            out.add_instance(inst.clone(), cell.clone())?;
        }
        for net in &self.shared.nets {
            let (wire_r, wire_c) = set.wire_scales(&net.name, k);
            out.add_net(Net {
                name: net.name.clone(),
                driver: net.driver.clone(),
                interconnect: scale_tree(&net.interconnect, wire_r, wire_c)?,
                sinks: net.sinks.clone(),
            })?;
        }
        Ok(out)
    }

    /// Analyses the design **symbolically** over the global wire scales:
    /// one pass produces every endpoint's arrival window as degree-≤2
    /// polynomials in `(r_scale, c_scale)`, which then answer *any*
    /// uniform-scale query — [`SymbolicAnalysis::report_at`] for a point,
    /// [`SymbolicAnalysis::certify_over`] for the exact continuum worst
    /// case over a box — without re-sweeping a single net.
    ///
    /// The per-net symbolic stage bounds run the same generic kernel as
    /// the scalar sweep ([`stage_symbolic_bounds`]), sharded across the
    /// global pool exactly like [`Design::analyze_with_jobs`]; results are
    /// independent of `jobs`.  Evaluating the analysis at `(1, 1)` agrees
    /// with the nominal scalar report, and at any `(r, c)` with the
    /// analysis of a materialized corner `(r, c, delay_scale = 1)` — to
    /// float round-off in the coefficient accumulation, not bitwise.
    ///
    /// # Errors
    ///
    /// As for [`Design::analyze_with_jobs`].
    pub fn analyze_symbolic(
        &self,
        threshold: f64,
        required_time: Seconds,
        jobs: usize,
    ) -> Result<SymbolicAnalysis> {
        if self.shared.nets.is_empty() {
            return Err(StaError::EmptyDesign);
        }
        let mut obs_span = rctree_obs::span("sta.symbolic_build");
        obs_span.attr_u64("nets", self.shared.nets.len() as u64);
        // Shard like `analyze_rebuild_with_jobs`: pool jobs hold the core
        // through a Weak so a queued straggler can never pin the strong
        // count past this call.
        let core = Arc::new(Arc::downgrade(&self.shared));
        let n = self.shared.nets.len();
        let bounds: Vec<Vec<SymbolicDelayBounds>> =
            rctree_par::par_map_global(jobs, core, n, move |i, weak: &Weak<DesignCore>| {
                let core = weak.upgrade().expect("design outlives its analysis");
                stage_symbolic_bounds(
                    core.aug[i].driver_r,
                    &core.nets[i].interconnect,
                    &core.aug[i].loads,
                    threshold,
                )
            })
            .into_iter()
            .collect::<Result<_>>()?;
        let cache = self.shared.topology()?;
        let endpoints = run_symbolic(&cache, &cache.intrinsic, &bounds);
        Ok(SymbolicAnalysis {
            threshold,
            required_time,
            endpoints,
        })
    }

    /// The pre-arena one-shot path, kept verbatim in cost profile as the
    /// baseline for `benches/deck_pipeline.rs`: every net re-resolves its
    /// driver cell and sink loads through the string-keyed tables and
    /// rebuilds its augmented arrays per call, and the propagation topology
    /// is rebuilt per call too.  Results are identical to
    /// [`Design::analyze_with_jobs`]; only the work differs.
    #[doc(hidden)]
    pub fn analyze_rebuild_with_jobs(
        &self,
        threshold: f64,
        required_time: Seconds,
        jobs: usize,
    ) -> Result<TimingReport> {
        if self.shared.nets.is_empty() {
            return Err(StaError::EmptyDesign);
        }
        // The historical sharding: pool jobs hold the core through a Weak
        // (see `par_map_global`'s ownership note) and resolve names per net
        // per call.
        let core = Arc::new(Arc::downgrade(&self.shared));
        let n = self.shared.nets.len();
        let delays: Vec<Vec<Window>> =
            rctree_par::par_map_global(jobs, core, n, move |i, weak: &Weak<DesignCore>| {
                let core = weak.upgrade().expect("design outlives its analysis");
                core.net_sink_delays(&core.nets[i], threshold)
            })
            .into_iter()
            .collect::<Result<_>>()?;
        let cache = self.shared.propagation_cache()?;
        let (_arrivals, endpoints) = run_full(&cache, &cache.intrinsic, &delays);
        Ok(assemble_report(
            threshold,
            required_time,
            &cache,
            &endpoints,
        ))
    }

    /// Applies a batch of net-level ECO edits and returns the refreshed
    /// timing report, re-evaluating **only the touched nets**.
    ///
    /// Uses [`rctree_par::default_jobs`] workers when many nets are dirty;
    /// see [`Design::apply_eco_with_jobs`].
    ///
    /// # Errors
    ///
    /// As for [`Design::apply_eco_with_jobs`].
    pub fn apply_eco(
        &mut self,
        edits: &[EcoEdit],
        threshold: f64,
        required_time: Seconds,
    ) -> Result<TimingReport> {
        self.apply_eco_with_jobs(edits, threshold, required_time, rctree_par::default_jobs())
    }

    /// [`Design::apply_eco`] with an explicit worker count.
    ///
    /// The first call (or a call after the threshold changes or the design
    /// is structurally modified) evaluates every net once and caches the
    /// complete incremental state: a **persistent per-net
    /// [`EditableTree`] engine** with the augmented-stage data (driver
    /// resistance + sink load capacitances), the per-net sink windows, the
    /// Kahn propagation topology, and the per-instance arrival windows of
    /// the last report.  Subsequent calls then cost only the dirty work:
    ///
    /// | step | cost |
    /// |------|------|
    /// | edit application (value) | `O(depth · log n_net)` on the live engine |
    /// | edit application (structural) | `O(n_net)` integer re-index |
    /// | dirty-net re-timing | one flat `O(n_net)` stage sweep ([`stage_delay_bounds`]) |
    /// | arrival re-propagation | `O(affected fan-out cone)` |
    /// | report assembly | `O(endpoints)` |
    ///
    /// The cone walk re-derives an instance's arrival by folding its
    /// in-edges in the exact order the full pass uses and prunes fan-out
    /// wherever the recomputed arrival is unchanged, so the report is
    /// **bit-identical** to a full [`Design::analyze_with_jobs`] of the
    /// edited design for any `jobs` value (the dirty-net sweep is the same
    /// flat kernel the one-shot path runs, and untouched cones keep their
    /// cached windows verbatim).  Structural *design* mutation
    /// ([`Design::add_instance`] / [`Design::add_net`]) invalidates the
    /// cache, falling back to a full propagation on the next call.
    ///
    /// An empty `edits` slice is a cache-warming full analysis.
    ///
    /// # Errors
    ///
    /// * [`StaError::UnknownNet`] if an edit names a net not in the design;
    /// * [`StaError::UnknownEcoNode`] if an edit references a node name
    ///   missing from its net's interconnect;
    /// * [`StaError::UnknownSinkNode`] if an edit prunes a node that a
    ///   sink of the net is attached to;
    /// * [`StaError::Core`] for edit-level validation failures (negative
    ///   values, grafted name collisions, pruning the net root);
    /// * plus every error of [`Design::analyze_with_jobs`].
    ///
    /// Edits are applied transactionally per call, by snapshot: they are
    /// mapped onto **clones** of the dirty nets' persistent engines, and
    /// validation plus the stage re-timing run entirely against that
    /// pre-commit state.  On any error the design, the engines, *and* the
    /// cached windows of every net (dirty or not) are left exactly as they
    /// were before the call — a failing call never forces the next one to
    /// pay a full re-warm.
    pub fn apply_eco_with_jobs(
        &mut self,
        edits: &[EcoEdit],
        threshold: f64,
        required_time: Seconds,
        jobs: usize,
    ) -> Result<TimingReport> {
        if self.shared.nets.is_empty() {
            return Err(StaError::EmptyDesign);
        }
        let warm = self
            .eco
            .as_ref()
            .is_some_and(|state| state.threshold == threshold);
        let mut obs_span = rctree_obs::span("sta.eco_apply");
        obs_span.attr_u64("edits", edits.len() as u64);
        obs_span.attr_u64("warm", u64::from(warm));

        // Group the edits by net index, preserving intra-net order; the
        // interned name→index map is maintained by `add_net` on the core.
        let by_net = group_edits_interned(&self.shared, edits)?;

        // Apply the edits to *clones* of the persistent per-net engines and
        // re-time them (the transactional snapshot: on any error below,
        // neither the design nor the cached state has been touched).
        let work = self.process_dirty(
            if warm { self.eco.as_ref() } else { None },
            &by_net,
            threshold,
            jobs,
        )?;

        // Corner lanes of the dirty nets, re-timed pre-commit so a failing
        // corner sweep stays transactional (lane errors beyond lane 0 are
        // pathological — scale factors are validated positive and finite —
        // but the guarantee costs nothing to keep).
        let corner_work = self.corner_dirty_windows(
            if warm { self.eco.as_ref() } else { None },
            &work,
            threshold,
        )?;

        if warm {
            let mut state = self.eco.take().expect("warm state present");
            // Everything fallible has succeeded — commit, then re-propagate
            // only the affected cone.
            let mut dirty_ranks = Vec::with_capacity(work.len());
            let mut dirty_idx = Vec::with_capacity(work.len());
            let touched = !work.is_empty();
            let core = Arc::make_mut(&mut self.shared);
            for (idx, engine, delays) in work {
                dirty_ranks.push(state.prop.net_rank[idx]);
                dirty_idx.push(idx);
                core.nets[idx].interconnect = engine.tree.tree().clone();
                // Structural edits renumber node ids; keep the resolved
                // augmentation exact.
                core.aug[idx].loads = engine.sinks.iter().map(|s| (s.node, s.load_cap)).collect();
                state.delays[idx] = delays;
                state.engines[idx] = engine;
            }
            if touched {
                core.arena = Mutex::new(None);
            }
            run_cone(
                &state.prop,
                &state.prop.intrinsic,
                &state.delays,
                &mut state.arrivals,
                &mut state.endpoints,
                dirty_ranks.iter().copied(),
            );
            // Every extra corner walks the **same** dirty cone ranks: the
            // dirty-net set and the topology are corner-independent, only
            // the windows and intrinsics differ per lane.
            if let Some(cs) = state.corners.as_mut() {
                for (lane, rows) in cs.lanes.iter_mut().zip(corner_work) {
                    for (&idx, delays) in dirty_idx.iter().zip(rows) {
                        lane.delays[idx] = delays;
                    }
                    run_cone(
                        &state.prop,
                        &lane.intrinsic,
                        &lane.delays,
                        &mut lane.arrivals,
                        &mut lane.endpoints,
                        dirty_ranks.iter().copied(),
                    );
                }
            }
            let report = assemble_report(threshold, required_time, &state.prop, &state.endpoints);
            self.eco = Some(state);
            // The design state moved past whatever snapshot was last
            // published; `publish`/`publish_after_eco` re-stamp after
            // their internal apply.
            self.published = 0;
            Ok(report)
        } else {
            // Cold cache (first call, threshold change, or structural
            // design mutation): one full warm-up that evaluates every net
            // once, honouring the already-edited engines for the dirty
            // nets, then a full propagation.  On error the previous state
            // (still valid for *its* threshold) is left in place.
            let dirty: Vec<usize> = work.iter().map(|(idx, _, _)| *idx).collect();
            let state = self.warm_state(threshold, jobs, work)?;
            let report = assemble_report(threshold, required_time, &state.prop, &state.endpoints);
            let touched = !dirty.is_empty();
            let core = Arc::make_mut(&mut self.shared);
            for idx in dirty {
                core.nets[idx].interconnect = state.engines[idx].tree.tree().clone();
                core.aug[idx].loads = state.engines[idx]
                    .sinks
                    .iter()
                    .map(|s| (s.node, s.load_cap))
                    .collect();
            }
            if touched {
                core.arena = Mutex::new(None);
            }
            self.eco = Some(state);
            // The design state moved past whatever snapshot was last
            // published; `publish`/`publish_after_eco` re-stamp after
            // their internal apply.
            self.published = 0;
            Ok(report)
        }
    }

    /// The PR-3 incremental path, kept verbatim in cost profile as the
    /// baseline for `benches/eco_propagation.rs`: every call seeds a
    /// throwaway per-net engine for the dirty nets and re-runs the **full**
    /// serial arrival propagation (topology rebuilt included).  Results are
    /// identical to [`Design::apply_eco_with_jobs`]; only the work differs.
    /// The cached state is left fully coherent, so interleaving with the
    /// incremental path is safe.
    #[doc(hidden)]
    pub fn apply_eco_rebuild_with_jobs(
        &mut self,
        edits: &[EcoEdit],
        threshold: f64,
        required_time: Seconds,
        jobs: usize,
    ) -> Result<TimingReport> {
        if self.shared.nets.is_empty() {
            return Err(StaError::EmptyDesign);
        }
        let warm = self
            .eco
            .as_ref()
            .is_some_and(|state| state.threshold == threshold);
        // PR-3 rebuilt the name→index map per call.
        let net_index = net_index_of(&self.shared.nets);
        let by_net = group_edits(&net_index, edits)?;
        // Throwaway engines per call — the PR-3 cost model (`None` forces a
        // fresh `EditableTree` seed per dirty net).
        let work = self.process_dirty(None, &by_net, threshold, jobs)?;
        // Pre-commit corner re-timing, exactly like the incremental path.
        let corner_work = self.corner_dirty_windows(
            if warm { self.eco.as_ref() } else { None },
            &work,
            threshold,
        )?;

        if warm {
            let mut state = self.eco.take().expect("warm state present");
            // Full propagation every call, topology rebuilt (pre-commit so
            // an unexpected failure leaves the design untouched).
            let prop = match self.shared.propagation_cache() {
                Ok(prop) => Arc::new(prop),
                Err(e) => {
                    self.eco = Some(state);
                    return Err(e);
                }
            };
            let touched = !work.is_empty();
            let mut dirty_idx = Vec::with_capacity(work.len());
            let core = Arc::make_mut(&mut self.shared);
            for (idx, engine, delays) in work {
                dirty_idx.push(idx);
                core.nets[idx].interconnect = engine.tree.tree().clone();
                core.aug[idx].loads = engine.sinks.iter().map(|s| (s.node, s.load_cap)).collect();
                state.delays[idx] = delays;
                state.engines[idx] = engine;
            }
            if touched {
                core.arena = Mutex::new(None);
            }
            let (arrivals, endpoints) = run_full(&prop, &prop.intrinsic, &state.delays);
            state.prop = prop;
            state.arrivals = arrivals;
            state.endpoints = endpoints;
            if let Some(cs) = state.corners.as_mut() {
                for (lane, rows) in cs.lanes.iter_mut().zip(corner_work) {
                    for (&idx, delays) in dirty_idx.iter().zip(rows) {
                        lane.delays[idx] = delays;
                    }
                    let (arrivals, endpoints) =
                        run_full(&state.prop, &lane.intrinsic, &lane.delays);
                    lane.arrivals = arrivals;
                    lane.endpoints = endpoints;
                }
            }
            let report = assemble_report(threshold, required_time, &state.prop, &state.endpoints);
            self.eco = Some(state);
            // The design state moved past whatever snapshot was last
            // published; `publish`/`publish_after_eco` re-stamp after
            // their internal apply.
            self.published = 0;
            Ok(report)
        } else {
            let dirty: Vec<usize> = work.iter().map(|(idx, _, _)| *idx).collect();
            let state = self.warm_state(threshold, jobs, work)?;
            let report = assemble_report(threshold, required_time, &state.prop, &state.endpoints);
            let touched = !dirty.is_empty();
            let core = Arc::make_mut(&mut self.shared);
            for idx in dirty {
                core.nets[idx].interconnect = state.engines[idx].tree.tree().clone();
                core.aug[idx].loads = state.engines[idx]
                    .sinks
                    .iter()
                    .map(|s| (s.node, s.load_cap))
                    .collect();
            }
            if touched {
                core.arena = Mutex::new(None);
            }
            self.eco = Some(state);
            // The design state moved past whatever snapshot was last
            // published; `publish`/`publish_after_eco` re-stamp after
            // their internal apply.
            self.published = 0;
            Ok(report)
        }
    }

    /// Applies grouped edits onto clones of the per-net engines (or onto
    /// freshly seeded ones when no warm state exists) and re-times each
    /// dirty net.  Pure with respect to `self`: the caller commits.
    ///
    /// The re-time is sharded over the persistent pool only when the dirty
    /// set is large enough to amortise the handoff; either way the windows
    /// are computed per net independently, so results are identical for
    /// every `jobs` value.
    fn process_dirty(
        &self,
        existing: Option<&EcoState>,
        by_net: &BTreeMap<usize, Vec<&EcoEdit>>,
        threshold: f64,
        jobs: usize,
    ) -> Result<Vec<(usize, NetEngine, Vec<Window>)>> {
        const PAR_DIRTY_MIN: usize = 8;
        let mut prep: Vec<(usize, NetEngine)> = Vec::with_capacity(by_net.len());
        for (&idx, net_edits) in by_net {
            let net = &self.shared.nets[idx];
            let mut engine = match existing {
                Some(state) => state.engines[idx].clone(),
                None => NetEngine::build(&self.shared, net)?,
            };
            let mut structural = false;
            for edit in net_edits {
                structural |= engine.apply(&edit.net, &edit.kind)?;
            }
            if structural {
                engine.rebind_sinks(&net.name)?;
            }
            prep.push((idx, engine));
        }

        if prep.len() < PAR_DIRTY_MIN || jobs <= 1 {
            prep.into_iter()
                .map(|(idx, engine)| {
                    let delays = engine.windows(threshold)?;
                    Ok((idx, engine, delays))
                })
                .collect()
        } else {
            let shared = Arc::new((prep, threshold));
            let n = shared.0.len();
            let windows = rctree_par::par_map_global(
                jobs,
                Arc::clone(&shared),
                n,
                move |k, st: &(Vec<(usize, NetEngine)>, f64)| st.0[k].1.windows(st.1),
            )
            .into_iter()
            .collect::<Result<Vec<Vec<Window>>>>()?;
            // Recover the engines; a straggler pool runner may briefly pin
            // the Arc, in which case they are cloned out.
            let (prep, _) = match Arc::try_unwrap(shared) {
                Ok(tuple) => tuple,
                Err(arc) => (*arc).clone(),
            };
            Ok(prep
                .into_iter()
                .zip(windows)
                .map(|((idx, engine), delays)| (idx, engine, delays))
                .collect())
        }
    }

    /// Re-times the already-edited engines in `work` at every extra corner
    /// of the warm state's corner set — the corner half of the pre-commit
    /// transactional snapshot.  Outer index: extra corner (lane `k` ↔
    /// entry `k − 1`); inner: `work` order.  Empty when there is no warm
    /// multi-corner state (the cold path builds its lanes in
    /// [`Design::warm_state`] instead).
    fn corner_dirty_windows(
        &self,
        existing: Option<&EcoState>,
        work: &[(usize, NetEngine, Vec<Window>)],
        threshold: f64,
    ) -> Result<Vec<Vec<Vec<Window>>>> {
        let Some(cs) = existing.and_then(|state| state.corners.as_ref()) else {
            return Ok(Vec::new());
        };
        let mut per_corner = Vec::with_capacity(cs.set.len() - 1);
        for k in 1..cs.set.len() {
            let mut rows = Vec::with_capacity(work.len());
            for (idx, engine, _) in work {
                let scales = net_stage_scales(&cs.set, &self.shared.nets[*idx].name, k);
                rows.push(engine.windows_scaled(threshold, scales)?);
            }
            per_corner.push(rows);
        }
        Ok(per_corner)
    }

    /// Builds a complete [`EcoState`] for the current design at
    /// `threshold`: engines and stage windows for every net (`overrides`
    /// supplies the pre-edited engines of dirty nets, so no net is
    /// evaluated twice), the propagation topology, and one full arrival
    /// propagation.  Pure with respect to `self`.
    fn warm_state(
        &self,
        threshold: f64,
        jobs: usize,
        overrides: Vec<(usize, NetEngine, Vec<Window>)>,
    ) -> Result<EcoState> {
        let n = self.shared.nets.len();
        let mut skip = vec![false; n];
        for (idx, _, _) in &overrides {
            skip[*idx] = true;
        }
        // Per-net engine + windows, sharded over the persistent pool; the
        // Weak keeps a straggler runner from pinning the design core (see
        // `stage_delays`).
        let shared = Arc::new((Arc::downgrade(&self.shared), skip, threshold));
        let built: Vec<Option<(NetEngine, Vec<Window>)>> = rctree_par::par_map_global(
            jobs,
            shared,
            n,
            move |i, st: &(Weak<DesignCore>, Vec<bool>, f64)| {
                if st.1[i] {
                    return Ok(None);
                }
                let core = st.0.upgrade().expect("design outlives its analysis");
                let engine = NetEngine::build(&core, &core.nets[i])?;
                let delays = engine.windows(st.2)?;
                Ok(Some((engine, delays)))
            },
        )
        .into_iter()
        .collect::<Result<_>>()?;

        let mut engines: Vec<Option<NetEngine>> = Vec::with_capacity(n);
        let mut delays: Vec<Vec<Window>> = Vec::with_capacity(n);
        for slot in built {
            match slot {
                Some((engine, d)) => {
                    engines.push(Some(engine));
                    delays.push(d);
                }
                None => {
                    engines.push(None);
                    delays.push(Vec::new());
                }
            }
        }
        for (idx, engine, d) in overrides {
            engines[idx] = Some(engine);
            delays[idx] = d;
        }
        let engines: Vec<NetEngine> = engines
            .into_iter()
            .collect::<Option<_>>()
            .expect("every net has an engine");

        let prop = self.shared.topology()?;
        let (arrivals, endpoints) = run_full(&prop, &prop.intrinsic, &delays);

        // One lane of incremental state per extra corner: windows via the
        // per-element-scaled engine sweep (bit-identical to the arena's
        // corner lanes), then a full propagation with the corner's scaled
        // intrinsics.  Paid once per warm-up, like the nominal lane.
        let corners = match self.shared.corners.as_ref() {
            Some(set) => {
                let mut lanes = Vec::with_capacity(set.len() - 1);
                for k in 1..set.len() {
                    let corner = set.corner(k);
                    let mut delays_k = Vec::with_capacity(n);
                    for (idx, engine) in engines.iter().enumerate() {
                        let scales = net_stage_scales(set, &self.shared.nets[idx].name, k);
                        delays_k.push(engine.windows_scaled(threshold, scales)?);
                    }
                    let intrinsic = scale_intrinsic(&prop.intrinsic, corner.delay_scale);
                    let (arrivals_k, endpoints_k) = run_full(&prop, &intrinsic, &delays_k);
                    lanes.push(CornerLane {
                        intrinsic,
                        delays: delays_k,
                        arrivals: arrivals_k,
                        endpoints: endpoints_k,
                    });
                }
                Some(CornerState {
                    set: Arc::clone(set),
                    lanes,
                })
            }
            None => None,
        };

        Ok(EcoState {
            threshold,
            delays,
            engines,
            prop,
            arrivals,
            endpoints,
            corners,
        })
    }

    /// Serial arrival-time propagation over precomputed per-net sink
    /// windows: topological ordering, interval accumulation, critical-path
    /// extraction.  The one-shot path builds the [`PropagationCache`]
    /// per call and runs the full pass; the ECO path keeps both cached in
    /// [`EcoState`] and re-propagates only the affected cone.
    fn propagate(
        &self,
        threshold: f64,
        required_time: Seconds,
        net_sink_delays: &[Vec<Window>],
    ) -> Result<TimingReport> {
        let cache = self.shared.topology()?;
        let (_arrivals, endpoints) = run_full(&cache, &cache.intrinsic, net_sink_delays);
        Ok(assemble_report(
            threshold,
            required_time,
            &cache,
            &endpoints,
        ))
    }

    /// Builds a single-stage-per-net design from extracted parasitics: the
    /// shape of a deck fresh out of a parasitic extractor, before gate-level
    /// connectivity is known.
    ///
    /// Every `(name, tree)` pair becomes one instance of `driver_cell`
    /// driving `tree`, fed from a primary input through a short feeder wire;
    /// every output node of `tree` becomes a primary output named
    /// `"{name}/{node}"`.  This is the bridge from
    /// `rctree_netlist::parse_spef_deck` to a [`Design`] that
    /// [`Design::analyze`] can shard across workers.
    ///
    /// # Errors
    ///
    /// * [`StaError::UnknownCell`] if `driver_cell` is not in `library`;
    /// * [`StaError::DuplicateInstance`] if two nets share a name;
    /// * [`StaError::DuplicateNet`] if a deck net name collides with a
    ///   synthesized feeder name (a deck holding both `x` and `x_pi` —
    ///   such decks used to build silently with two nets named `x_pi`
    ///   and undefined ECO edit targeting; they are now rejected with a
    ///   structured error naming the colliding net).
    pub fn from_extracted<I>(library: CellLibrary, driver_cell: &str, nets: I) -> Result<Design>
    where
        I: IntoIterator<Item = (String, RcTree)>,
    {
        let mut obs_span = rctree_obs::span("sta.net_build");
        let mut design = Design::new(library);
        // Validate the driver cell up front so an empty deck still reports
        // a bad cell name.
        design.shared.library.cell(driver_cell)?;
        for (name, tree) in nets {
            let inst = format!("{name}_drv");
            design.add_instance(&inst, driver_cell)?;

            // Feeder: a primary input reaching the driver through a token
            // 10 Ω / 1 fF wire, so every stage has a real arrival window.
            let mut feeder = rctree_core::builder::RcTreeBuilder::new();
            feeder
                .add_line(
                    feeder.input(),
                    "pin",
                    rctree_core::units::Ohms::new(10.0),
                    Farads::from_femto(1.0),
                )
                .expect("static feeder wire is valid");
            design.add_net(Net {
                name: format!("{name}_pi"),
                driver: Driver::PrimaryInput,
                interconnect: feeder.build().expect("static feeder wire is valid"),
                sinks: vec![Sink {
                    node: "pin".into(),
                    load: Load::Instance(inst.clone()),
                }],
            })?;

            let sinks = tree
                .outputs()
                .map(|id| {
                    let node = tree.name(id).expect("output node exists").to_string();
                    Sink {
                        load: Load::PrimaryOutput(format!("{name}/{node}")),
                        node,
                    }
                })
                .collect();
            design.add_net(Net {
                name,
                driver: Driver::Instance(inst),
                interconnect: tree,
                sinks,
            })?;
        }
        obs_span.attr_u64("nets", design.shared.nets.len() as u64);
        Ok(design)
    }

    /// Partitions the design into at most `shards` timing-independent
    /// sub-designs for per-shard publishing (the sharded snapshot store of
    /// `rctree-serve`).
    ///
    /// Nets are grouped into connected components of the net–instance
    /// graph (two nets connect when one drives an instance the other is
    /// driven by or loads), so no signal path ever crosses a partition and
    /// every shard analyses exactly as it would inside the monolithic
    /// design — per-net results are bit-identical, and
    /// [`TimingReport::compose`] over the shard reports reproduces the
    /// monolithic report.  Components are kept in first-net order and cut
    /// into contiguous ranges: component `j` of `c` goes to shard
    /// `j * n / c` — the deterministic net-range rule clients can
    /// replicate from the deck alone (for extracted decks every component
    /// is one deck net plus its feeder, in deck order).  Fewer components
    /// than `shards` yields fewer (never empty) shards.  Instances not
    /// referenced by any net ride with shard 0.  Each shard clones the
    /// full corner set; overrides naming nets of other shards are inert
    /// (override scales are looked up by net name at analysis time).
    ///
    /// # Errors
    ///
    /// * [`StaError::EmptyDesign`] if the design has no nets.
    pub fn partition(&self, shards: usize) -> Result<Vec<Design>> {
        let total = self.shared.nets.len();
        if total == 0 {
            return Err(StaError::EmptyDesign);
        }
        let shards = shards.max(1);

        // Union-find over net indices, joined through shared instances.
        let mut parent: Vec<usize> = (0..total).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        let mut first_net_of: HashMap<&str, usize> = HashMap::new();
        for (idx, net) in self.shared.nets.iter().enumerate() {
            let driver = match &net.driver {
                Driver::Instance(inst) => Some(inst.as_str()),
                Driver::PrimaryInput => None,
            };
            let loads = net.sinks.iter().filter_map(|sink| match &sink.load {
                Load::Instance(inst) => Some(inst.as_str()),
                Load::PrimaryOutput(_) => None,
            });
            for inst in driver.into_iter().chain(loads) {
                match first_net_of.entry(inst) {
                    std::collections::hash_map::Entry::Occupied(o) => {
                        let (a, b) = (find(&mut parent, idx), find(&mut parent, *o.get()));
                        // Root at the lower index so component order below
                        // is stable first-net order.
                        parent[a.max(b)] = a.min(b);
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(idx);
                    }
                }
            }
        }

        // Components in first-net order, each holding its nets ascending.
        let mut component_of_root: HashMap<usize, usize> = HashMap::new();
        let mut components: Vec<Vec<usize>> = Vec::new();
        for idx in 0..total {
            let root = find(&mut parent, idx);
            let c = *component_of_root.entry(root).or_insert_with(|| {
                components.push(Vec::new());
                components.len() - 1
            });
            components[c].push(idx);
        }
        let count = components.len().min(shards);
        let mut shard_nets: Vec<Vec<usize>> = vec![Vec::new(); count];
        for (j, nets) in components.iter().enumerate() {
            shard_nets[j * count / components.len()].extend(nets);
        }

        let mut out = Vec::with_capacity(count);
        for (s, nets) in shard_nets.iter_mut().enumerate() {
            nets.sort_unstable();
            let mut referenced: BTreeSet<&str> = BTreeSet::new();
            for &idx in nets.iter() {
                let net = &self.shared.nets[idx];
                if let Driver::Instance(inst) = &net.driver {
                    referenced.insert(inst);
                }
                for sink in &net.sinks {
                    if let Load::Instance(inst) = &sink.load {
                        referenced.insert(inst);
                    }
                }
            }
            let mut shard = Design::new(self.shared.library.clone());
            for (inst, cell) in &self.shared.instances {
                let orphan = s == 0 && !first_net_of.contains_key(inst.as_str());
                if referenced.contains(inst.as_str()) || orphan {
                    shard.add_instance(inst.clone(), cell.clone())?;
                }
            }
            for &idx in nets.iter() {
                shard.add_net(self.shared.nets[idx].clone())?;
            }
            if let Some(set) = &self.shared.corners {
                shard.set_corners((**set).clone());
            }
            out.push(shard);
        }
        Ok(out)
    }
}

/// One sink of a net as exposed by a [`DesignSnapshot`]: the interconnect
/// node it hangs on, what it drives, and its cached stage delay window.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkWindow {
    /// Node name within the net's interconnect.
    pub node: String,
    /// What the sink drives.
    pub load: Load,
    /// Guaranteed lower stage-delay bound at this sink.
    pub lower: Seconds,
    /// Guaranteed upper stage-delay bound at this sink.
    pub upper: Seconds,
}

/// A lazily built augmented-stage sweep of one net: the `BatchTimes`
/// plus the raw-node → augmented-position map.
type SweepCache = Arc<(BatchTimes, Vec<u32>)>;

/// Read-only timing view of one net inside a [`DesignSnapshot`]: the
/// committed interconnect tree, the stage augmentation data (driver
/// resistance and sink loads), and the cached per-sink delay windows.
///
/// Everything is behind `Arc`s, so cloning a `NetTiming` — or the snapshot
/// holding it — is a handful of refcount bumps.  Node-level queries
/// ([`NetTiming::node_times`]) are computed on demand from the shared tree
/// in one `O(n_net)` sweep.
#[derive(Debug, Clone)]
pub struct NetTiming {
    name: String,
    tree: Arc<RcTree>,
    driver_r: Ohms,
    loads: Arc<Vec<(NodeId, Farads)>>,
    sinks: Arc<Vec<SinkWindow>>,
    /// Lazily built augmented-stage sweep of the whole net — the
    /// `BatchTimes` plus the raw-node → augmented-position map — so
    /// repeated node queries against one snapshot revision cost `O(1)`
    /// after the first.  Built at most once per view (races rebuild the
    /// identical value and drop the loser).
    batch: OnceLock<SweepCache>,
    /// Per **extra** corner (lane `k` ↔ entry `k − 1`): this net's cached
    /// sink windows at that corner.  Empty for nominal-only snapshots.
    corner_sinks: Arc<Vec<Vec<SinkWindow>>>,
    /// Per extra corner: the net's stage scale factors, so node queries at
    /// a corner can re-run the scaled sweep on demand.
    corner_scales: Arc<Vec<StageScales>>,
    /// Per extra corner: the lazily built scaled-sweep cache, the corner
    /// analogue of `batch` (shared across clones of the view).
    corner_batch: Arc<Vec<OnceLock<SweepCache>>>,
    /// Lazily built **symbolic** sweep of the whole net: the per-node
    /// [`SymbolicTimes`] coefficient table plus the raw-node → augmented
    /// position map, behind `QUERY … --sens`.  Same build-once contract as
    /// `batch`.
    symbolic: OnceLock<Arc<(Vec<SymbolicTimes>, Vec<u32>)>>,
}

impl NetTiming {
    /// The net's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cached per-sink stage delay windows, in net sink order.
    pub fn sinks(&self) -> &[SinkWindow] {
        &self.sinks
    }

    /// Number of corners this view carries windows for (1 when the
    /// snapshot is nominal-only).
    pub fn corner_count(&self) -> usize {
        1 + self.corner_sinks.len()
    }

    /// The cached per-sink windows at corner `k` (`0` is the nominal
    /// corner and returns [`NetTiming::sinks`]); `None` when `k` is out of
    /// range.
    pub fn sinks_at(&self, k: usize) -> Option<&[SinkWindow]> {
        if k == 0 {
            Some(&self.sinks)
        } else {
            self.corner_sinks.get(k - 1).map(Vec::as_slice)
        }
    }

    /// Characteristic times and delay bounds at an arbitrary node of the
    /// net's interconnect, evaluated against the same augmented stage tree
    /// (driver resistance + sink loads) the cached windows came from.
    ///
    /// The full-net sweep behind the query is computed once per view and
    /// cached, so repeated queries against one snapshot revision — the
    /// serve loop's `QUERY <net> <node>` hot path — are `O(1)` lookups
    /// after the first.
    ///
    /// # Errors
    ///
    /// * [`StaError::UnknownEcoNode`] if the node name is not part of the
    ///   net's interconnect;
    /// * core errors from the stage sweep or the threshold validation.
    pub fn node_times(
        &self,
        node: &str,
        threshold: f64,
    ) -> Result<(CharacteristicTimes, DelayBounds)> {
        let id = self
            .tree
            .node_by_name(node)
            .map_err(|_| StaError::UnknownEcoNode {
                net: self.name.clone(),
                node: node.to_string(),
            })?;
        let batch = match self.batch.get() {
            Some(batch) => Arc::clone(batch),
            None => {
                let built = Arc::new(crate::stage::augmented_batch(
                    self.driver_r,
                    &self.tree,
                    &self.loads,
                )?);
                // A racing builder computed the identical value; either
                // copy serves every future query.
                let _ = self.batch.set(Arc::clone(&built));
                built
            }
        };
        let times = batch.0.times_at(batch.1[id.index()] as usize)?;
        let bounds = times.delay_bounds(threshold)?;
        Ok((times, bounds))
    }

    /// [`NetTiming::node_times`] evaluated at corner `k` (`0` is the
    /// nominal corner).  The corner's sweep runs the scaled augmented
    /// arrays ([`crate::stage`]'s per-element scaling) and is cached per
    /// corner, so repeated `QUERY … --corner k` hits are `O(1)` lookups
    /// after the first.
    ///
    /// # Errors
    ///
    /// As for [`NetTiming::node_times`], plus [`StaError::Core`] with an
    /// `InvalidValue` on a corner index out of range.
    pub fn node_times_at(
        &self,
        node: &str,
        threshold: f64,
        k: usize,
    ) -> Result<(CharacteristicTimes, DelayBounds)> {
        if k == 0 {
            return self.node_times(node, threshold);
        }
        let (Some(cell), Some(scales)) = (
            self.corner_batch.get(k - 1),
            self.corner_scales.get(k - 1).copied(),
        ) else {
            return Err(StaError::Core(
                rctree_core::error::CoreError::InvalidValue {
                    what: "corner lane index",
                    value: k as f64,
                },
            ));
        };
        let id = self
            .tree
            .node_by_name(node)
            .map_err(|_| StaError::UnknownEcoNode {
                net: self.name.clone(),
                node: node.to_string(),
            })?;
        let batch = match cell.get() {
            Some(batch) => Arc::clone(batch),
            None => {
                let built = Arc::new(crate::stage::augmented_batch_scaled(
                    self.driver_r,
                    &self.tree,
                    &self.loads,
                    scales,
                )?);
                let _ = cell.set(Arc::clone(&built));
                built
            }
        };
        let times = batch.0.times_at(batch.1[id.index()] as usize)?;
        let bounds = times.delay_bounds(threshold)?;
        Ok((times, bounds))
    }

    /// Symbolic characteristic times and delay-bound polynomials at an
    /// arbitrary node of the net — the coefficient table behind
    /// `QUERY … --sens`.  The whole-net symbolic sweep is computed once
    /// per view and cached, so repeated sensitivity queries against one
    /// snapshot revision are `O(1)` lookups after the first.
    ///
    /// # Errors
    ///
    /// As for [`NetTiming::node_times`].
    pub fn node_symbolic(
        &self,
        node: &str,
        threshold: f64,
    ) -> Result<(SymbolicTimes, SymbolicDelayBounds)> {
        let id = self
            .tree
            .node_by_name(node)
            .map_err(|_| StaError::UnknownEcoNode {
                net: self.name.clone(),
                node: node.to_string(),
            })?;
        let sweep = match self.symbolic.get() {
            Some(sweep) => Arc::clone(sweep),
            None => {
                let built = Arc::new(stage_symbolic_sweep(
                    self.driver_r,
                    &self.tree,
                    &self.loads,
                )?);
                // A racing builder computed the identical value; either
                // copy serves every future query.
                let _ = self.symbolic.set(Arc::clone(&built));
                built
            }
        };
        let times = sweep.0[sweep.1[id.index()] as usize].clone();
        let bounds = symbolic_delay_bounds(&times, threshold)?;
        Ok((times, bounds))
    }

    /// Nominal sensitivities `(dT/dr, dT/dc)` of a node's **upper** delay
    /// bound: the gradient of the symbolic bound at `(1, 1)` — how fast
    /// the guaranteed delay moves per unit of uniform wire-resistance /
    /// wire-capacitance scaling.
    ///
    /// # Errors
    ///
    /// As for [`NetTiming::node_symbolic`].
    pub fn node_sens(&self, node: &str, threshold: f64) -> Result<(f64, f64)> {
        let (_, bounds) = self.node_symbolic(node, threshold)?;
        Ok(bounds.upper_sens_at(1.0, 1.0))
    }
}

/// An immutable, cheaply cloneable timing snapshot of a whole design: the
/// full [`TimingReport`] plus per-net [`NetTiming`] views, everything
/// `Arc`-shared.
///
/// This is the publication unit of the concurrent query server
/// (`rctree-serve`): readers answer every query against one consistent
/// snapshot while the single writer applies ECO edits and publishes
/// successors — [`Design::publish_after_eco`] rebuilds only the dirty
/// nets' views and reuses every other `Arc` verbatim, so publishing after
/// a `k`-net edit costs `O(Σ n_dirty + nets)` pointer copies, not a deep
/// copy of the design.
#[derive(Debug, Clone)]
pub struct DesignSnapshot {
    /// Process-unique id; `publish_after_eco` reuses `prev`'s views only
    /// when `prev` is the publishing design's latest snapshot.
    id: u64,
    threshold: f64,
    required_time: Seconds,
    report: Arc<TimingReport>,
    nets: Vec<Arc<NetTiming>>,
    names: Arc<Interner>,
    net_index: Arc<HashMap<NameId, usize>>,
    instances: usize,
    /// Per-corner reports when the snapshotted design has a multi-corner
    /// set installed, `None` for nominal-only designs.
    corners: Option<Arc<SnapshotCorners>>,
    /// The propagation topology the snapshot was assembled over, kept so
    /// the lazy symbolic analysis can re-run the candidate propagation
    /// without touching the (mutable) design.
    prop: Arc<PropagationCache>,
    /// Lazily built whole-design [`SymbolicAnalysis`] (`CERTIFY … --over`).
    /// `Arc`-wrapped around the cell so clones of the snapshot share one
    /// build; races rebuild the identical value and drop the loser.
    symbolic: Arc<OnceLock<Arc<SymbolicAnalysis>>>,
}

/// Per-corner views of a [`DesignSnapshot`] over a multi-corner design:
/// the corner names and one full report per corner, in lane order.  Index
/// 0 is the nominal corner; its report is the snapshot's main
/// [`DesignSnapshot::report`] (the same `Arc`).
#[derive(Debug, Clone)]
pub struct SnapshotCorners {
    names: Vec<String>,
    reports: Vec<Arc<TimingReport>>,
}

impl SnapshotCorners {
    /// Corner names in lane order (index 0 is the nominal corner).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Comma-joined corner names — the corner vector of the serve
    /// protocol's response tails.
    pub fn names_csv(&self) -> String {
        self.names.join(",")
    }

    /// Number of corners (at least 2 — nominal-only designs snapshot with
    /// no [`SnapshotCorners`] at all).
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Always `false`: the nominal corner is always present.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The full report of corner `k` (0 is the nominal report), `None`
    /// when out of range.
    pub fn report(&self, k: usize) -> Option<&TimingReport> {
        self.reports.get(k).map(|r| &**r)
    }

    /// Resolves a corner name to its lane index.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// The worst corner against `required_time`: the lane with the
    /// smallest slack (ties break to the lowest index, so the answer is
    /// deterministic).  Returns `(lane, slack, certification)` where the
    /// certification is the conjunction over **all** corners — the
    /// whole-deck verdict the `CERTIFY` verb reports.
    pub fn worst_against(&self, required_time: Seconds) -> (usize, Seconds, Certification) {
        let mut worst = 0usize;
        let mut slack = self.reports[0].slack_against(required_time);
        let mut verdict = Certification::Pass;
        for (k, report) in self.reports.iter().enumerate() {
            if k > 0 {
                let s = report.slack_against(required_time);
                if s < slack {
                    worst = k;
                    slack = s;
                }
            }
            verdict = verdict.and(report.certification_against(required_time));
        }
        (worst, slack, verdict)
    }
}

impl DesignSnapshot {
    /// The switching threshold the snapshot was analysed at.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The required arrival time of the snapshot's report.
    pub fn required_time(&self) -> Seconds {
        self.required_time
    }

    /// The full timing report of the snapshot's design state.
    pub fn report(&self) -> &TimingReport {
        &self.report
    }

    /// Looks up one net's timing view by name.
    pub fn net(&self, name: &str) -> Option<&NetTiming> {
        let id = self.names.get(name)?;
        self.net_index.get(&id).map(|&i| &*self.nets[i])
    }

    /// Number of nets in the snapshot.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of instances in the snapshotted design.
    pub fn instance_count(&self) -> usize {
        self.instances
    }

    /// Net names in design net order.
    pub fn net_names(&self) -> impl Iterator<Item = &str> {
        self.nets.iter().map(|n| n.name())
    }

    /// Per-corner reports when the snapshotted design has a multi-corner
    /// set installed, `None` for nominal-only designs.
    pub fn corners(&self) -> Option<&SnapshotCorners> {
        self.corners.as_deref()
    }

    /// Number of timing corners baked into the snapshot (1 when
    /// nominal-only).
    pub fn corner_count(&self) -> usize {
        self.corners.as_ref().map_or(1, |c| c.len())
    }

    /// The snapshot's whole-design [`SymbolicAnalysis`], built on first
    /// use and cached (shared across clones): per-net symbolic stage
    /// bounds from the snapshot's own net views — the same trees, driver
    /// resistances and loads the scalar report came from — propagated over
    /// the snapshot's cached topology.  This is what the serve loop's
    /// `CERTIFY … --over` answers from; repeated box certifications
    /// against one snapshot revision rebuild nothing.
    ///
    /// # Errors
    ///
    /// As for [`Design::analyze_symbolic`].
    pub fn symbolic(&self) -> Result<Arc<SymbolicAnalysis>> {
        if let Some(sym) = self.symbolic.get() {
            return Ok(Arc::clone(sym));
        }
        let mut obs_span = rctree_obs::span("sta.symbolic_build");
        obs_span.attr_u64("nets", self.nets.len() as u64);
        let mut bounds = Vec::with_capacity(self.nets.len());
        for net in &self.nets {
            bounds.push(stage_symbolic_bounds(
                net.driver_r,
                &net.tree,
                &net.loads,
                self.threshold,
            )?);
        }
        let endpoints = run_symbolic(&self.prop, &self.prop.intrinsic, &bounds);
        let built = Arc::new(SymbolicAnalysis {
            threshold: self.threshold,
            required_time: self.required_time,
            endpoints,
        });
        let _ = self.symbolic.set(Arc::clone(&built));
        Ok(built)
    }
}

impl Design {
    /// Publishes a complete read-only [`DesignSnapshot`] of the current
    /// design state, warming the incremental ECO cache in the process (an
    /// empty-edit [`Design::apply_eco_with_jobs`], so the snapshot's
    /// report is bit-identical to [`Design::analyze_with_jobs`]).
    ///
    /// # Errors
    ///
    /// As for [`Design::apply_eco_with_jobs`].
    pub fn publish(
        &mut self,
        threshold: f64,
        required_time: Seconds,
        jobs: usize,
    ) -> Result<DesignSnapshot> {
        let _obs_span = rctree_obs::span("sta.publish");
        let report = self.apply_eco_with_jobs(&[], threshold, required_time, jobs)?;
        let snapshot = self.snapshot_from_state(threshold, required_time, report, None, &[]);
        self.published = snapshot.id;
        Ok(snapshot)
    }

    /// Applies an ECO edit batch through the incremental engine and
    /// publishes the successor snapshot, rebuilding only the **dirty**
    /// nets' [`NetTiming`] views; every untouched net's view (and the
    /// name index) is reused from `prev` by `Arc`.
    ///
    /// Reuse happens only when `prev` is this design's **latest published
    /// snapshot** at the same threshold (checked via a process-unique
    /// snapshot id — any mutation outside the publish path, including a
    /// direct [`Design::apply_eco`], invalidates it); otherwise the
    /// snapshot is rebuilt in full instead — never incorrectly reused.
    ///
    /// Transactional exactly like [`Design::apply_eco_with_jobs`]: on any
    /// error, the design, the ECO cache, and `prev` are all untouched.
    ///
    /// # Errors
    ///
    /// As for [`Design::apply_eco_with_jobs`].
    pub fn publish_after_eco(
        &mut self,
        edits: &[EcoEdit],
        threshold: f64,
        required_time: Seconds,
        jobs: usize,
        prev: &DesignSnapshot,
    ) -> Result<DesignSnapshot> {
        let mut obs_span = rctree_obs::span("sta.publish");
        obs_span.attr_u64("edits", edits.len() as u64);
        let reuse = prev.id == self.published
            && self.published != 0
            && prev.threshold == threshold
            && prev.nets.len() == self.shared.nets.len();
        let dirty: Vec<usize> = if reuse {
            let set: BTreeSet<usize> = edits
                .iter()
                .filter_map(|e| {
                    let id = self.shared.names.get(e.net.as_str())?;
                    self.shared.net_index.get(&id).copied()
                })
                .collect();
            set.into_iter().collect()
        } else {
            Vec::new()
        };
        let report = self.apply_eco_with_jobs(edits, threshold, required_time, jobs)?;
        let snapshot = self.snapshot_from_state(
            threshold,
            required_time,
            report,
            if reuse { Some(prev) } else { None },
            &dirty,
        );
        self.published = snapshot.id;
        Ok(snapshot)
    }

    /// Builds a snapshot from the warm ECO state, reusing `prev`'s views
    /// for every net not listed in `dirty` when `prev` is given.
    fn snapshot_from_state(
        &self,
        threshold: f64,
        required_time: Seconds,
        report: TimingReport,
        prev: Option<&DesignSnapshot>,
        dirty: &[usize],
    ) -> DesignSnapshot {
        let state = self.eco.as_ref().expect("publish warms the eco cache");
        let net_timing = |idx: usize| -> Arc<NetTiming> {
            let engine = &state.engines[idx];
            let window_views = |delays: &[Window]| -> Vec<SinkWindow> {
                engine
                    .sinks
                    .iter()
                    .zip(delays)
                    .map(|(binding, delay)| SinkWindow {
                        node: binding.name.clone(),
                        load: binding.load.clone(),
                        lower: delay.0,
                        upper: delay.1,
                    })
                    .collect()
            };
            let sinks = window_views(&state.delays[idx]);
            let (corner_sinks, corner_scales) = match state.corners.as_ref() {
                Some(cs) => (
                    cs.lanes
                        .iter()
                        .map(|lane| window_views(&lane.delays[idx]))
                        .collect(),
                    (1..cs.set.len())
                        .map(|k| net_stage_scales(&cs.set, &self.shared.nets[idx].name, k))
                        .collect(),
                ),
                None => (Vec::new(), Vec::new()),
            };
            let extra = corner_sinks.len();
            Arc::new(NetTiming {
                name: self.shared.nets[idx].name.clone(),
                tree: Arc::new(engine.tree.tree().clone()),
                driver_r: engine.driver_r,
                loads: Arc::new(engine.sinks.iter().map(|s| (s.node, s.load_cap)).collect()),
                sinks: Arc::new(sinks),
                batch: OnceLock::new(),
                corner_sinks: Arc::new(corner_sinks),
                corner_scales: Arc::new(corner_scales),
                corner_batch: Arc::new((0..extra).map(|_| OnceLock::new()).collect()),
                symbolic: OnceLock::new(),
            })
        };
        let (nets, names, net_index) = match prev {
            Some(prev) => {
                let mut nets = prev.nets.clone();
                for &idx in dirty {
                    nets[idx] = net_timing(idx);
                }
                (nets, Arc::clone(&prev.names), Arc::clone(&prev.net_index))
            }
            None => (
                (0..self.shared.nets.len()).map(net_timing).collect(),
                Arc::new(self.shared.names.clone()),
                Arc::new(self.shared.net_index.clone()),
            ),
        };
        let report = Arc::new(report);
        let corners = state.corners.as_ref().map(|cs| {
            let mut reports = Vec::with_capacity(cs.lanes.len() + 1);
            reports.push(Arc::clone(&report));
            for lane in &cs.lanes {
                reports.push(Arc::new(assemble_report(
                    threshold,
                    required_time,
                    &state.prop,
                    &lane.endpoints,
                )));
            }
            Arc::new(SnapshotCorners {
                names: cs.set.corners().iter().map(|c| c.name.clone()).collect(),
                reports,
            })
        });
        DesignSnapshot {
            id: NEXT_SNAPSHOT_ID.fetch_add(1, Ordering::Relaxed),
            threshold,
            required_time,
            report,
            nets,
            names,
            net_index,
            instances: self.shared.instances.len(),
            corners,
            prop: Arc::clone(&state.prop),
            symbolic: Arc::new(OnceLock::new()),
        }
    }
}

impl DesignCore {
    /// Resolves an instance's cell name, surfacing a broken cross-table
    /// reference as [`StaError::DanglingInstance`] instead of panicking.
    ///
    /// **Invariant:** every instance named by a net's driver or sinks is in
    /// the instance table — [`Design::add_net`] validates references at
    /// insertion and instances are never removed — so this error is
    /// unreachable through the public API (pinned by the white-box
    /// `dangling_instance_references_error_instead_of_panicking` test).
    fn cell_of(&self, net: &str, instance: &str) -> Result<&str> {
        self.instances
            .get(instance)
            .map(String::as_str)
            .ok_or_else(|| StaError::DanglingInstance {
                net: net.to_string(),
                instance: instance.to_string(),
            })
    }

    /// Delay windows of every sink of one net: the unit of work that
    /// [`Design::analyze_with_jobs`] shards across the global pool's
    /// workers (it lives on the `Arc`-shared core so the jobs can own
    /// their state).  Runs the flat pre-order stage sweep
    /// ([`stage_delay_bounds`]) — bit-identical to the historical
    /// builder-based `analyze_stage` path, without the builder.
    fn net_sink_delays(&self, net: &Net, threshold: f64) -> Result<Vec<Window>> {
        let driver_resistance = match &net.driver {
            Driver::PrimaryInput => Ohms::ZERO,
            Driver::Instance(inst) => {
                self.library
                    .cell(self.cell_of(&net.name, inst)?)?
                    .drive_resistance
            }
        };
        let mut sink_loads = Vec::with_capacity(net.sinks.len());
        for sink in &net.sinks {
            let node = net.interconnect.node_by_name(&sink.node)?;
            let load_cap = match &sink.load {
                Load::Instance(inst) => {
                    self.library
                        .cell(self.cell_of(&net.name, inst)?)?
                        .input_capacitance
                }
                Load::PrimaryOutput(_) => Farads::ZERO,
            };
            sink_loads.push((node, load_cap));
        }
        let bounds =
            stage_delay_bounds(driver_resistance, &net.interconnect, &sink_loads, threshold)?;
        Ok(bounds.into_iter().map(|b| (b.lower, b.upper)).collect())
    }

    /// Pre-resolves a net's stage augmentation — driver resistance and
    /// `(node, load)` sink pairs — through the string-keyed tables **once**,
    /// at [`Design::add_net`] time, so analysis never touches a name again.
    ///
    /// # Errors
    ///
    /// As for the per-call resolution it replaces: [`StaError::UnknownCell`]
    /// / [`StaError::DanglingInstance`] for driver or sink instances, and
    /// node-lookup core errors for sink nodes.
    fn resolve_aug(&self, net: &Net) -> Result<NetAug> {
        let driver_r = match &net.driver {
            Driver::PrimaryInput => Ohms::ZERO,
            Driver::Instance(inst) => {
                self.library
                    .cell(self.cell_of(&net.name, inst)?)?
                    .drive_resistance
            }
        };
        let mut loads = Vec::with_capacity(net.sinks.len());
        for sink in &net.sinks {
            let node = net.interconnect.node_by_name(&sink.node)?;
            let load_cap = match &sink.load {
                Load::Instance(inst) => {
                    self.library
                        .cell(self.cell_of(&net.name, inst)?)?
                        .input_capacitance
                }
                Load::PrimaryOutput(_) => Farads::ZERO,
            };
            loads.push((node, load_cap));
        }
        Ok(NetAug { driver_r, loads })
    }

    /// The packed SoA arena of every net's augmented stage arrays, built on
    /// first use after any mutation and shared by `Arc` with the sweep
    /// workers.  Infallible: per-net validation failures are deferred into
    /// the arena and surface when the failing net is swept.
    fn arena(&self) -> Arc<NetArena> {
        let mut slot = self.arena.lock().expect("arena cache poisoned");
        if let Some(arena) = slot.as_ref() {
            return Arc::clone(arena);
        }
        let arena = Arc::new(NetArena::build(
            &self.nets,
            &self.aug,
            self.corners.as_deref(),
        ));
        *slot = Some(Arc::clone(&arena));
        arena
    }

    /// The cached propagation topology, rebuilt on first use after a
    /// connectivity change (`add_instance` / `add_net`; ECO edits only
    /// touch interconnect values, never instance-level connectivity).
    ///
    /// # Errors
    ///
    /// As for [`DesignCore::propagation_cache`].
    fn topology(&self) -> Result<Arc<PropagationCache>> {
        let mut slot = self.topo.lock().expect("topology cache poisoned");
        if let Some(cache) = slot.as_ref() {
            return Ok(Arc::clone(cache));
        }
        let cache = Arc::new(self.propagation_cache()?);
        *slot = Some(Arc::clone(&cache));
        Ok(cache)
    }

    /// Builds the arrival-propagation topology: Kahn's algorithm over the
    /// instance-to-instance edges induced by nets, the driver-rank net
    /// order, per-instance in-edge/out-net adjacency, and cached intrinsic
    /// delays.
    ///
    /// # Errors
    ///
    /// * [`StaError::CombinationalCycle`] if the instance graph is cyclic;
    /// * [`StaError::DanglingInstance`] if a net references an instance
    ///   missing from the table (unreachable through the public API — see
    ///   [`DesignCore::cell_of`]);
    /// * [`StaError::UnknownCell`] propagated from the intrinsic-delay
    ///   lookups (equally unreachable: `add_instance` validates cells).
    fn propagation_cache(&self) -> Result<PropagationCache> {
        let inst_names: Vec<String> = self.instances.keys().cloned().collect();
        let inst_index: HashMap<&str, usize> = inst_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let n_inst = inst_names.len();
        let mut intrinsic = Vec::with_capacity(n_inst);
        for name in &inst_names {
            intrinsic.push(self.library.cell(&self.instances[name])?.intrinsic_delay);
        }

        // Resolve every net's driver and sink targets once.
        let mut net_driver = Vec::with_capacity(self.nets.len());
        let mut sink_inst: Vec<Vec<Option<usize>>> = Vec::with_capacity(self.nets.len());
        let mut sink_po: Vec<Vec<Option<String>>> = Vec::with_capacity(self.nets.len());
        let mut in_degree = vec![0usize; n_inst];
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n_inst];
        for net in &self.nets {
            let driver = match &net.driver {
                Driver::PrimaryInput => None,
                Driver::Instance(inst) => {
                    Some(inst_index.get(inst.as_str()).copied().ok_or_else(|| {
                        StaError::DanglingInstance {
                            net: net.name.clone(),
                            instance: inst.clone(),
                        }
                    })?)
                }
            };
            let mut row = Vec::with_capacity(net.sinks.len());
            let mut po_row = Vec::with_capacity(net.sinks.len());
            for sink in &net.sinks {
                match &sink.load {
                    Load::Instance(inst) => {
                        let target = inst_index.get(inst.as_str()).copied().ok_or_else(|| {
                            StaError::DanglingInstance {
                                net: net.name.clone(),
                                instance: inst.clone(),
                            }
                        })?;
                        row.push(Some(target));
                        po_row.push(None);
                        if let Some(d) = driver {
                            successors[d].push(target);
                            in_degree[target] += 1;
                        }
                    }
                    Load::PrimaryOutput(name) => {
                        row.push(None);
                        po_row.push(Some(name.clone()));
                    }
                }
            }
            net_driver.push(driver);
            sink_inst.push(row);
            sink_po.push(po_row);
        }

        // Kahn topological order; the initial queue is name-sorted, which
        // index order already is (the instance table is a BTreeMap).
        let mut queue: Vec<usize> = (0..n_inst).filter(|&i| in_degree[i] == 0).collect();
        let mut queue_idx = 0;
        let mut topo_rank = vec![usize::MAX; n_inst];
        let mut seen = 0usize;
        while queue_idx < queue.len() {
            let inst = queue[queue_idx];
            queue_idx += 1;
            topo_rank[inst] = seen;
            seen += 1;
            for &succ in &successors[inst] {
                in_degree[succ] -= 1;
                if in_degree[succ] == 0 {
                    queue.push(succ);
                }
            }
        }
        if seen != n_inst {
            return Err(StaError::CombinationalCycle);
        }

        // Nets in driver topological order (stable on ties, like the
        // original per-call sort).
        let mut net_order: Vec<usize> = (0..self.nets.len()).collect();
        net_order.sort_by_key(|&i| match net_driver[i] {
            None => 0,
            Some(d) => 1 + topo_rank[d],
        });
        let mut net_rank = vec![0usize; self.nets.len()];
        for (rank, &net) in net_order.iter().enumerate() {
            net_rank[net] = rank;
        }

        // Adjacency for the cone walk, in the exact fold order of the full
        // pass.
        let mut in_edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n_inst];
        let mut out_ranks: Vec<Vec<usize>> = vec![Vec::new(); n_inst];
        for (rank, &net) in net_order.iter().enumerate() {
            if let Some(d) = net_driver[net] {
                out_ranks[d].push(rank);
            }
            for (k, target) in sink_inst[net].iter().enumerate() {
                if let Some(u) = *target {
                    in_edges[u].push((net, k));
                }
            }
        }

        Ok(PropagationCache {
            inst_names,
            intrinsic,
            net_order,
            net_rank,
            net_driver,
            in_edges,
            out_ranks,
            sink_inst,
            sink_po,
        })
    }
}

/// Net name → index map rebuilt from scratch, preserved verbatim for the
/// PR-3 baseline's per-call cost profile (`add_net` now maintains the same
/// map incrementally on the design core, and rejects duplicates).
fn net_index_of(nets: &[Net]) -> HashMap<String, usize> {
    nets.iter()
        .enumerate()
        .map(|(i, n)| (n.name.clone(), i))
        .collect()
}

/// Groups an edit batch by the string-keyed net index — the PR-3 baseline
/// companion of [`net_index_of`], kept for
/// [`Design::apply_eco_rebuild_with_jobs`]'s per-call cost profile.
fn group_edits<'a>(
    net_index: &HashMap<String, usize>,
    edits: &'a [EcoEdit],
) -> Result<BTreeMap<usize, Vec<&'a EcoEdit>>> {
    let mut by_net: BTreeMap<usize, Vec<&EcoEdit>> = BTreeMap::new();
    for edit in edits {
        let idx = *net_index
            .get(edit.net.as_str())
            .ok_or_else(|| StaError::UnknownNet {
                name: edit.net.clone(),
            })?;
        by_net.entry(idx).or_default().push(edit);
    }
    Ok(by_net)
}

/// Groups an edit batch by net index, preserving intra-net order.  Edit
/// names resolve through the interner: an unknown name misses the string
/// arena itself before ever touching the `u32`-keyed index.
fn group_edits_interned<'a>(
    core: &DesignCore,
    edits: &'a [EcoEdit],
) -> Result<BTreeMap<usize, Vec<&'a EcoEdit>>> {
    let mut by_net: BTreeMap<usize, Vec<&EcoEdit>> = BTreeMap::new();
    for edit in edits {
        let idx = core
            .names
            .get(edit.net.as_str())
            .and_then(|id| core.net_index.get(&id).copied())
            .ok_or_else(|| StaError::UnknownNet {
                name: edit.net.clone(),
            })?;
        by_net.entry(idx).or_default().push(edit);
    }
    Ok(by_net)
}

/// Resolves a name-based [`EcoEditKind`] against the current state of a
/// net's interconnect into an id-based [`TreeEdit`].
fn resolve_edit(net: &str, kind: &EcoEditKind, tree: &RcTree) -> Result<TreeEdit> {
    let lookup = |node: &str| {
        tree.node_by_name(node)
            .map_err(|_| StaError::UnknownEcoNode {
                net: net.to_string(),
                node: node.to_string(),
            })
    };
    Ok(match kind {
        EcoEditKind::SetCap { node, cap } => TreeEdit::SetCap {
            node: lookup(node)?,
            cap: *cap,
        },
        EcoEditKind::SetBranch { node, branch } => TreeEdit::SetBranch {
            node: lookup(node)?,
            branch: *branch,
        },
        EcoEditKind::Graft {
            parent,
            via,
            subtree,
        } => TreeEdit::GraftSubtree {
            parent: lookup(parent)?,
            via: *via,
            subtree: subtree.clone(),
        },
        EcoEditKind::Prune { node } => TreeEdit::PruneSubtree {
            node: lookup(node)?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rctree_core::builder::RcTreeBuilder;
    use rctree_core::units::Ohms;

    /// A point-to-point wire: input -> one line -> one sink node "load".
    fn wire(r: f64, c_ff: f64) -> RcTree {
        let mut b = RcTreeBuilder::new();
        let n = b
            .add_line(b.input(), "load", Ohms::new(r), Farads::from_femto(c_ff))
            .unwrap();
        let _ = n;
        b.build().unwrap()
    }

    /// Two-stage buffer chain: PI -> wire -> u1 -> wire -> u2 -> wire -> PO.
    fn buffer_chain() -> Design {
        let mut d = Design::new(CellLibrary::nmos_1981());
        d.add_instance("u1", "inv_1x").unwrap();
        d.add_instance("u2", "inv_4x").unwrap();
        d.add_net(Net {
            name: "n_in".into(),
            driver: Driver::PrimaryInput,
            interconnect: wire(50.0, 5.0),
            sinks: vec![Sink {
                node: "load".into(),
                load: Load::Instance("u1".into()),
            }],
        })
        .unwrap();
        d.add_net(Net {
            name: "n_mid".into(),
            driver: Driver::Instance("u1".into()),
            interconnect: wire(200.0, 20.0),
            sinks: vec![Sink {
                node: "load".into(),
                load: Load::Instance("u2".into()),
            }],
        })
        .unwrap();
        d.add_net(Net {
            name: "n_out".into(),
            driver: Driver::Instance("u2".into()),
            interconnect: wire(400.0, 40.0),
            sinks: vec![Sink {
                node: "load".into(),
                load: Load::PrimaryOutput("out".into()),
            }],
        })
        .unwrap();
        d
    }

    #[test]
    fn buffer_chain_report_is_consistent() {
        let d = buffer_chain();
        assert_eq!(d.instance_count(), 2);
        assert_eq!(d.net_count(), 3);
        let report = d.analyze(0.5, Seconds::from_nano(50.0)).unwrap();
        assert_eq!(report.endpoints.len(), 1);
        let e = &report.endpoints[0];
        assert_eq!(e.name, "out");
        assert!(e.arrival.min <= e.arrival.max);
        // Both gate intrinsic delays must be included.
        assert!(e.arrival.min >= Seconds::from_nano(1.8));
        assert_eq!(*e.critical_path, vec!["u1".to_string(), "u2".to_string()]);
        let text = report.to_string();
        assert!(text.contains("out"));
        assert!(text.contains("certification"));
    }

    #[test]
    fn certification_follows_required_time() {
        let d = buffer_chain();
        let generous = d.analyze(0.5, Seconds::from_nano(1000.0)).unwrap();
        assert_eq!(generous.certification(), Certification::Pass);
        assert!(generous.worst_slack().value() > 0.0);

        let impossible = d.analyze(0.5, Seconds::from_pico(1.0)).unwrap();
        assert_eq!(impossible.certification(), Certification::Fail);
        assert!(impossible.worst_slack().value() < 0.0);

        // A budget between the endpoint's min and max arrival cannot be
        // decided by bounds alone.
        let report = d.analyze(0.5, Seconds::from_nano(1000.0)).unwrap();
        let e = report.critical_endpoint().unwrap();
        let mid = Seconds::new((e.arrival.min.value() + e.arrival.max.value()) / 2.0);
        let undecided = d.analyze(0.5, mid).unwrap();
        assert_eq!(undecided.certification(), Certification::Indeterminate);
    }

    #[test]
    fn fanout_reports_every_endpoint() {
        let mut d = Design::new(CellLibrary::nmos_1981());
        d.add_instance("drv", "superbuffer").unwrap();
        d.add_net(Net {
            name: "n_in".into(),
            driver: Driver::PrimaryInput,
            interconnect: wire(10.0, 1.0),
            sinks: vec![Sink {
                node: "load".into(),
                load: Load::Instance("drv".into()),
            }],
        })
        .unwrap();
        // Fan-out net with two sinks at different depths.
        let mut b = RcTreeBuilder::new();
        let stem = b
            .add_line(
                b.input(),
                "stem",
                Ohms::new(100.0),
                Farads::from_femto(10.0),
            )
            .unwrap();
        b.add_line(stem, "near", Ohms::new(10.0), Farads::from_femto(1.0))
            .unwrap();
        b.add_line(stem, "far", Ohms::new(500.0), Farads::from_femto(50.0))
            .unwrap();
        let fanout = b.build().unwrap();
        d.add_net(Net {
            name: "n_fan".into(),
            driver: Driver::Instance("drv".into()),
            interconnect: fanout,
            sinks: vec![
                Sink {
                    node: "near".into(),
                    load: Load::PrimaryOutput("po_near".into()),
                },
                Sink {
                    node: "far".into(),
                    load: Load::PrimaryOutput("po_far".into()),
                },
            ],
        })
        .unwrap();
        let report = d.analyze(0.5, Seconds::from_nano(100.0)).unwrap();
        assert_eq!(report.endpoints.len(), 2);
        assert_eq!(report.critical_endpoint().unwrap().name, "po_far");
    }

    #[test]
    fn validation_errors() {
        let mut d = Design::new(CellLibrary::nmos_1981());
        assert!(matches!(
            d.add_instance("u1", "not_a_cell"),
            Err(StaError::UnknownCell { .. })
        ));
        d.add_instance("u1", "inv_1x").unwrap();
        assert!(matches!(
            d.add_instance("u1", "inv_1x"),
            Err(StaError::DuplicateInstance { .. })
        ));
        assert!(matches!(
            d.add_net(Net {
                name: "n".into(),
                driver: Driver::Instance("ghost".into()),
                interconnect: wire(1.0, 1.0),
                sinks: vec![],
            }),
            Err(StaError::UnknownInstance { .. })
        ));
        assert!(matches!(
            d.add_net(Net {
                name: "n".into(),
                driver: Driver::PrimaryInput,
                interconnect: wire(1.0, 1.0),
                sinks: vec![Sink {
                    node: "nope".into(),
                    load: Load::Instance("u1".into())
                }],
            }),
            Err(StaError::UnknownSinkNode { .. })
        ));
        assert!(matches!(
            d.add_net(Net {
                name: "n".into(),
                driver: Driver::PrimaryInput,
                interconnect: wire(1.0, 1.0),
                sinks: vec![Sink {
                    node: "load".into(),
                    load: Load::Instance("ghost".into())
                }],
            }),
            Err(StaError::UnknownInstance { .. })
        ));
        assert!(matches!(
            d.analyze(0.5, Seconds::from_nano(1.0)),
            Err(StaError::EmptyDesign)
        ));
    }

    #[test]
    fn duplicate_net_names_are_rejected() {
        let mut d = Design::new(CellLibrary::nmos_1981());
        d.add_instance("u1", "inv_1x").unwrap();
        let net = |name: &str| Net {
            name: name.into(),
            driver: Driver::PrimaryInput,
            interconnect: wire(10.0, 1.0),
            sinks: vec![Sink {
                node: "load".into(),
                load: Load::Instance("u1".into()),
            }],
        };
        d.add_net(net("n1")).unwrap();
        let err = d.add_net(net("n1")).unwrap_err();
        assert!(
            matches!(&err, StaError::DuplicateNet { name } if name == "n1"),
            "{err:?}"
        );
        // The rejected net was not inserted and the design still works.
        assert_eq!(d.net_count(), 1);
        d.add_net(net("n2")).unwrap();
        assert_eq!(d.net_count(), 2);
        d.analyze(0.5, Seconds::from_nano(50.0)).unwrap();
    }

    #[test]
    fn snapshots_expose_the_report_and_per_net_views() {
        let mut d = buffer_chain();
        let budget = Seconds::from_nano(50.0);
        let baseline = d.analyze(0.5, budget).unwrap();
        let snap = d.publish(0.5, budget, 1).unwrap();
        assert_eq!(snap.report(), &baseline);
        assert_eq!(snap.threshold(), 0.5);
        assert_eq!(snap.required_time(), budget);
        assert_eq!(snap.net_count(), 3);
        assert_eq!(snap.instance_count(), 2);
        assert_eq!(
            snap.net_names().collect::<Vec<_>>(),
            vec!["n_in", "n_mid", "n_out"]
        );
        assert!(snap.net("ghost").is_none());

        // Per-net sink windows match the report's arithmetic: the output
        // net's single sink window plus the upstream arrival reproduces the
        // endpoint arrival exactly.
        let out = snap.net("n_out").unwrap();
        assert_eq!(out.name(), "n_out");
        assert_eq!(out.sinks().len(), 1);
        let sink = &out.sinks()[0];
        assert_eq!(sink.node, "load");
        assert!(matches!(&sink.load, Load::PrimaryOutput(po) if po == "out"));
        assert!(sink.lower <= sink.upper);

        // Node-level queries resolve against the same augmented stage tree
        // the windows came from: at the sink node they are the windows.
        let (times, bounds) = out.node_times("load", 0.5).unwrap();
        assert_eq!(bounds.lower, sink.lower);
        assert_eq!(bounds.upper, sink.upper);
        assert!(times.t_p.value() > 0.0);
        let err = out.node_times("ghost", 0.5).unwrap_err();
        assert!(matches!(err, StaError::UnknownEcoNode { .. }), "{err:?}");
    }

    #[test]
    fn publish_after_eco_reuses_untouched_net_views() {
        let mut d = buffer_chain();
        let budget = Seconds::from_nano(50.0);
        let snap0 = d.publish(0.5, budget, 1).unwrap();
        let edit = EcoEdit {
            net: "n_out".into(),
            kind: EcoEditKind::SetCap {
                node: "load".into(),
                cap: Farads::from_femto(500.0),
            },
        };
        let snap1 = d
            .publish_after_eco(std::slice::from_ref(&edit), 0.5, budget, 1, &snap0)
            .unwrap();
        // The successor's report is bit-identical to a full re-analysis.
        assert_eq!(snap1.report(), &d.analyze(0.5, budget).unwrap());
        // Untouched nets' views are the same allocations; the dirty net's
        // is fresh and reflects the edit.
        assert!(Arc::ptr_eq(
            &snap0.nets[0], // n_in
            &snap1.nets[0]
        ));
        assert!(Arc::ptr_eq(&snap0.nets[1], &snap1.nets[1]));
        assert!(!Arc::ptr_eq(&snap0.nets[2], &snap1.nets[2]));
        let before = snap0.net("n_out").unwrap().sinks()[0].upper;
        let after = snap1.net("n_out").unwrap().sinks()[0].upper;
        assert!(after > before);
        // The predecessor snapshot is untouched (readers keep serving it).
        assert_eq!(snap0.net("n_out").unwrap().sinks()[0].upper, before);

        // A failing batch leaves the design publishable and `prev` valid.
        let bad = EcoEdit {
            net: "ghost".into(),
            kind: EcoEditKind::Prune { node: "x".into() },
        };
        let err = d
            .publish_after_eco(&[bad], 0.5, budget, 1, &snap1)
            .unwrap_err();
        assert!(matches!(err, StaError::UnknownNet { .. }), "{err:?}");
        let snap2 = d.publish_after_eco(&[], 0.5, budget, 1, &snap1).unwrap();
        assert_eq!(snap2.report(), snap1.report());

        // A threshold change falls back to a full rebuild, never a stale
        // reuse.
        let warm = d.publish_after_eco(&[], 0.7, budget, 1, &snap1).unwrap();
        assert_eq!(warm.threshold(), 0.7);
        assert_eq!(warm.report(), &d.analyze(0.7, budget).unwrap());
    }

    #[test]
    fn publish_after_eco_never_reuses_an_outdated_snapshot() {
        // Reuse is keyed on snapshot identity: handing back anything but
        // the design's *latest* published snapshot must trigger a full
        // rebuild, or stale per-net views would leak into the successor.
        let mut d = buffer_chain();
        let budget = Seconds::from_nano(50.0);
        let fatten = |net: &str, ff: f64| EcoEdit {
            net: net.into(),
            kind: EcoEditKind::SetCap {
                node: "load".into(),
                cap: Farads::from_femto(ff),
            },
        };
        let snap0 = d.publish(0.5, budget, 1).unwrap();
        let _snap1 = d
            .publish_after_eco(&[fatten("n_out", 500.0)], 0.5, budget, 1, &snap0)
            .unwrap();
        // snap0 is now outdated; publishing against it again must not
        // resurrect its pre-edit view of `n_out`.
        let snap2 = d
            .publish_after_eco(&[fatten("n_mid", 90.0)], 0.5, budget, 1, &snap0)
            .unwrap();
        let fresh = d.publish(0.5, budget, 1).unwrap();
        assert_eq!(snap2.report(), fresh.report());
        assert_eq!(
            snap2.net("n_out").unwrap().sinks(),
            fresh.net("n_out").unwrap().sinks(),
            "stale n_out view leaked from the outdated snapshot"
        );

        // A direct apply_eco (outside the publish path) equally
        // invalidates the latest snapshot for reuse.
        let snap3 = d.publish(0.5, budget, 1).unwrap();
        d.apply_eco(&[fatten("n_out", 60.0)], 0.5, budget).unwrap();
        let snap4 = d.publish_after_eco(&[], 0.5, budget, 1, &snap3).unwrap();
        let fresh = d.publish(0.5, budget, 1).unwrap();
        assert_eq!(snap4.report(), fresh.report());
        assert_eq!(
            snap4.net("n_out").unwrap().sinks(),
            fresh.net("n_out").unwrap().sinks(),
            "direct apply_eco did not invalidate snapshot reuse"
        );
    }

    #[test]
    fn empty_report_semantics_are_pinned() {
        // A report with no endpoints is a legitimate outcome (nets that feed
        // only instance inputs), not a panic or an error: the critical
        // endpoint is absent, the whole budget is slack, and certification
        // passes vacuously.
        let empty = TimingReport {
            threshold: 0.5,
            required_time: Seconds::from_nano(10.0),
            endpoints: Vec::new(),
        };
        assert!(empty.critical_endpoint().is_none());
        assert_eq!(empty.worst_slack(), Seconds::from_nano(10.0));
        assert_eq!(empty.certification(), Certification::Pass);
        assert!(empty.to_string().contains("worst slack"));
    }

    #[test]
    fn design_without_primary_outputs_yields_an_empty_report() {
        let mut d = Design::new(CellLibrary::nmos_1981());
        d.add_instance("u1", "inv_1x").unwrap();
        d.add_net(Net {
            name: "n_in".into(),
            driver: Driver::PrimaryInput,
            interconnect: wire(50.0, 5.0),
            sinks: vec![Sink {
                node: "load".into(),
                load: Load::Instance("u1".into()),
            }],
        })
        .unwrap();
        let report = d.analyze(0.5, Seconds::from_nano(7.0)).unwrap();
        assert!(report.endpoints.is_empty());
        assert!(report.critical_endpoint().is_none());
        assert_eq!(report.worst_slack(), Seconds::from_nano(7.0));
        assert_eq!(report.certification(), Certification::Pass);
    }

    #[test]
    fn analysis_is_bit_identical_for_any_worker_count() {
        let d = buffer_chain();
        let serial = d
            .analyze_with_jobs(0.5, Seconds::from_nano(50.0), 1)
            .unwrap();
        for jobs in [2, 7, rctree_par::available_parallelism()] {
            let parallel = d
                .analyze_with_jobs(0.5, Seconds::from_nano(50.0), jobs)
                .unwrap();
            assert_eq!(parallel, serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn from_extracted_builds_an_analyzable_deck_design() {
        // Like `wire`, but with the far node marked as an output the way an
        // extractor marks load pins.
        let tapped_wire = |r: f64| {
            let mut b = RcTreeBuilder::new();
            let n = b
                .add_line(b.input(), "load", Ohms::new(r), Farads::from_femto(10.0))
                .unwrap();
            b.mark_output(n).unwrap();
            b.build().unwrap()
        };
        let nets: Vec<(String, RcTree)> = (0..5)
            .map(|i| (format!("net{i}"), tapped_wire(100.0 * (i + 1) as f64)))
            .collect();
        let d = Design::from_extracted(CellLibrary::nmos_1981(), "inv_4x", nets).unwrap();
        assert_eq!(d.instance_count(), 5);
        assert_eq!(d.net_count(), 10); // feeder + payload per extracted net
        let report = d.analyze(0.5, Seconds::from_nano(100.0)).unwrap();
        assert_eq!(report.endpoints.len(), 5);
        assert!(report.endpoints.iter().any(|e| e.name == "net4/load"));
        // The longest wire is the critical endpoint.
        assert_eq!(report.critical_endpoint().unwrap().name, "net4/load");

        // Duplicate net names collide on the instance name.
        let dup = vec![
            ("x".to_string(), wire(1.0, 1.0)),
            ("x".to_string(), wire(2.0, 1.0)),
        ];
        assert!(matches!(
            Design::from_extracted(CellLibrary::nmos_1981(), "inv_4x", dup),
            Err(StaError::DuplicateInstance { .. })
        ));
        // A deck net colliding with a synthesized feeder name is a
        // structured error too (it used to build two nets named `x_pi`).
        let feeder_clash = vec![
            ("x".to_string(), wire(1.0, 1.0)),
            ("x_pi".to_string(), wire(2.0, 1.0)),
        ];
        assert!(matches!(
            Design::from_extracted(CellLibrary::nmos_1981(), "inv_4x", feeder_clash),
            Err(StaError::DuplicateNet { name }) if name == "x_pi"
        ));
        // Unknown driver cells are rejected up front.
        assert!(matches!(
            Design::from_extracted(CellLibrary::nmos_1981(), "nand_999x", Vec::new()),
            Err(StaError::UnknownCell { .. })
        ));
    }

    #[test]
    fn combinational_cycle_is_detected() {
        let mut d = Design::new(CellLibrary::nmos_1981());
        d.add_instance("a", "inv_1x").unwrap();
        d.add_instance("b", "inv_1x").unwrap();
        for (driver, load, name) in [("a", "b", "n1"), ("b", "a", "n2")] {
            d.add_net(Net {
                name: name.into(),
                driver: Driver::Instance(driver.into()),
                interconnect: wire(1.0, 1.0),
                sinks: vec![Sink {
                    node: "load".into(),
                    load: Load::Instance(load.into()),
                }],
            })
            .unwrap();
        }
        assert!(matches!(
            d.analyze(0.5, Seconds::from_nano(1.0)),
            Err(StaError::CombinationalCycle)
        ));
    }

    #[test]
    fn apply_eco_matches_full_reanalysis() {
        let mut d = buffer_chain();
        let threshold = 0.5;
        let budget = Seconds::from_nano(50.0);
        let baseline = d.analyze(threshold, budget).unwrap();
        // A cache-warming empty batch reproduces the full analysis exactly.
        let warmed = d.apply_eco(&[], threshold, budget).unwrap();
        assert_eq!(warmed, baseline);

        // Fatten the load on the output net; the incremental report must be
        // bit-identical to a from-scratch analysis of the edited design.
        let report = d
            .apply_eco(
                &[EcoEdit {
                    net: "n_out".into(),
                    kind: EcoEditKind::SetCap {
                        node: "load".into(),
                        cap: Farads::from_femto(500.0),
                    },
                }],
                threshold,
                budget,
            )
            .unwrap();
        assert!(report.endpoints[0].arrival.max > baseline.endpoints[0].arrival.max);
        assert_eq!(report, d.analyze(threshold, budget).unwrap());

        // Structural edits: graft an extra stub, then prune it again.
        let mut gb = rctree_core::builder::RcTreeBuilder::with_input_name("stub");
        gb.add_capacitance(gb.input(), Farads::from_femto(40.0))
            .unwrap();
        let graft = EcoEdit {
            net: "n_out".into(),
            kind: EcoEditKind::Graft {
                parent: "load".into(),
                via: Branch::resistor(rctree_core::units::Ohms::new(50.0)),
                subtree: Box::new(gb.build().unwrap()),
            },
        };
        let grafted = d.apply_eco(&[graft], threshold, budget).unwrap();
        assert_eq!(grafted, d.analyze(threshold, budget).unwrap());
        let pruned = d
            .apply_eco(
                &[EcoEdit {
                    net: "n_out".into(),
                    kind: EcoEditKind::Prune {
                        node: "stub".into(),
                    },
                }],
                threshold,
                budget,
            )
            .unwrap();
        assert_eq!(pruned, d.analyze(threshold, budget).unwrap());
    }

    #[test]
    fn apply_eco_is_schedule_independent() {
        let budget = Seconds::from_nano(50.0);
        let edit = |ff: f64| {
            vec![EcoEdit {
                net: "n_mid".into(),
                kind: EcoEditKind::SetCap {
                    node: "load".into(),
                    cap: Farads::from_femto(ff),
                },
            }]
        };
        let mut serial = buffer_chain();
        let mut serial_reports = Vec::new();
        for step in 1..5 {
            serial_reports.push(
                serial
                    .apply_eco_with_jobs(&edit(step as f64 * 30.0), 0.5, budget, 1)
                    .unwrap(),
            );
        }
        for jobs in [2, 7, rctree_par::available_parallelism()] {
            let mut d = buffer_chain();
            for (step, want) in serial_reports.iter().enumerate() {
                let got = d
                    .apply_eco_with_jobs(&edit((step + 1) as f64 * 30.0), 0.5, budget, jobs)
                    .unwrap();
                assert_eq!(&got, want, "jobs = {jobs}, step {step}");
            }
        }
    }

    #[test]
    fn apply_eco_rejects_unknown_references_transactionally() {
        let mut d = buffer_chain();
        let budget = Seconds::from_nano(50.0);
        let before = d.analyze(0.5, budget).unwrap();
        assert!(matches!(
            d.apply_eco(
                &[EcoEdit {
                    net: "no_such_net".into(),
                    kind: EcoEditKind::Prune { node: "x".into() },
                }],
                0.5,
                budget,
            ),
            Err(StaError::UnknownNet { .. })
        ));
        assert!(matches!(
            d.apply_eco(
                &[EcoEdit {
                    net: "n_out".into(),
                    kind: EcoEditKind::SetCap {
                        node: "ghost".into(),
                        cap: Farads::from_femto(1.0),
                    },
                }],
                0.5,
                budget,
            ),
            Err(StaError::UnknownEcoNode { .. })
        ));
        // Pruning the node a sink hangs on is refused.
        assert!(matches!(
            d.apply_eco(
                &[EcoEdit {
                    net: "n_out".into(),
                    kind: EcoEditKind::Prune {
                        node: "load".into(),
                    },
                }],
                0.5,
                budget,
            ),
            Err(StaError::UnknownSinkNode { .. })
        ));
        // Nothing was committed.
        assert_eq!(d.analyze(0.5, budget).unwrap(), before);
    }

    #[test]
    fn apply_eco_rolls_back_edits_that_break_analysis() {
        // An edit batch can be valid at the tree level yet make a net
        // unanalysable: replacing the output wire (a distributed line, the
        // net's only capacitance) with a plain resistor leaves a
        // capacitance-free net whose sink is a zero-load primary output.
        // The failure surfaces during re-timing, *after* validation — the
        // batch must still roll back completely.
        let mut d = buffer_chain();
        let budget = Seconds::from_nano(50.0);
        let before = d.apply_eco(&[], 0.5, budget).unwrap();
        let err = d
            .apply_eco(
                &[EcoEdit {
                    net: "n_out".into(),
                    kind: EcoEditKind::SetBranch {
                        node: "load".into(),
                        branch: Branch::resistor(rctree_core::units::Ohms::new(400.0)),
                    },
                }],
                0.5,
                budget,
            )
            .unwrap_err();
        assert!(matches!(err, StaError::Core(_)), "{err:?}");
        // The design still analyses and matches the pre-edit report, both
        // through the cache and from scratch.
        assert_eq!(d.apply_eco(&[], 0.5, budget).unwrap(), before);
        assert_eq!(d.analyze(0.5, budget).unwrap(), before);
    }

    #[test]
    fn failing_call_keeps_the_warm_state_for_untouched_nets() {
        let mut d = buffer_chain();
        let budget = Seconds::from_nano(50.0);
        let before = d.apply_eco(&[], 0.5, budget).unwrap();
        assert!(d.eco.is_some(), "empty batch warms the cache");

        // Replacing the output wire (the net's only capacitance) with a
        // plain resistor makes the net unanalysable: the failure surfaces
        // during re-timing, after validation.  The still-valid cached
        // windows of the *untouched* nets must survive, so the next call
        // does not pay a full re-warm (the pre-fix code set `eco = None`).
        let breaking = EcoEdit {
            net: "n_out".into(),
            kind: EcoEditKind::SetBranch {
                node: "load".into(),
                branch: Branch::resistor(Ohms::new(400.0)),
            },
        };
        let err = d
            .apply_eco(std::slice::from_ref(&breaking), 0.5, budget)
            .unwrap_err();
        assert!(matches!(err, StaError::Core(_)), "{err:?}");
        let state = d.eco.as_ref().expect("state survives a failing call");
        assert_eq!(state.threshold, 0.5);
        assert!(
            state.delays.iter().all(|w| !w.is_empty()),
            "every net's cached windows were retained"
        );
        assert_eq!(d.apply_eco(&[], 0.5, budget).unwrap(), before);

        // A failing call at a *different* threshold (a cold-path failure)
        // no longer destroys the state that is still valid for the cached
        // threshold either.
        let err = d.apply_eco(&[breaking], 0.7, budget).unwrap_err();
        assert!(matches!(err, StaError::Core(_)), "{err:?}");
        assert_eq!(d.eco.as_ref().map(|s| s.threshold), Some(0.5));
        assert_eq!(d.apply_eco(&[], 0.5, budget).unwrap(), before);
        assert_eq!(d.analyze(0.5, budget).unwrap(), before);
    }

    #[test]
    fn dangling_instance_references_error_instead_of_panicking() {
        // The arrival-propagation lookups used to `expect("validated")` on
        // the instance table.  The invariant (every net reference is
        // validated by `add_net`, instances are never removed) makes those
        // lookups infallible through the public API — pinned here by
        // breaking the private table directly and asserting the structured
        // error instead of a panic.
        let mut d = buffer_chain();
        Arc::make_mut(&mut d.shared).instances.remove("u1");

        // The stage sweep itself no longer resolves names (the arena works
        // from augmentation data pre-resolved at `add_net`), so the
        // topology build surfaces the error: the sink-side lookup of
        // `n_in` precedes the dangling driver of `n_mid` in net order.
        let err = d.analyze(0.5, Seconds::from_nano(50.0)).unwrap_err();
        assert!(
            matches!(
                &err,
                StaError::DanglingInstance { net, instance }
                    if net == "n_in" && instance == "u1"
            ),
            "{err:?}"
        );
        // The topology build (Kahn in-degree / successor tables) hits the
        // sink-side lookup of `n_in`.
        let err = d.shared.propagation_cache().unwrap_err();
        assert!(
            matches!(
                &err,
                StaError::DanglingInstance { net, instance }
                    if net == "n_in" && instance == "u1"
            ),
            "{err:?}"
        );
        // The ECO path surfaces the same structured error.
        let err = d.apply_eco(&[], 0.5, Seconds::from_nano(50.0)).unwrap_err();
        assert!(matches!(err, StaError::DanglingInstance { .. }), "{err:?}");
    }

    #[test]
    fn rebuild_baseline_matches_the_incremental_path() {
        // The preserved PR-3 baseline must stay result-identical to the
        // cone-limited path (it is the benchmark's correctness anchor).
        let budget = Seconds::from_nano(50.0);
        let mut fast = buffer_chain();
        let mut slow = buffer_chain();
        for step in 0..6 {
            let edit = vec![EcoEdit {
                net: if step % 2 == 0 { "n_mid" } else { "n_out" }.into(),
                kind: EcoEditKind::SetCap {
                    node: "load".into(),
                    cap: Farads::from_femto(20.0 + 15.0 * step as f64),
                },
            }];
            let a = fast.apply_eco_with_jobs(&edit, 0.5, budget, 1).unwrap();
            let b = slow
                .apply_eco_rebuild_with_jobs(&edit, 0.5, budget, 1)
                .unwrap();
            assert_eq!(a, b, "step {step}");
        }
        assert_eq!(
            fast.analyze(0.5, budget).unwrap(),
            slow.analyze(0.5, budget).unwrap()
        );
    }

    #[test]
    fn arena_analysis_matches_the_string_keyed_baseline() {
        // The packed-arena sweep and the preserved pre-arena baseline
        // (per-call name resolution + per-net array rebuilds) must agree
        // bit-for-bit — the baseline is `benches/deck_pipeline.rs`'s
        // correctness anchor.
        let d = buffer_chain();
        let budget = Seconds::from_nano(50.0);
        for jobs in [1, 2, 7] {
            let fast = d.analyze_with_jobs(0.5, budget, jobs).unwrap();
            let slow = d.analyze_rebuild_with_jobs(0.5, budget, jobs).unwrap();
            assert_eq!(fast, slow, "jobs {jobs}");
        }
        // The cached arena covers every net and is rebuilt only after a
        // mutation (the two calls above shared one build).
        let arena = d.shared.arena();
        assert!(Arc::ptr_eq(&arena, &d.shared.arena()));
        assert_eq!(arena.net_count(), 3);
        // Two sink-bearing interconnects of 2 nodes each plus the feeder-
        // style `n_in` (2 nodes), each augmented with a stage-input and a
        // driver-output node... counted straight off the packed columns.
        assert!(arena.node_count() >= 3 * 3);

        // A deferred per-net validation failure surfaces at sweep time
        // with the historical error, without poisoning other nets.
        let mut bad = buffer_chain();
        {
            let core = Arc::make_mut(&mut bad.shared);
            core.aug[2].loads[0].1 = Farads::new(f64::NAN);
            core.arena = Mutex::new(None);
        }
        let err = bad.analyze(0.5, budget).unwrap_err();
        assert!(
            matches!(
                err,
                StaError::Core(rctree_core::CoreError::InvalidValue {
                    what: "capacitance",
                    ..
                })
            ),
            "{err:?}"
        );
    }

    #[test]
    fn deeper_paths_arrive_later() {
        let d = buffer_chain();
        let report = d.analyze(0.5, Seconds::from_nano(100.0)).unwrap();
        let out = &report.endpoints[0];
        // The endpoint must arrive later than the sum of intrinsic delays
        // alone (wire delay is nonzero) and the window must be ordered.
        let intrinsic_sum = Seconds::from_nano(1.0) + Seconds::from_nano(0.8);
        assert!(out.arrival.max > intrinsic_sum);
        assert!(out.arrival.min >= intrinsic_sum);
    }

    /// A deck-style design of `n` independent extracted nets (each one a
    /// feeder + driver + wire component, like `from_extracted` builds).
    fn extracted_deck(n: usize) -> Design {
        let nets: Vec<(String, RcTree)> = (0..n)
            .map(|i| {
                (
                    format!("net{i}"),
                    wire(80.0 + 37.0 * i as f64, 3.0 + 2.5 * i as f64),
                )
            })
            .collect();
        Design::from_extracted(CellLibrary::nmos_1981(), "inv_4x", nets).unwrap()
    }

    #[test]
    fn partition_splits_components_into_contiguous_net_ranges() {
        let design = extracted_deck(6);
        let shards = design.partition(3).unwrap();
        assert_eq!(shards.len(), 3);
        // 6 components of 2 nets each, cut 2/2/2 in deck order.
        for (s, shard) in shards.iter().enumerate() {
            assert_eq!(shard.net_count(), 4);
            assert_eq!(shard.instance_count(), 2);
            for i in 0..2 {
                let name = format!("net{}", 2 * s + i);
                assert!(
                    shard.shared.names.get(&name).is_some(),
                    "{name} in shard {s}"
                );
            }
        }
        // More shards than components clamps instead of creating empties.
        assert_eq!(extracted_deck(2).partition(8).unwrap().len(), 2);
        assert!(matches!(
            Design::new(CellLibrary::nmos_1981()).partition(2),
            Err(StaError::EmptyDesign)
        ));
    }

    #[test]
    fn partition_never_splits_a_connected_component() {
        // The buffer chain is one component: PI -> u1 -> u2 -> PO.
        let shards = buffer_chain().partition(4).unwrap();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].net_count(), 3);
        assert_eq!(shards[0].instance_count(), 2);
    }

    #[test]
    fn composed_partition_reports_render_byte_identically_to_monolithic() {
        let budget = Seconds::from_nano(150.0);
        let design = extracted_deck(7);
        let mono = design.analyze(0.5, budget).unwrap();
        let shards = design.partition(3).unwrap();
        let parts: Vec<TimingReport> = shards
            .iter()
            .map(|s| s.analyze(0.5, budget).unwrap())
            .collect();
        let composed = TimingReport::compose(parts.iter());
        assert_eq!(composed.to_string(), mono.to_string());
        assert_eq!(composed.endpoints.len(), mono.endpoints.len());
        assert_eq!(composed.worst_slack(), mono.worst_slack());
        // A single-part compose is the identity.
        assert_eq!(
            TimingReport::compose(std::iter::once(&mono)).to_string(),
            mono.to_string()
        );
    }

    #[test]
    fn compose_handles_empty_shards_single_endpoints_and_ties() {
        let required = Seconds::from_nano(100.0);
        let endpoint = |name: &str, min_ns: f64, max_ns: f64| EndpointTiming {
            name: name.to_string(),
            arrival: ArrivalWindow {
                min: Seconds::from_nano(min_ns),
                max: Seconds::from_nano(max_ns),
            },
            critical_path: Arc::new(vec!["u1".to_string()]),
        };
        let report = |endpoints: Vec<EndpointTiming>| TimingReport {
            threshold: 0.5,
            required_time: required,
            endpoints,
        };

        // An empty shard (a partition whose nets feed only instance inputs)
        // contributes nothing: composing with it is the identity, in either
        // order, and an all-empty compose stays empty and vacuously passes.
        let empty = report(Vec::new());
        let single = report(vec![endpoint("po1", 10.0, 20.0)]);
        let with_empty = TimingReport::compose([&single, &empty]);
        assert_eq!(with_empty, single);
        assert_eq!(
            TimingReport::compose([&empty, &single]).endpoints,
            single.endpoints
        );
        let both_empty = TimingReport::compose([&empty, &empty]);
        assert!(both_empty.endpoints.is_empty());
        assert_eq!(both_empty.worst_slack(), required);
        assert_eq!(both_empty.slack_interval(), (required, required));
        assert_eq!(both_empty.certification(), Certification::Pass);

        // A single-endpoint shard composes to itself.
        assert_eq!(TimingReport::compose([&single]), single);
        assert_eq!(single.critical_endpoint().unwrap().name, "po1");

        // Equal worst arrivals keep part order (stable sort), exactly as a
        // monolithic analysis keeps net order on ties — so the tie order is
        // deterministic, not an artifact of shard count.
        let a = report(vec![
            endpoint("a_fast", 1.0, 5.0),
            endpoint("a_tie", 2.0, 20.0),
        ]);
        let b = report(vec![
            endpoint("b_tie", 3.0, 20.0),
            endpoint("b_slow", 1.0, 30.0),
        ]);
        let composed = TimingReport::compose([&a, &b]);
        let names: Vec<&str> = composed.endpoints.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["b_slow", "a_tie", "b_tie", "a_fast"]);
        // Reversing the parts reverses only the tied pair.
        let swapped = TimingReport::compose([&b, &a]);
        let names: Vec<&str> = swapped.endpoints.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["b_slow", "b_tie", "a_tie", "a_fast"]);
        assert_eq!(composed.worst_slack(), swapped.worst_slack());
    }

    #[test]
    fn partition_carries_the_corner_set_and_composes_per_lane() {
        let budget = Seconds::from_nano(150.0);
        let mut design = extracted_deck(5);
        let mut set = CornerSet::nominal();
        let slow = set.push("slow", 1.3, 1.2, 1.1).unwrap();
        set.push("fast", 0.85, 0.9, 0.95).unwrap();
        set.override_net("net3", slow, 1.5, 1.4).unwrap();
        design.set_corners(set);
        let mono = design.analyze_corners(0.5, budget, 1).unwrap();
        let shards = design.partition(2).unwrap();
        let shard_analyses: Vec<CornerAnalysis> = shards
            .iter()
            .map(|s| s.analyze_corners(0.5, budget, 1).unwrap())
            .collect();
        for lane in 0..3 {
            let mut parts: Vec<&TimingReport> = Vec::new();
            for analysis in &shard_analyses {
                assert_eq!(analysis.names(), mono.names());
                parts.push(analysis.report(lane).unwrap());
            }
            let composed = TimingReport::compose(parts);
            assert_eq!(
                composed.to_string(),
                mono.report(lane).unwrap().to_string(),
                "lane {lane} diverged"
            );
        }
    }
}
